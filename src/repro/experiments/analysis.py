"""Scaling analysis over strong-scaling curves.

Downstream-user conveniences the paper's discussion implies: speedups,
parallel efficiency, the serial-fraction estimate (Karp-Flatt), and a
knee detector for the "scales to N" readings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import ScalingCurve


@dataclass(frozen=True)
class ScalingAnalysis:
    """Summary numbers of one strong-scaling curve."""

    benchmark: str
    runtime: str
    max_speedup: float
    max_speedup_cores: int
    efficiency_at_max: float
    serial_fraction: float | None  # Karp-Flatt at the largest core count
    knee_cores: int | None  # where improvement stops


def parallel_efficiency(curve: ScalingCurve, cores: int) -> float | None:
    """speedup(cores) / cores, in [0, 1]-ish."""
    speedup = curve.speedup(cores)
    return None if speedup is None else speedup / cores


def karp_flatt(curve: ScalingCurve, cores: int) -> float | None:
    """Experimentally determined serial fraction e = (1/S - 1/p)/(1 - 1/p).

    Near-zero: overhead-free scaling; growing with p: overhead-bound
    (the very fine Inncabs benchmarks); constant: a genuine serial
    fraction (Amdahl).
    """
    if cores < 2:
        raise ValueError("Karp-Flatt needs at least 2 cores")
    speedup = curve.speedup(cores)
    if speedup is None or speedup <= 0:
        return None
    return (1.0 / speedup - 1.0 / cores) / (1.0 - 1.0 / cores)


def knee(curve: ScalingCurve, tolerance: float = 0.03) -> int | None:
    """The core count past which no point improves by > *tolerance*.

    None when the curve fails at every point.
    """
    live = [p for p in curve.points if not p.aborted]
    if not live:
        return None
    best_cores = live[0].cores
    best = live[0].median_exec_ns
    for point in live[1:]:
        if point.median_exec_ns < best * (1 - tolerance):
            best = point.median_exec_ns
            best_cores = point.cores
    return best_cores


def analyze(curve: ScalingCurve) -> ScalingAnalysis:
    """Full summary of one curve."""
    live = [p for p in curve.points if not p.aborted]
    speedups = {p.cores: s for p in live if (s := curve.speedup(p.cores)) is not None}
    if not speedups:
        return ScalingAnalysis(
            benchmark=curve.benchmark,
            runtime=curve.runtime,
            max_speedup=0.0,
            max_speedup_cores=0,
            efficiency_at_max=0.0,
            serial_fraction=None,
            knee_cores=None,
        )
    max_cores = max(speedups, key=lambda c: speedups[c])
    largest = max(speedups)
    return ScalingAnalysis(
        benchmark=curve.benchmark,
        runtime=curve.runtime,
        max_speedup=speedups[max_cores],
        max_speedup_cores=max_cores,
        efficiency_at_max=speedups[max_cores] / max_cores,
        serial_fraction=karp_flatt(curve, largest) if largest >= 2 else None,
        knee_cores=knee(curve),
    )
