"""Event-core microbenchmark: events/sec, tracked against a baseline.

``repro bench-core`` (and the ``benchmarks/bench_core.py`` script)
measures the discrete-event hot path two ways and emits a
``BENCH_core.json`` artifact:

- **core patterns** — synthetic event streams pumped straight through
  the engine: a shallow self-rescheduling ``chain`` (queue depth ~1,
  the fib profile) and a ``fanout`` of a thousand concurrent chains
  (deep calendar ring, the intersim/health profile).  Each pattern runs
  on the current two-tier engine and on the legacy binary-heap engine
  (:mod:`repro.simcore.events_legacy`, the pre-optimisation event core
  kept verbatim as the oracle) and must finish with identical
  ``(now, events_processed)``;
- **reference runs** — full fib/uts/health simulations driven through
  :class:`repro.api.Session`, once per engine via ``engine_factory``.
  The two engines must produce bit-identical simulated results (same
  ``exec_time_ns``, same event count, same counter values) — the
  determinism contract that makes the campaign cache and the regression
  gates sound.  Each workload's event stream (every scheduled delay,
  grouped by the dispatching event) is also recorded and *replayed*
  through both engines with no-op callbacks: the replay reproduces the
  run's exact queue dynamics — same timestamps, same depths, same tie
  batches — while stripping away scheduler and machine-model work, so
  its events/sec isolates the event core itself.  The headline
  acceptance number is the fib(26) replay speedup.

The regression gate compares *speedup ratios* (current engine ÷ legacy
engine events/sec), not raw events/sec: the legacy engine runs in the
same process on the same machine, so the ratio cancels host speed and
lets one committed ``results/baseline_core.json`` serve every CI
runner.
"""

from __future__ import annotations

import json
import time
from array import array
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

SCHEMA = "repro-bench-core/1"

#: Reference workloads: name -> (benchmark, runtime, cores, params).
#: ``quick`` keeps the CI perf-smoke step in tens of seconds; the
#: ``reference`` inputs (fib(26)) are the acceptance-run sizes.
REFERENCE_RUNS: dict[str, dict[str, tuple[str, str, int, dict[str, Any]]]] = {
    "quick": {
        "fib": ("fib", "hpx", 8, {"n": 20}),
        "uts": ("uts", "hpx", 8, {}),
        "health": ("health", "hpx", 8, {}),
    },
    "reference": {
        "fib": ("fib", "hpx", 8, {"n": 26}),
        "uts": ("uts", "hpx", 8, {"b0": 120, "m": 4, "q": 0.31, "max_depth": 24}),
        "health": ("health", "hpx", 8, {"levels": 7, "branching": 4, "steps": 12}),
    },
}

#: Cohort-throughput runs: name -> (benchmark, runtime, cores,
#: exact params, cohort params).  The exact run is the machine-speed
#: control; the cohort run is a paper-scale population the mesoscale
#: engine must clear in O(cohorts) events.  The gated number is the
#: simulated-tasks-per-wall-second ratio (cohort / exact), which
#: cancels host speed just like the engine speedup ratios.
COHORT_RUNS: dict[str, dict[str, tuple[str, str, int, dict[str, Any], dict[str, Any]]]] = {
    "quick": {
        "fib": ("fib", "hpx", 8, {"n": 18}, {"n": 34}),
    },
    "reference": {
        "fib": ("fib", "hpx", 8, {"n": 24}, {"n": 40}),
    },
}

_CHAIN_EVENTS = 200_000
_FANOUT_CHAINS = 1_000
_FANOUT_STEPS = 200


@dataclass
class CorePattern:
    """One synthetic pattern's throughput on both engines."""

    pattern: str
    events: int
    new_eps: float
    legacy_eps: float

    @property
    def speedup(self) -> float:
        return self.new_eps / self.legacy_eps


@dataclass
class ReferenceRun:
    """One full-simulation workload on both engines.

    ``new_wall_s``/``legacy_wall_s`` time the *complete* simulation
    (scheduler + machine model + event core); ``replay_new_eps`` /
    ``replay_legacy_eps`` time the recorded event stream replayed with
    no-op callbacks — the event core alone, at this workload's exact
    queue dynamics.
    """

    name: str
    benchmark: str
    runtime: str
    cores: int
    params: dict[str, Any]
    events: int
    exec_time_ns: int
    new_wall_s: float
    legacy_wall_s: float
    replay_new_eps: float
    replay_legacy_eps: float
    identical: bool

    @property
    def new_eps(self) -> float:
        return self.events / self.new_wall_s

    @property
    def legacy_eps(self) -> float:
        return self.events / self.legacy_wall_s

    @property
    def speedup(self) -> float:
        """End-to-end simulation speedup (both runs share all non-core work)."""
        return self.legacy_wall_s / self.new_wall_s

    @property
    def core_speedup(self) -> float:
        """Event-core speedup on this workload's replayed stream."""
        return self.replay_new_eps / self.replay_legacy_eps


@dataclass
class CohortRun:
    """One exact-vs-cohort throughput pair (the mesoscale advantage).

    The exact run (a small input) measures this host's simulated tasks
    per wall second on the event-by-event path; the cohort run (a
    paper-scale input) measures the same on the mesoscale path.  Their
    ratio is host-independent and collapses by orders of magnitude if
    the cohort engine ever degrades to per-task work.
    """

    name: str
    benchmark: str
    runtime: str
    cores: int
    exact_params: dict[str, Any]
    cohort_params: dict[str, Any]
    exact_tasks: int
    cohort_tasks: int
    exact_wall_s: float
    cohort_wall_s: float
    verified: bool

    @property
    def exact_tps(self) -> float:
        return self.exact_tasks / self.exact_wall_s

    @property
    def cohort_tps(self) -> float:
        return self.cohort_tasks / self.cohort_wall_s

    @property
    def throughput_ratio(self) -> float:
        return self.cohort_tps / self.exact_tps


@dataclass
class BenchCoreResult:
    """The full artifact: synthetic patterns + reference + cohort runs."""

    mode: str
    core: list[CorePattern] = field(default_factory=list)
    runs: list[ReferenceRun] = field(default_factory=list)
    cohort: list[CohortRun] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        return all(r.identical for r in self.runs) and all(c.verified for c in self.cohort)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"schema": SCHEMA, "mode": self.mode}
        out["core"] = [
            {**asdict(p), "speedup": round(p.speedup, 4)} for p in self.core
        ]
        out["runs"] = [
            {
                **asdict(r),
                "new_eps": round(r.new_eps, 1),
                "legacy_eps": round(r.legacy_eps, 1),
                "speedup": round(r.speedup, 4),
                "core_speedup": round(r.core_speedup, 4),
            }
            for r in self.runs
        ]
        out["cohort"] = [
            {
                **asdict(c),
                "exact_tps": round(c.exact_tps, 1),
                "cohort_tps": round(c.cohort_tps, 1),
                "throughput_ratio": round(c.throughput_ratio, 4),
            }
            for c in self.cohort
        ]
        return out

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


# -- synthetic core patterns -----------------------------------------------


def _drive_chain(engine: Any) -> None:
    """Queue depth ~1: each event schedules its successor (fib profile)."""
    count = [0]
    call_later = engine.call_later

    def tick(k: int) -> None:
        count[0] += 1
        if count[0] < _CHAIN_EVENTS:
            call_later(3 if count[0] % 7 else 0, tick, k + 1)

    call_later(1, tick, 0)
    engine.run()


def _drive_fanout(engine: Any) -> None:
    """Queue depth ~1000: concurrent chains with mixed delays."""
    call_later = engine.call_later

    def tick(k: int, left: int) -> None:
        if left:
            call_later(5 + (k % 11), tick, k, left - 1)

    for k in range(_FANOUT_CHAINS):
        call_later(1 + (k % 13), tick, k, _FANOUT_STEPS - 1)
    engine.run()


_PATTERNS: dict[str, Callable[[Any], None]] = {
    "chain": _drive_chain,
    "fanout": _drive_fanout,
}


def _time_pattern(
    drive: Callable[[Any], None], factory: Callable[[], Any]
) -> tuple[float, int, int]:
    engine = factory()
    t0 = time.perf_counter()
    drive(engine)
    wall = time.perf_counter() - t0
    return wall, engine.now, engine.events_processed


def run_core_patterns(repeat: int = 3) -> list[CorePattern]:
    """Pump each synthetic pattern through both engines, interleaved.

    Takes the best of *repeat* interleaved (new, legacy) pairs so a
    noisy host biases both engines alike.  Raises ``RuntimeError`` if
    the engines disagree on the final clock or event count.
    """
    from repro.simcore.events import Engine
    from repro.simcore.events_legacy import LegacyEngine

    out = []
    for name, drive in _PATTERNS.items():
        best_new = best_legacy = float("inf")
        events = 0
        for _ in range(repeat):
            new_wall, new_now, new_events = _time_pattern(drive, Engine)
            legacy_wall, legacy_now, legacy_events = _time_pattern(drive, LegacyEngine)
            if (new_now, new_events) != (legacy_now, legacy_events):
                raise RuntimeError(
                    f"core pattern {name!r} diverged: "
                    f"new=({new_now}, {new_events}) legacy=({legacy_now}, {legacy_events})"
                )
            best_new = min(best_new, new_wall)
            best_legacy = min(best_legacy, legacy_wall)
            events = new_events
        out.append(
            CorePattern(
                pattern=name,
                events=events,
                new_eps=events / best_new,
                legacy_eps=events / best_legacy,
            )
        )
    return out


# -- reference runs --------------------------------------------------------


def _replay_stream(
    groups: array, delays: array, factory: Callable[[], Any]
) -> tuple[float, int, int]:
    """Timed :func:`repro.simcore.record.replay_stream`.

    Returns ``(wall_seconds, now, events_processed)``.  The wall time
    covers engine construction and the group-0 seed pushes too, but
    those are O(1) against the millions of replayed events and both
    engines pay them identically, so the speedup ratio is unaffected.
    """
    from repro.simcore.record import replay_stream

    t0 = time.perf_counter()
    _, now, events = replay_stream(groups, delays, factory)
    return time.perf_counter() - t0, now, events


def _record_stream(
    benchmark: str, runtime: str, cores: int, params: Mapping[str, Any], platform: Any = None
) -> tuple[array, array, Any]:
    from repro.simcore.record import RecordingEngine

    recorder = RecordingEngine()
    _, result = _run_once(benchmark, runtime, cores, params, lambda: recorder, platform)
    return recorder.groups, recorder.delays, result


def _run_once(
    benchmark: str,
    runtime: str,
    cores: int,
    params: Mapping[str, Any],
    factory: Any,
    platform: Any = None,
) -> tuple[float, Any]:
    from repro.api import Session
    from repro.workloads import WorkloadSpec

    session = Session(runtime=runtime, cores=cores, platform=platform, engine_factory=factory)
    t0 = time.perf_counter()
    result = session.run(WorkloadSpec.parse(benchmark), params=params)
    return time.perf_counter() - t0, result


def _same_results(a: Any, b: Any) -> bool:
    return (
        a.exec_time_ns == b.exec_time_ns
        and a.engine_events == b.engine_events
        and a.counters == b.counters
        and a.tasks_executed == b.tasks_executed
        and a.verified == b.verified
    )


def run_reference(
    mode: str = "quick",
    *,
    names: list[str] | None = None,
    repeat: int = 2,
    platform: Any = None,
    progress: Callable[[str], None] | None = None,
) -> list[ReferenceRun]:
    """Run the reference workloads on both engines, interleaved."""
    from repro.simcore.events import Engine
    from repro.simcore.events_legacy import LegacyEngine

    table = REFERENCE_RUNS[mode]
    out = []
    for name in names or list(table):
        benchmark, runtime, cores, params = table[name]
        if progress is not None:
            progress(f"{name}: {benchmark} [{runtime}, {cores} cores] {params or '(defaults)'}")
        best_new = best_legacy = float("inf")
        identical = True
        new_result: Any = None
        for _ in range(repeat):
            new_wall, new_result = _run_once(benchmark, runtime, cores, params, Engine, platform)
            legacy_wall, legacy_result = _run_once(
                benchmark, runtime, cores, params, LegacyEngine, platform
            )
            identical = identical and _same_results(new_result, legacy_result)
            best_new = min(best_new, new_wall)
            best_legacy = min(best_legacy, legacy_wall)
        # Record the event stream once, then replay it through both
        # engines: the event core at this workload's exact dynamics.
        groups, delays, recorded = _record_stream(benchmark, runtime, cores, params, platform)
        identical = identical and _same_results(new_result, recorded)
        best_replay_new = best_replay_legacy = float("inf")
        for _ in range(repeat):
            wall, now, events = _replay_stream(groups, delays, Engine)
            if (now, events) != (recorded.exec_time_ns, recorded.engine_events):
                raise RuntimeError(
                    f"{name} replay diverged on the current engine: "
                    f"({now}, {events}) != ({recorded.exec_time_ns}, {recorded.engine_events})"
                )
            best_replay_new = min(best_replay_new, wall)
            wall, now, events = _replay_stream(groups, delays, LegacyEngine)
            if (now, events) != (recorded.exec_time_ns, recorded.engine_events):
                raise RuntimeError(
                    f"{name} replay diverged on the legacy engine: "
                    f"({now}, {events}) != ({recorded.exec_time_ns}, {recorded.engine_events})"
                )
            best_replay_legacy = min(best_replay_legacy, wall)
        out.append(
            ReferenceRun(
                name=name,
                benchmark=benchmark,
                runtime=runtime,
                cores=cores,
                params=dict(params),
                events=new_result.engine_events,
                exec_time_ns=new_result.exec_time_ns,
                new_wall_s=best_new,
                legacy_wall_s=best_legacy,
                replay_new_eps=recorded.engine_events / best_replay_new,
                replay_legacy_eps=recorded.engine_events / best_replay_legacy,
                identical=identical,
            )
        )
    return out


def run_cohort(
    mode: str = "quick",
    *,
    repeat: int = 3,
    platform: Any = None,
    progress: Callable[[str], None] | None = None,
) -> list[CohortRun]:
    """Time the exact-vs-cohort throughput pairs (best of *repeat*)."""
    from repro.api import Session
    from repro.workloads import WorkloadSpec

    out = []
    for name, (benchmark, runtime, cores, exact_params, cohort_params) in COHORT_RUNS[
        mode
    ].items():
        if progress is not None:
            progress(
                f"cohort {name}: exact {exact_params} vs cohort {cohort_params} "
                f"[{runtime}, {cores} cores]"
            )
        session = Session(runtime=runtime, cores=cores, platform=platform)
        spec = WorkloadSpec.parse(benchmark)
        best_exact = best_cohort = float("inf")
        verified = True
        exact_tasks = cohort_tasks = 0
        for _ in range(repeat):
            t0 = time.perf_counter()
            exact = session.run(
                spec, params=exact_params, mode="exact", collect_counters=False
            )
            best_exact = min(best_exact, time.perf_counter() - t0)
            t0 = time.perf_counter()
            cohort = session.run(
                spec, params=cohort_params, mode="cohort", collect_counters=False
            )
            best_cohort = min(best_cohort, time.perf_counter() - t0)
            verified = verified and exact.verified and cohort.verified
            exact_tasks = exact.tasks_executed
            cohort_tasks = cohort.tasks_executed
        out.append(
            CohortRun(
                name=name,
                benchmark=benchmark,
                runtime=runtime,
                cores=cores,
                exact_params=dict(exact_params),
                cohort_params=dict(cohort_params),
                exact_tasks=exact_tasks,
                cohort_tasks=cohort_tasks,
                exact_wall_s=best_exact,
                cohort_wall_s=best_cohort,
                verified=verified,
            )
        )
    return out


def run_bench_core(
    mode: str = "quick",
    *,
    names: list[str] | None = None,
    repeat: int = 2,
    platform: Any = None,
    progress: Callable[[str], None] | None = None,
) -> BenchCoreResult:
    """Full bench-core pass: synthetic patterns + reference + cohort runs.

    *platform* selects the simulated node for the reference runs (a
    preset name, platform file path, or spec); the synthetic patterns
    bypass the machine model and are platform-independent.
    """
    core = run_core_patterns()
    runs = run_reference(mode, names=names, repeat=repeat, platform=platform, progress=progress)
    cohort = run_cohort(mode, platform=platform, progress=progress)
    return BenchCoreResult(mode=mode, core=core, runs=runs, cohort=cohort)


# -- regression gate -------------------------------------------------------


@dataclass
class GateFailure:
    """One gated metric that regressed beyond the threshold."""

    metric: str
    baseline: float
    current: float
    threshold: float

    def __str__(self) -> str:
        drop = 1 - self.current / self.baseline
        return (
            f"{self.metric}: speedup ratio {self.current:.3f} vs baseline "
            f"{self.baseline:.3f} ({drop:.0%} drop > {self.threshold:.0%} allowed)"
        )


def compare_to_baseline(
    current: Mapping[str, Any], baseline: Mapping[str, Any], *, threshold: float = 0.20
) -> list[GateFailure]:
    """Gate *current* against *baseline* (both ``to_dict()`` payloads).

    Compares the new÷legacy events/sec ratio per metric — the in-process
    legacy engine is the machine-speed control, so the committed
    baseline transfers across hosts.  A metric fails when its ratio
    drops more than *threshold* below the baseline's.
    """
    failures = []
    for kind, ratio in (
        ("core", "speedup"),
        ("runs", "core_speedup"),
        ("cohort", "throughput_ratio"),
    ):
        base_rows = {row.get("pattern") or row.get("name"): row for row in baseline.get(kind, [])}
        for row in current.get(kind, []):
            key = row.get("pattern") or row.get("name")
            base = base_rows.get(key)
            if base is None:
                continue
            if row[ratio] < base[ratio] * (1 - threshold):
                failures.append(
                    GateFailure(
                        metric=f"{kind}/{key}",
                        baseline=base[ratio],
                        current=row[ratio],
                        threshold=threshold,
                    )
                )
    return failures


def is_bench_core_payload(payload: Any) -> bool:
    """True if *payload* (parsed JSON) is a bench-core artifact."""
    return isinstance(payload, Mapping) and payload.get("schema") == SCHEMA


def render(result: BenchCoreResult) -> str:
    """Human-readable report table."""
    lines = [f"bench-core [{result.mode}]", "", "event-core patterns (synthetic):"]
    for p in result.core:
        lines.append(
            f"  {p.pattern:8s} {p.events:>9,d} events   "
            f"new {p.new_eps / 1e3:8.0f}k ev/s   legacy {p.legacy_eps / 1e3:8.0f}k ev/s   "
            f"{p.speedup:5.2f}x"
        )
    lines.append("")
    lines.append("reference runs (full simulation, both engines):")
    for r in result.runs:
        det = "bit-identical" if r.identical else "DIVERGED"
        lines.append(
            f"  {r.name:8s} {r.events:>9,d} events   "
            f"new {r.new_wall_s:6.2f}s ({r.new_eps / 1e3:6.0f}k ev/s)   "
            f"legacy {r.legacy_wall_s:6.2f}s   {r.speedup:5.2f}x   [{det}]"
        )
    lines.append("")
    lines.append("event core on the replayed streams (no-op callbacks):")
    for r in result.runs:
        lines.append(
            f"  {r.name:8s} new {r.replay_new_eps / 1e3:8.0f}k ev/s   "
            f"legacy {r.replay_legacy_eps / 1e3:8.0f}k ev/s   {r.core_speedup:5.2f}x"
        )
    if result.cohort:
        lines.append("")
        lines.append("cohort throughput (simulated tasks/sec, cohort vs exact):")
        for c in result.cohort:
            ok = "verified" if c.verified else "FAILED VERIFY"
            lines.append(
                f"  {c.name:8s} exact {c.exact_tasks:>11,d} tasks ({c.exact_tps / 1e3:8.0f}k/s)   "
                f"cohort {c.cohort_tasks:>13,d} tasks ({c.cohort_tps / 1e6:8.0f}M/s)   "
                f"{c.throughput_ratio:9.0f}x   [{ok}]"
            )
    return "\n".join(lines)
