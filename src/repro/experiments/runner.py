"""The result record of one benchmark run.

One :class:`RunResult` is one cell of the paper's experiment matrix:
wall time, verification, counter values sampled exactly as the paper
does with ``hpx::evaluate_active_counters`` / ``reset_active_counters``,
and the process statistics.  Runs are executed by
:class:`repro.api.Session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class RunResult:
    """Outcome of one benchmark run."""

    benchmark: str
    runtime: str  # "hpx" | "std"
    cores: int
    mode: str = "exact"  # execution mode: "exact" | "cohort"
    aborted: bool = False
    abort_reason: str | None = None
    exec_time_ns: int = 0
    verified: bool = False
    result: Any = None
    counters: dict[str, float] = field(default_factory=dict)
    # The run's telemetry frame: every sample recorded through the
    # pipeline (periodic rows plus the final evaluation).  ``counters``
    # is its final-totals view, kept for the legacy dict consumers.
    telemetry: Any = None  # repro.telemetry.frame.TelemetryFrame | None
    # Periodic in-band samples (lists of CounterValue) when a
    # query_interval_ns was requested.
    query_samples: list = field(default_factory=list)
    tasks_executed: int = 0
    tasks_created: int = 0
    peak_live_tasks: int = 0
    offcore_bytes: int = 0
    engine_events: int = 0
    # The causal profile (repro.profiler.report.RunProfile) when the
    # run was profiled; a plain summary dict when loaded back from a
    # campaign artifact.
    profile: Any = None

    @property
    def exec_time_us(self) -> float:
        return self.exec_time_ns / 1_000

    @property
    def exec_time_ms(self) -> float:
        return self.exec_time_ns / 1_000_000

    def counter(self, name: str) -> float:
        """Counter value by exact name; raises KeyError listing names."""
        try:
            return self.counters[name]
        except KeyError:
            known = "\n  ".join(self.counters)
            raise KeyError(f"no counter {name!r} in result; collected:\n  {known}") from None
