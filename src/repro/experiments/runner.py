"""Single-run driver: one benchmark, one runtime, one core count.

This is the reproduction of one cell of the paper's experiment matrix:
build the simulated node, run the benchmark to completion under the
chosen runtime, verify the computed result, and — for HPX — evaluate
the performance counters for the sample exactly as the paper does with
``hpx::evaluate_active_counters`` / ``reset_active_counters``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.counters.base import CounterEnvironment
from repro.counters.manager import ActiveCounters
from repro.counters.registry import build_default_registry
from repro.experiments.config import DEFAULT_COUNTERS, ExperimentConfig
from repro.inncabs.base import effective_locality_factor
from repro.inncabs.suite import get_benchmark
from repro.kernel.scheduler import StdRuntime
from repro.papi.hw import PapiSubstrate
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine


@dataclass
class RunResult:
    """Outcome of one benchmark run."""

    benchmark: str
    runtime: str  # "hpx" | "std"
    cores: int
    aborted: bool = False
    abort_reason: str | None = None
    exec_time_ns: int = 0
    verified: bool = False
    result: Any = None
    counters: dict[str, float] = field(default_factory=dict)
    # Periodic in-band samples (lists of CounterValue) when a
    # query_interval_ns was requested.
    query_samples: list = field(default_factory=list)
    tasks_executed: int = 0
    tasks_created: int = 0
    peak_live_tasks: int = 0
    offcore_bytes: int = 0
    engine_events: int = 0

    @property
    def exec_time_us(self) -> float:
        return self.exec_time_ns / 1_000

    @property
    def exec_time_ms(self) -> float:
        return self.exec_time_ns / 1_000_000

    def counter(self, name: str) -> float:
        """Counter value by exact name; raises KeyError listing names."""
        try:
            return self.counters[name]
        except KeyError:
            known = "\n  ".join(self.counters)
            raise KeyError(f"no counter {name!r} in result; collected:\n  {known}") from None


def run_benchmark(
    benchmark: str,
    *,
    runtime: str = "hpx",
    cores: int = 1,
    params: Mapping[str, Any] | None = None,
    config: ExperimentConfig | None = None,
    counter_specs: Sequence[str] | None = None,
    collect_counters: bool = True,
    keep_result: bool = False,
    query_interval_ns: int | None = None,
    query_sink: Any = None,
) -> RunResult:
    """Run one benchmark sample; returns a :class:`RunResult`.

    ``runtime`` selects the HPX-style task runtime (``"hpx"``) or the
    ``std::async`` kernel-thread baseline (``"std"``).  Counters are an
    HPX capability (the paper's point), so for ``"std"`` only wall time
    and process statistics are reported.

    ``collect_counters=False`` disables counter instrumentation
    entirely — used by the counter-overhead experiment of Section V-C.

    ``query_interval_ns`` attaches an in-band periodic query (the
    ``--hpx:print-counter-interval`` convenience layer): the active
    counters are sampled every interval *during* the run, each sample
    delivered to ``query_sink`` (a callable taking a list of
    CounterValue rows) and collected on ``RunResult.query_samples``.
    """
    config = config or ExperimentConfig()
    bench = get_benchmark(benchmark)
    merged = bench.params_with_defaults(params)
    root_fn, root_args = bench.make_root(merged)

    engine = Engine()
    machine = Machine(config.machine)
    out = RunResult(benchmark=benchmark, runtime=runtime, cores=cores)

    if runtime == "hpx":
        rt: Any = HpxRuntime(
            engine,
            machine,
            num_workers=cores,
            params=config.hpx,
            locality_traffic_factor=effective_locality_factor(
                bench.info.hpx_locality_factor, cores
            ),
        )
        active: ActiveCounters | None = None
        query = None
        if collect_counters:
            env = CounterEnvironment(
                engine=engine, runtime=rt, machine=machine, papi=PapiSubstrate(machine)
            )
            registry = build_default_registry(env)
            active = ActiveCounters(registry, counter_specs or DEFAULT_COUNTERS)
            active.start()
            active.reset_active_counters()
            if query_interval_ns is not None:
                from repro.counters.query import PeriodicQuery

                query = PeriodicQuery(
                    active,
                    engine=engine,
                    runtime=rt,
                    interval_ns=query_interval_ns,
                    sink=query_sink,
                    in_band=True,
                )
                query.start()
        elif query_interval_ns is not None:
            raise ValueError("periodic queries need collect_counters=True")
        future = rt.submit(root_fn, *root_args)
        engine.run()
        if not future.is_ready:
            raise RuntimeError(rt.describe_stall())
        result = future.value()
        out.exec_time_ns = engine.now
        out.tasks_executed = rt.stats.tasks_executed
        out.tasks_created = rt.stats.tasks_created
        out.peak_live_tasks = rt.stats.peak_live_tasks
        if active is not None:
            values = active.evaluate_active_counters(reset=True)
            out.counters = {v.name: v.value for v in values}
        if query is not None:
            out.query_samples = query.samples
    elif runtime == "std":
        rt = StdRuntime(engine, machine, num_workers=cores, params=config.std)
        future = rt.submit(root_fn, *root_args)
        engine.run()
        out.tasks_created = rt.stats.threads_created
        out.tasks_executed = rt.stats.threads_completed
        out.peak_live_tasks = rt.stats.peak_live_threads
        if rt.aborted:
            out.aborted = True
            out.abort_reason = rt.abort_reason
            out.exec_time_ns = engine.now
            out.engine_events = engine.events_processed
            return out
        if not future.is_ready:
            raise RuntimeError("std run finished without a result")
        result = future.value()
        out.exec_time_ns = engine.now
    else:
        raise ValueError(f"unknown runtime {runtime!r}; expected 'hpx' or 'std'")

    out.verified = bench.verify(result, merged)
    if keep_result:
        out.result = result
    out.offcore_bytes = machine.total_offcore_bytes()
    out.engine_events = engine.events_processed
    return out
