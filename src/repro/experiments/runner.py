"""Single-run driver: one benchmark, one runtime, one core count.

This is the reproduction of one cell of the paper's experiment matrix:
build the simulated node, run the benchmark to completion under the
chosen runtime, verify the computed result, and — for HPX — evaluate
the performance counters for the sample exactly as the paper does with
``hpx::evaluate_active_counters`` / ``reset_active_counters``.

.. deprecated::
    :func:`run_benchmark` is kept for backwards compatibility; new code
    should use :class:`repro.api.Session`, which fixes the environment
    once and runs benchmarks against it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.experiments.config import ExperimentConfig


@dataclass
class RunResult:
    """Outcome of one benchmark run."""

    benchmark: str
    runtime: str  # "hpx" | "std"
    cores: int
    aborted: bool = False
    abort_reason: str | None = None
    exec_time_ns: int = 0
    verified: bool = False
    result: Any = None
    counters: dict[str, float] = field(default_factory=dict)
    # Periodic in-band samples (lists of CounterValue) when a
    # query_interval_ns was requested.
    query_samples: list = field(default_factory=list)
    tasks_executed: int = 0
    tasks_created: int = 0
    peak_live_tasks: int = 0
    offcore_bytes: int = 0
    engine_events: int = 0

    @property
    def exec_time_us(self) -> float:
        return self.exec_time_ns / 1_000

    @property
    def exec_time_ms(self) -> float:
        return self.exec_time_ns / 1_000_000

    def counter(self, name: str) -> float:
        """Counter value by exact name; raises KeyError listing names."""
        try:
            return self.counters[name]
        except KeyError:
            known = "\n  ".join(self.counters)
            raise KeyError(f"no counter {name!r} in result; collected:\n  {known}") from None


def run_benchmark(
    benchmark: str,
    *,
    runtime: str = "hpx",
    cores: int = 1,
    params: Mapping[str, Any] | None = None,
    config: ExperimentConfig | None = None,
    counter_specs: Sequence[str] | None = None,
    collect_counters: bool = True,
    keep_result: bool = False,
    query_interval_ns: int | None = None,
    query_sink: Any = None,
) -> RunResult:
    """Run one benchmark sample; returns a :class:`RunResult`.

    ``runtime`` selects the HPX-style task runtime (``"hpx"``) or the
    ``std::async`` kernel-thread baseline (``"std"``).  Counters are an
    HPX capability (the paper's point), so for ``"std"`` only wall time
    and process statistics are reported.

    ``collect_counters=False`` disables counter instrumentation
    entirely — used by the counter-overhead experiment of Section V-C.

    ``query_interval_ns`` attaches an in-band periodic query (the
    ``--hpx:print-counter-interval`` convenience layer): the active
    counters are sampled every interval *during* the run, each sample
    delivered to ``query_sink`` (a callable taking a list of
    CounterValue rows) and collected on ``RunResult.query_samples``.

    .. deprecated::
        Use :class:`repro.api.Session`::

            Session(runtime=runtime, cores=cores).run(benchmark, ...)
    """
    warnings.warn(
        "run_benchmark() is deprecated; use repro.api.Session instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import Session  # late import: api builds on this module

    if runtime not in ("hpx", "std"):
        raise ValueError(f"unknown runtime {runtime!r}; expected 'hpx' or 'std'")
    session = Session(runtime=runtime, cores=cores, config=config)
    return session.run(
        benchmark,
        params=params,
        counters=counter_specs,
        collect_counters=collect_counters,
        keep_result=keep_result,
        query_interval_ns=query_interval_ns,
        query_sink=query_sink,
    )
