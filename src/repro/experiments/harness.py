"""Strong-scaling harness.

The paper's protocol: increase the core count while holding the
workload fixed; 20 samples per configuration; medians of execution
times and of every performance counter (counters are evaluated and
reset around each sample with the ``hpx::evaluate_active_counters`` /
``reset_active_counters`` API).

Since the campaign engine landed, this module is a thin veneer over
:mod:`repro.campaign`: :func:`run_strong_scaling` describes one
benchmark/runtime slice as a :class:`~repro.campaign.spec.CampaignSpec`
and aggregates the resulting cells — the same single path the parallel
engine, the cached artifacts, and the figures/tables all share.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunResult

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.campaign.cache import ResultCache


@dataclass
class ScalingPoint:
    """Aggregated samples for one core count."""

    cores: int
    aborted: bool
    median_exec_ns: float = 0.0
    exec_samples: tuple[int, ...] = ()
    counters: dict[str, float] = field(default_factory=dict)  # medians
    # Median counter values as a telemetry frame (same numbers as
    # ``counters``, plus units) when the runs carried frames.
    telemetry: Any = None
    tasks_executed: int = 0
    peak_live_tasks: int = 0
    offcore_bytes: int = 0

    @property
    def median_exec_ms(self) -> float:
        return self.median_exec_ns / 1e6


@dataclass
class ScalingCurve:
    """One benchmark x runtime strong-scaling series."""

    benchmark: str
    runtime: str
    points: list[ScalingPoint]

    def point(self, cores: int) -> ScalingPoint:
        for p in self.points:
            if p.cores == cores:
                return p
        raise KeyError(f"no point for {cores} cores in {self.benchmark}/{self.runtime}")

    @property
    def baseline_ns(self) -> float | None:
        """Median one-core time (None if the one-core run aborted)."""
        p = self.points[0]
        return None if p.aborted else p.median_exec_ns

    def speedup(self, cores: int) -> float | None:
        base = self.baseline_ns
        p = self.point(cores)
        if base is None or p.aborted or p.median_exec_ns <= 0:
            return None
        return base / p.median_exec_ns

    def scales_to(self, tolerance: float = 0.03) -> str:
        """Table V style scaling label: 'to N', 'no scaling' or 'fail'.

        The largest core count whose time improves on every smaller
        one by more than *tolerance*.
        """
        live = [p for p in self.points if not p.aborted]
        if not live or len(live) < len(self.points):
            return "fail"
        best_cores = live[0].cores
        best = live[0].median_exec_ns
        for p in live[1:]:
            if p.median_exec_ns < best * (1 - tolerance):
                best = p.median_exec_ns
                best_cores = p.cores
        if best_cores == live[0].cores:
            return "no scaling"
        return f"to {best_cores}"


def aggregate_point(cores: int, runs: Sequence[RunResult]) -> ScalingPoint:
    """Fold one core count's samples into a :class:`ScalingPoint`.

    Medians of execution time and of every counter, per the paper's
    protocol.  Shared by the serial harness and the campaign artifact
    aggregation, so both report identical numbers.
    """
    aborted = any(r.aborted for r in runs)
    point = ScalingPoint(cores=cores, aborted=aborted)
    point.peak_live_tasks = max(r.peak_live_tasks for r in runs)
    if not aborted:
        times = [r.exec_time_ns for r in runs]
        point.median_exec_ns = statistics.median(times)
        point.exec_samples = tuple(times)
        point.tasks_executed = runs[0].tasks_executed
        point.offcore_bytes = round(statistics.median([r.offcore_bytes for r in runs]))
        # Per-run totals come off the telemetry frame when the run
        # carried one (a frame's totals are its last sample per name —
        # identical to the legacy ``counters`` dict), else the dict.
        totals = [
            r.telemetry.totals() if getattr(r, "telemetry", None) is not None else r.counters
            for r in runs
        ]
        names = totals[0].keys()
        point.counters = {name: statistics.median([t[name] for t in totals]) for name in names}
        first = getattr(runs[0], "telemetry", None)
        if first is not None and point.counters:
            from repro.telemetry.frame import TelemetryFrame

            point.telemetry = TelemetryFrame.from_counters(
                point.counters,
                timestamp_ns=round(point.median_exec_ns),
                units=first.units(),
                run_id=f"{runs[0].benchmark}/{runs[0].runtime}/c{cores}/median",
            )
    return point


def run_strong_scaling(
    benchmark: str,
    runtime: str,
    *,
    core_counts: Sequence[int] | None = None,
    samples: int | None = None,
    params: Mapping[str, Any] | None = None,
    config: ExperimentConfig | None = None,
    counter_specs: Sequence[str] | None = None,
    collect_counters: bool = True,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> ScalingCurve:
    """The paper's strong-scaling experiment for one benchmark/runtime.

    Runs through the campaign engine: ``jobs`` fans samples/core counts
    out over a process pool (bit-identical to serial), and ``cache``
    reuses previously-computed cells.
    """
    from repro.campaign.engine import run_campaign
    from repro.campaign.spec import CampaignSpec

    config = config or ExperimentConfig()
    spec = CampaignSpec.from_config(
        config,
        benchmarks=(benchmark,),
        runtimes=(runtime,),
        core_counts=core_counts,
        samples=samples,
        params=params,
        collect_counters=collect_counters,
        counter_specs=counter_specs,
    )
    run = run_campaign(spec, jobs=jobs, cache=cache)
    return run.artifact.curve(benchmark, runtime)
