"""Experiment harness: strong-scaling runner, tables and figures.

One module per concern:

- :mod:`repro.experiments.config` — the paper's platform (Table III)
  and protocol constants;
- :mod:`repro.experiments.runner` — the :class:`RunResult` record of
  one benchmark run (executed by :class:`repro.api.Session`);
- :mod:`repro.experiments.harness` — strong scaling with per-sample
  counter evaluation and medians;
- :mod:`repro.experiments.tables` — Table I and Table V generators;
- :mod:`repro.experiments.figures` — series for Figures 1-14;
- :mod:`repro.experiments.report` — plain-text rendering.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    ScalingCurve,
    ScalingPoint,
    aggregate_point,
    run_strong_scaling,
)
from repro.experiments.runner import RunResult

__all__ = [
    "ExperimentConfig",
    "RunResult",
    "ScalingCurve",
    "ScalingPoint",
    "aggregate_point",
    "run_strong_scaling",
]
