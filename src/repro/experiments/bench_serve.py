"""Load-test harness for the run server (``repro bench-serve``).

Spawns one real ``repro serve`` process, then drives it the way heavy
traffic does: N concurrent client tasks submit a run list hundreds of
entries deep as fast as admission control allows (backing off on 429 +
``Retry-After``), then long-poll every accepted run to completion.
Submissions are timestamped at first attempt and at completion, so the
reported p50/p99 latency is true submit-to-result time including queue
wait — the number a client of the service experiences.

The run list mixes unique workloads (distinct seeds -> cache misses
that really execute) with a small hot set resubmitted repeatedly
(cache hits served straight from the shared content-addressed cache),
so one invocation measures both the execution pipeline under backlog
and the cache-hit fast path.

Gating is ratio-based so the committed baseline transfers across
machines: ``p99_over_ideal`` divides p99 latency by the run's *ideal*
makespan (total cold simulated-run wall time / workers) measured in the
same invocation — a machine-speed control in the spirit of the
bench-core new÷legacy ratio.
"""

from __future__ import annotations

import asyncio
import json
import math
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

BENCH_SERVE_SCHEMA = 1

#: (clients, runs, server workers) per mode.
MODES = {
    "quick": {"clients": 50, "runs": 500, "workers": 4},
    "reference": {"clients": 100, "runs": 2000, "workers": 8},
}

#: The hot set: workloads resubmitted throughout the run list.
HOT_WORKLOADS = 16
#: Fraction of the run list drawn from the hot set.
HOT_FRACTION = 0.2


def build_jobs(runs: int) -> list[dict[str, Any]]:
    """The deterministic run list: small fib cells, mostly unique.

    Every 1/HOT_FRACTION-th submission reuses one of ``HOT_WORKLOADS``
    hot cells (same seed -> same cache key -> a hit once warm); the
    rest get a fresh seed and must execute.
    """
    hot_every = max(round(1 / HOT_FRACTION), 1)
    jobs = []
    for i in range(runs):
        if i % hot_every == hot_every - 1:
            hot = i // hot_every % HOT_WORKLOADS
            jobs.append(
                {
                    "benchmark": "fib",
                    "cores": 1 + hot % 4,
                    "params": {"n": 8 + hot % 3},
                    "seed": 1000 + hot,
                }
            )
        else:
            jobs.append(
                {
                    "benchmark": "fib",
                    "cores": 1 + i % 4,
                    "params": {"n": 8 + i % 3},
                    "seed": 100_000 + i,
                }
            )
    return jobs


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th (0..1) percentile by the nearest-rank method."""
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(math.ceil(q * len(ordered)), 1)
    return ordered[rank - 1]


def _summary(seconds: Sequence[float]) -> dict[str, float]:
    if not seconds:
        return {"p50": math.nan, "p99": math.nan, "mean": math.nan, "max": math.nan}
    return {
        "p50": percentile(seconds, 0.50) * 1e3,
        "p99": percentile(seconds, 0.99) * 1e3,
        "mean": sum(seconds) / len(seconds) * 1e3,
        "max": max(seconds) * 1e3,
    }


@dataclass
class _RunOutcome:
    submitted_at: float
    finished_at: float = math.nan
    run_id: str = ""
    cached: bool = False
    retries: int = 0
    failed: bool = False

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at


@dataclass
class LoadResult:
    """Everything one load run measured (the BENCH_serve.json payload)."""

    mode: str
    clients: int
    runs: int
    workers: int
    wall_seconds: float
    outcomes: list[_RunOutcome] = field(default_factory=list)
    run_seconds_total: float = 0.0  # server-side cold execution time
    peak_queue_depth: int = 0
    server_stats: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        done = [o for o in self.outcomes if not o.failed]
        cold = [o.latency for o in done if not o.cached]
        hits = [o.latency for o in done if o.cached]
        latencies = [o.latency for o in done]
        ideal = self.run_seconds_total / max(self.workers, 1)
        p99 = percentile(latencies, 0.99)
        return {
            "schema": BENCH_SERVE_SCHEMA,
            "kind": "repro-bench-serve",
            "mode": self.mode,
            "clients": self.clients,
            "runs": self.runs,
            "workers": self.workers,
            "completed": len(done),
            "failed": sum(o.failed for o in self.outcomes),
            "retries_429": sum(o.retries for o in self.outcomes),
            "cache_hits": len(hits),
            "cache_hit_rate": len(hits) / len(done) if done else 0.0,
            "peak_queue_depth": self.peak_queue_depth,
            "wall_seconds": self.wall_seconds,
            "ideal_seconds": ideal,
            "latency_ms": _summary(latencies),
            "cold_latency_ms": _summary(cold),
            "hit_latency_ms": _summary(hits),
            "throughput_rps": len(done) / self.wall_seconds if self.wall_seconds else 0.0,
            "hit_throughput_rps": len(hits) / self.wall_seconds if self.wall_seconds else 0.0,
            # Machine-transferable gate metrics: latency relative to the
            # ideal makespan of the same invocation's cold work.
            "p99_over_ideal": p99 / ideal if ideal else math.nan,
            "wall_over_ideal": self.wall_seconds / ideal if ideal else math.nan,
            "server_stats": dict(self.server_stats),
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n")


def is_bench_serve_payload(payload: Any) -> bool:
    return isinstance(payload, dict) and payload.get("kind") == "repro-bench-serve"


@dataclass(frozen=True)
class GateFailure:
    metric: str
    baseline: float
    current: float
    limit: float

    def __str__(self) -> str:
        return (
            f"{self.metric}: {self.current:.3f} vs baseline {self.baseline:.3f} "
            f"(limit {self.limit:.3f})"
        )


def compare_to_baseline(
    current: Mapping[str, Any], baseline: Mapping[str, Any], *, threshold: float = 3.0
) -> list[GateFailure]:
    """Gate *current* against *baseline* on machine-transferable ratios.

    *threshold* is the allowed multiplier on the baseline's normalized
    latency ratios (CI runners are slower and noisier than the machine
    that committed the baseline, but the *ratio* of latency to ideal
    makespan moves far less than either number alone).  Completion is
    gated absolutely: every submitted run must finish.
    """
    failures = []
    if current.get("completed", 0) < current.get("runs", -1):
        failures.append(
            GateFailure(
                metric="completed-runs",
                baseline=float(current.get("runs", 0)),
                current=float(current.get("completed", 0)),
                limit=float(current.get("runs", 0)),
            )
        )
    if current.get("failed", 0) > 0:
        failures.append(
            GateFailure(metric="failed-runs", baseline=0.0, current=current["failed"], limit=0.0)
        )
    for metric in ("p99_over_ideal", "wall_over_ideal"):
        base = baseline.get(metric)
        cur = current.get(metric)
        if base is None or cur is None or math.isnan(base) or math.isnan(cur):
            continue
        limit = base * threshold
        if cur > limit:
            failures.append(GateFailure(metric=metric, baseline=base, current=cur, limit=limit))
    return failures


# -- the load driver ---------------------------------------------------------


async def _drive(
    host: str, port: int, *, clients: int, jobs: list[dict[str, Any]], tenants: int = 8
) -> tuple[list[_RunOutcome], float, int, dict[str, float], float]:
    from repro.serve.client import ServeClient

    job_queue: asyncio.Queue[tuple[int, dict[str, Any]]] = asyncio.Queue()
    for item in enumerate(jobs):
        job_queue.put_nowait(item)
    outcomes: dict[int, _RunOutcome] = {}
    wait_queue: asyncio.Queue[int] = asyncio.Queue()

    async def submitter(worker: int) -> None:
        client = ServeClient(host, port, tenant=f"load-{worker % tenants}")
        while True:
            try:
                index, payload = job_queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            outcome = outcomes[index] = _RunOutcome(submitted_at=time.perf_counter())
            while True:
                reply = await client.submit_raw(payload)
                if reply.status == 429:
                    outcome.retries += 1
                    await asyncio.sleep(min(reply.retry_after or 0.1, 1.0))
                    continue
                break
            if reply.status not in (200, 202):
                outcome.failed = True
                outcome.finished_at = time.perf_counter()
                continue
            accepted = reply.json()
            outcome.run_id = accepted["id"]
            outcome.cached = accepted["cached"]
            if outcome.cached:  # served straight from the shared cache
                outcome.finished_at = time.perf_counter()
            else:
                wait_queue.put_nowait(index)

    run_seconds_total = 0.0

    async def waiter(worker: int) -> None:
        nonlocal run_seconds_total
        client = ServeClient(host, port, tenant=f"load-{worker % tenants}")
        while True:
            try:
                index = wait_queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            outcome = outcomes[index]
            try:
                status = await client.result(outcome.run_id, timeout=600.0)
            except Exception:
                outcome.failed = True
                outcome.finished_at = time.perf_counter()
                continue
            outcome.finished_at = time.perf_counter()
            outcome.failed = status["state"] != "done"
            run_seconds_total += status.get("run_seconds", 0.0)

    peak_depth = 0
    polling = True

    async def depth_poller() -> None:
        nonlocal peak_depth
        client = ServeClient(host, port)
        while polling:
            try:
                stats = (await client.stats())["counters"]
                depth = int(stats["/serve{locality#0/queue}/depth"])
                peak_depth = max(peak_depth, depth)
            except Exception:
                pass
            await asyncio.sleep(0.1)

    started = time.perf_counter()
    poller = asyncio.ensure_future(depth_poller())
    # Submit everything first (the whole run list lands in the server
    # queue), then the same client pool drains the completions.
    await asyncio.gather(*(submitter(i) for i in range(clients)))
    await asyncio.gather(*(waiter(i) for i in range(clients)))
    wall = time.perf_counter() - started
    polling = False
    client = ServeClient(host, port)
    server_stats = (await client.stats())["counters"]
    poller.cancel()
    try:
        await poller
    except asyncio.CancelledError:
        pass
    ordered = [outcomes[i] for i in sorted(outcomes)]
    return ordered, wall, peak_depth, server_stats, run_seconds_total


def run_bench_serve(
    mode: str = "quick",
    *,
    clients: int | None = None,
    runs: int | None = None,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    progress: Any = None,
) -> LoadResult:
    """Spawn a server and push the load through it."""
    from repro.serve.testing import spawn_server

    shape = MODES[mode]
    clients = clients if clients is not None else shape["clients"]
    runs = runs if runs is not None else shape["runs"]
    workers = workers if workers is not None else shape["workers"]
    jobs = build_jobs(runs)
    owned_tmp = tempfile.TemporaryDirectory() if cache_dir is None else None
    cache_root = Path(cache_dir) if cache_dir is not None else Path(owned_tmp.name)
    try:
        if progress:
            progress(f"spawning repro serve ({workers} workers, {runs} runs, {clients} clients)")
        with spawn_server(
            workers=workers,
            max_queue=max(2 * runs, 512),
            cache_dir=cache_root,
            quota_rate=10_000.0,  # the bench measures the queue, not the quota
            quota_burst=10_000.0,
        ) as server:
            outcomes, wall, peak_depth, stats, run_seconds = asyncio.run(
                _drive(server.host, server.port, clients=clients, jobs=jobs)
            )
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()
    return LoadResult(
        mode=mode,
        clients=clients,
        runs=runs,
        workers=workers,
        wall_seconds=wall,
        outcomes=outcomes,
        run_seconds_total=run_seconds,
        peak_queue_depth=peak_depth,
        server_stats=stats,
    )


def render(payload: Mapping[str, Any]) -> str:
    lines = [
        f"bench-serve [{payload['mode']}]: {payload['completed']}/{payload['runs']} runs, "
        f"{payload['clients']} clients, {payload['workers']} workers, "
        f"{payload['wall_seconds']:.2f}s wall",
        f"  latency ms     p50 {payload['latency_ms']['p50']:9.1f}   "
        f"p99 {payload['latency_ms']['p99']:9.1f}   max {payload['latency_ms']['max']:9.1f}",
        f"  cold ms        p50 {payload['cold_latency_ms']['p50']:9.1f}   "
        f"p99 {payload['cold_latency_ms']['p99']:9.1f}",
        f"  cache hits     {payload['cache_hits']} ({payload['cache_hit_rate']:.0%}), "
        f"hit p50 {payload['hit_latency_ms']['p50']:.1f} ms, "
        f"hit throughput {payload['hit_throughput_rps']:.0f} runs/s",
        f"  throughput     {payload['throughput_rps']:.1f} runs/s "
        f"(peak queue depth {payload['peak_queue_depth']}, "
        f"429 retries {payload['retries_429']})",
        f"  gate ratios    p99/ideal {payload['p99_over_ideal']:.3f}, "
        f"wall/ideal {payload['wall_over_ideal']:.3f}",
    ]
    return "\n".join(lines)
