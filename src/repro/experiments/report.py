"""Plain-text rendering of tables and figure series."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.experiments.figures import BandwidthFigure, ExecutionTimeFigure, OverheadFigure
from repro.experiments.tables import Table1Row, Table5Row


def render_table(header: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Simple fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table1(rows: list[Table1Row]) -> str:
    """Table I in the paper's layout."""
    header = ["Benchmark", "Baseline ms", "Baseline tasks", "TAU", "HPCToolkit"]
    body = [
        [
            r.benchmark,
            "Abort" if r.baseline_ms is None else f"{r.baseline_ms:.1f}",
            r.baseline_tasks,
            r.cell(r.tau),
            r.cell(r.hpctoolkit),
        ]
        for r in rows
    ]
    return render_table(header, body)


def render_table5(rows: list[Table5Row]) -> str:
    """Table V in the paper's layout, measured vs paper side by side."""
    header = [
        "Benchmark",
        "Structure",
        "Sync",
        "Duration us",
        "(paper)",
        "Granularity",
        "(paper)",
        "std scaling",
        "(paper)",
        "HPX scaling",
        "(paper)",
    ]
    body = [
        [
            r.benchmark,
            r.structure,
            r.synchronization,
            f"{r.task_duration_us:.2f}",
            f"{r.paper_task_duration_us:.2f}",
            r.granularity,
            r.paper_granularity,
            r.scaling_std,
            r.paper_scaling_std,
            r.scaling_hpx,
            r.paper_scaling_hpx,
        ]
        for r in rows
    ]
    return render_table(header, body)


def render_execution_time_figure(fig: ExecutionTimeFigure) -> str:
    header = ["cores", "HPX ms", "C++11 Standard ms"]
    body = [[cores, hpx, "fail" if std is None else std] for cores, hpx, std in fig.rows()]
    title = f"{fig.figure}: execution time of {fig.benchmark} (HPX vs C++11 Standard)"
    return title + "\n" + render_table(header, body)


def render_overhead_figure(fig: OverheadFigure) -> str:
    header = [
        "cores",
        "exec_time ms",
        "ideal_scaling ms",
        "task_time/core ms",
        "ideal_task_time ms",
        "sched_overhd/core ms",
    ]
    title = f"{fig.figure}: {fig.benchmark} overheads (HPX counters)"
    return title + "\n" + render_table(header, fig.rows())


def render_bandwidth_figure(fig: BandwidthFigure) -> str:
    header = ["cores", "OFFCORE bandwidth GB/s"]
    title = f"{fig.figure}: {fig.benchmark} OFFCORE bandwidth"
    return title + "\n" + render_table(header, fig.rows())
