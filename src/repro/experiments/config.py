"""Experiment configuration: the paper's platform and protocol.

Table III platform (Hermione node): dual-socket Intel Ivy Bridge
E5-2670v2, 10 cores/socket @ 2.5 GHz, 25 MB shared L3 per socket,
62 GiB RAM, hyper-threading disabled.  Threads pinned sockets-first
(``--hpx:bind`` / ``taskset``); launch policy ``async``; 20 samples per
experiment with medians reported.

**Scaled memory budget.**  The paper's failing benchmarks die at
80,000–97,000 live pthreads (~62 GiB of committed thread state).  Our
benchmark inputs are scaled down ~30x (Python cannot simulate 10^7
task events per run), so the committed-memory budget for the
``std::async`` model is scaled by the same factor: ~3,000 live threads.
The *mechanism* — live-thread explosion in recursive/fine-grained
benchmarks under thread-per-task execution — is identical; only the
absolute numbers shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.config import StdParams
from repro.platform.presets import default_platform
from repro.platform.spec import PlatformSpec
from repro.runtime.config import HpxParams
from repro.simcore.machine import MachineSpec

#: Live threads at which the scaled std::async model aborts.
SCALED_THREAD_LIMIT = 3_000

#: Core counts used for the strong-scaling figures (paper: 1..20).
PAPER_CORE_COUNTS = (1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20)

#: A cheaper grid for quick runs/tests.
QUICK_CORE_COUNTS = (1, 2, 4, 8, 10, 16, 20)

#: Samples per experiment (paper: 20; medians reported).
PAPER_SAMPLES = 20
DEFAULT_SAMPLES = 3

#: The software counters of Section V-C.
SOFTWARE_COUNTERS = (
    "/threads{locality#0/total}/time/average",
    "/threads{locality#0/total}/time/average-overhead",
    "/threads{locality#0/total}/time/cumulative",
    "/threads{locality#0/total}/time/cumulative-overhead",
    "/threads{locality#0/total}/count/cumulative",
    "/threads{locality#0/total}/idle-rate",
)

#: The offcore PAPI counters summed for the bandwidth estimate.
PAPI_COUNTERS = (
    "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD",
    "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_CODE_RD",
    "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_RFO",
)

DEFAULT_COUNTERS = SOFTWARE_COUNTERS + PAPI_COUNTERS


def default_machine_spec() -> MachineSpec:
    """The Table III node, in the legacy even-shape spelling."""
    return MachineSpec()


def default_hpx_params() -> HpxParams:
    return HpxParams()


def default_std_params() -> StdParams:
    """Kernel-model parameters with the scaled memory budget."""
    base = StdParams()
    return StdParams(
        ram_budget_bytes=SCALED_THREAD_LIMIT * base.thread_commit_bytes,
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one experiment needs to be reproducible."""

    platform: PlatformSpec = field(default_factory=default_platform)
    hpx: HpxParams = field(default_factory=default_hpx_params)
    std: StdParams = field(default_factory=default_std_params)
    samples: int = DEFAULT_SAMPLES
    core_counts: tuple[int, ...] = QUICK_CORE_COUNTS
    seed: int = 20160523

    def __post_init__(self) -> None:
        # Accept the legacy even-shape spelling transparently.
        if isinstance(self.platform, MachineSpec):
            object.__setattr__(self, "platform", self.platform.to_platform())

    @property
    def machine(self) -> PlatformSpec:
        """Legacy alias for :attr:`platform`."""
        return self.platform
