"""Generators for Table I and Table V."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_strong_scaling
from repro.api import Session
from repro.inncabs.suite import available_benchmarks, get_benchmark
from repro.tools import HPCTOOLKIT, TAU, ToolOutcome, ToolRunResult, run_with_tool
from repro.workloads import WorkloadSpec

_TASK_DURATION = "/threads{locality#0/total}/time/average"


def classify_granularity(task_duration_us: float) -> str:
    """Grain-size class per the paper's Table V bands."""
    if task_duration_us >= 500:
        return "coarse"
    if task_duration_us >= 150:
        return "moderate"
    if task_duration_us >= 10:
        return "fine"
    return "very fine"


@dataclass
class Table1Row:
    """One row of Table I: baseline vs TAU vs HPCToolkit at 20 cores."""

    benchmark: str
    baseline_ms: float | None  # None = baseline itself aborted
    baseline_tasks: int
    tau: ToolRunResult
    hpctoolkit: ToolRunResult

    def cell(self, tool_result: ToolRunResult) -> str:
        if tool_result.outcome is not ToolOutcome.COMPLETED:
            return tool_result.outcome.value
        if self.baseline_ms is None:
            return f"{tool_result.exec_time_ms:.0f}"
        overhead = tool_result.overhead_percent(round(self.baseline_ms * 1e6))
        return f"{tool_result.exec_time_ms:.0f} ({overhead:.0f}%)"


def table1(
    *,
    benchmarks: Sequence[str] | None = None,
    cores: int = 20,
    config: ExperimentConfig | None = None,
) -> list[Table1Row]:
    """Regenerate Table I: external tools on the std::async versions."""
    config = config or ExperimentConfig()
    rows = []
    for name in benchmarks or available_benchmarks():
        base = Session(runtime="std", cores=cores, config=config).run(WorkloadSpec.parse(name))
        rows.append(
            Table1Row(
                benchmark=name,
                baseline_ms=None if base.aborted else base.exec_time_ms,
                baseline_tasks=base.tasks_created,
                tau=run_with_tool(name, TAU, cores=cores, config=config),
                hpctoolkit=run_with_tool(name, HPCTOOLKIT, cores=cores, config=config),
            )
        )
    return rows


@dataclass
class Table5Row:
    """One row of Table V: classification, grain size and scaling."""

    benchmark: str
    structure: str
    synchronization: str
    task_duration_us: float  # measured, 1 core, HPX counter
    granularity: str  # classified from the measurement
    scaling_std: str  # measured "to N" / "fail" / "no scaling"
    scaling_hpx: str
    paper_task_duration_us: float
    paper_granularity: str
    paper_scaling_std: str
    paper_scaling_hpx: str


def table5(
    *,
    benchmarks: Sequence[str] | None = None,
    core_counts: Sequence[int] | None = None,
    samples: int | None = None,
    config: ExperimentConfig | None = None,
    params: Mapping[str, Mapping[str, Any]] | None = None,
    artifact: Any = None,  # CampaignArtifact: read curves instead of running
    jobs: int = 1,
) -> list[Table5Row]:
    """Regenerate Table V.

    Task duration is the ``/threads/time/average`` counter on one core
    (exactly how the paper measured grain size); scaling labels come
    from the strong-scaling medians of both runtimes.  Pass a campaign
    ``artifact`` to read the curves from cached cells, or ``jobs`` to
    fan fresh runs out over a process pool.
    """
    config = config or ExperimentConfig()
    rows = []
    for name in benchmarks or available_benchmarks():
        bench = get_benchmark(name)
        bench_params = (params or {}).get(name)
        if artifact is not None:
            hpx = artifact.curve(name, "hpx")
            std = artifact.curve(name, "std")
        else:
            hpx = run_strong_scaling(
                name,
                "hpx",
                config=config,
                core_counts=core_counts,
                samples=samples,
                params=bench_params,
                jobs=jobs,
            )
            std = run_strong_scaling(
                name,
                "std",
                config=config,
                core_counts=core_counts,
                samples=samples,
                params=bench_params,
                jobs=jobs,
            )
        duration_us = hpx.points[0].counters[_TASK_DURATION] / 1e3
        rows.append(
            Table5Row(
                benchmark=name,
                structure=bench.info.structure,
                synchronization=bench.info.synchronization,
                task_duration_us=duration_us,
                granularity=classify_granularity(duration_us),
                scaling_std=std.scales_to(),
                scaling_hpx=hpx.scales_to(),
                paper_task_duration_us=bench.info.paper_task_duration_us,
                paper_granularity=bench.info.paper_granularity,
                paper_scaling_std=bench.info.paper_scaling_std,
                paper_scaling_hpx=bench.info.paper_scaling_hpx,
            )
        )
    return rows
