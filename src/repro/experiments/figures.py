"""Series generators for every figure of the paper.

- Figures 1-7: execution time vs cores, HPX vs C++11 Standard
  (Alignment, Pyramids, Strassen, Sort, FFT, UTS, Intersim).
- Figures 8-12: overhead decomposition for HPX (execution time, ideal
  scaling, task time per core, ideal task time, scheduling overhead per
  core) for Alignment, Pyramids, Strassen, FFT, UTS.
- Figures 13-14: OFFCORE bandwidth estimate vs cores for Alignment and
  Pyramids — (ALL_DATA_RD + DEMAND_CODE_RD + DEMAND_RFO) x 64 B /
  execution time, exactly the paper's formula.

Each generator returns plain dataclasses of series so callers (benches,
CLI, notebooks) can print or plot without re-running.

Every generator accepts an ``artifact`` (a
:class:`~repro.campaign.artifact.CampaignArtifact`): when given, the
curves are read from the artifact's cached cells instead of re-running
the simulations, so a figure regenerates in milliseconds from a
campaign file.  Without an artifact the curves still flow through the
same campaign engine via :func:`run_strong_scaling` (``jobs`` fans the
matrix out over a process pool).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.experiments.config import PAPI_COUNTERS, ExperimentConfig
from repro.experiments.harness import ScalingCurve, run_strong_scaling
from repro.model.work import CACHE_LINE

if TYPE_CHECKING:
    from repro.campaign.artifact import CampaignArtifact

#: benchmark behind each execution-time figure
EXEC_TIME_FIGURES: dict[str, str] = {
    "fig1": "alignment",
    "fig2": "pyramids",
    "fig3": "strassen",
    "fig4": "sort",
    "fig5": "fft",
    "fig6": "uts",
    "fig7": "intersim",
}

#: benchmark behind each overhead figure
OVERHEAD_FIGURES: dict[str, str] = {
    "fig8": "alignment",
    "fig9": "pyramids",
    "fig10": "strassen",
    "fig11": "fft",
    "fig12": "uts",
}

#: benchmark behind each bandwidth figure
BANDWIDTH_FIGURES: dict[str, str] = {
    "fig13": "alignment",
    "fig14": "pyramids",
}

_CUMULATIVE = "/threads{locality#0/total}/time/cumulative"
_CUMULATIVE_OVERHEAD = "/threads{locality#0/total}/time/cumulative-overhead"


@dataclass
class ExecutionTimeFigure:
    """One of Figures 1-7."""

    figure: str
    benchmark: str
    hpx: ScalingCurve
    std: ScalingCurve

    def rows(self) -> list[tuple[int, float | None, float | None]]:
        """(cores, hpx_ms, std_ms); None marks an aborted run."""
        out = []
        for ph, ps in zip(self.hpx.points, self.std.points):
            assert ph.cores == ps.cores
            out.append(
                (
                    ph.cores,
                    None if ph.aborted else ph.median_exec_ms,
                    None if ps.aborted else ps.median_exec_ms,
                )
            )
        return out


@dataclass
class OverheadFigure:
    """One of Figures 8-12 (HPX only, per the paper)."""

    figure: str
    benchmark: str
    cores: list[int] = field(default_factory=list)
    exec_time_ms: list[float] = field(default_factory=list)
    ideal_scaling_ms: list[float] = field(default_factory=list)
    task_time_per_core_ms: list[float] = field(default_factory=list)
    ideal_task_time_ms: list[float] = field(default_factory=list)
    sched_overhead_per_core_ms: list[float] = field(default_factory=list)

    def rows(self) -> list[tuple[float, ...]]:
        return list(
            zip(
                self.cores,
                self.exec_time_ms,
                self.ideal_scaling_ms,
                self.task_time_per_core_ms,
                self.ideal_task_time_ms,
                self.sched_overhead_per_core_ms,
            )
        )


@dataclass
class BandwidthFigure:
    """One of Figures 13-14."""

    figure: str
    benchmark: str
    cores: list[int] = field(default_factory=list)
    bandwidth_gbs: list[float] = field(default_factory=list)

    def rows(self) -> list[tuple[int, float]]:
        return list(zip(self.cores, self.bandwidth_gbs))


def _curve(
    benchmark: str,
    runtime: str,
    *,
    artifact: "CampaignArtifact | None",
    config: ExperimentConfig | None,
    params: Mapping[str, Any] | None,
    core_counts: Sequence[int] | None,
    samples: int | None,
    jobs: int,
) -> ScalingCurve:
    """One curve, from a campaign artifact or a (campaign-backed) run."""
    if artifact is not None:
        return artifact.curve(benchmark, runtime)
    return run_strong_scaling(
        benchmark,
        runtime,
        config=config,
        params=params,
        core_counts=core_counts,
        samples=samples,
        jobs=jobs,
    )


def execution_time_figure(
    figure: str,
    *,
    config: ExperimentConfig | None = None,
    params: Mapping[str, Any] | None = None,
    core_counts: Sequence[int] | None = None,
    samples: int | None = None,
    artifact: "CampaignArtifact | None" = None,
    jobs: int = 1,
) -> ExecutionTimeFigure:
    """Regenerate one of Figures 1-7."""
    benchmark = _lookup(EXEC_TIME_FIGURES, figure)
    kwargs = dict(
        artifact=artifact,
        config=config,
        params=params,
        core_counts=core_counts,
        samples=samples,
        jobs=jobs,
    )
    hpx = _curve(benchmark, "hpx", **kwargs)
    std = _curve(benchmark, "std", **kwargs)
    return ExecutionTimeFigure(figure=figure, benchmark=benchmark, hpx=hpx, std=std)


def overhead_figure(
    figure: str,
    *,
    config: ExperimentConfig | None = None,
    params: Mapping[str, Any] | None = None,
    core_counts: Sequence[int] | None = None,
    samples: int | None = None,
    artifact: "CampaignArtifact | None" = None,
    jobs: int = 1,
) -> OverheadFigure:
    """Regenerate one of Figures 8-12 from the HPX counters."""
    benchmark = _lookup(OVERHEAD_FIGURES, figure)
    curve = _curve(
        benchmark,
        "hpx",
        artifact=artifact,
        config=config,
        params=params,
        core_counts=core_counts,
        samples=samples,
        jobs=jobs,
    )
    out = OverheadFigure(figure=figure, benchmark=benchmark)
    base = curve.points[0]
    base_exec = base.median_exec_ns
    base_task_time = base.counters[_CUMULATIVE]
    for p in curve.points:
        if p.aborted:
            continue
        out.cores.append(p.cores)
        out.exec_time_ms.append(p.median_exec_ns / 1e6)
        out.ideal_scaling_ms.append(base_exec / p.cores / 1e6)
        out.task_time_per_core_ms.append(p.counters[_CUMULATIVE] / p.cores / 1e6)
        out.ideal_task_time_ms.append(base_task_time / p.cores / 1e6)
        out.sched_overhead_per_core_ms.append(p.counters[_CUMULATIVE_OVERHEAD] / p.cores / 1e6)
    return out


def bandwidth_figure(
    figure: str,
    *,
    config: ExperimentConfig | None = None,
    params: Mapping[str, Any] | None = None,
    core_counts: Sequence[int] | None = None,
    samples: int | None = None,
    artifact: "CampaignArtifact | None" = None,
    jobs: int = 1,
) -> BandwidthFigure:
    """Regenerate Figure 13 or 14: offcore bandwidth vs cores.

    Bandwidth = (sum of the three offcore request counters) x 64-byte
    cache lines / execution time (Section V-C).
    """
    benchmark = _lookup(BANDWIDTH_FIGURES, figure)
    curve = _curve(
        benchmark,
        "hpx",
        artifact=artifact,
        config=config,
        params=params,
        core_counts=core_counts,
        samples=samples,
        jobs=jobs,
    )
    out = BandwidthFigure(figure=figure, benchmark=benchmark)
    for p in curve.points:
        if p.aborted or p.median_exec_ns <= 0:
            continue
        requests = sum(p.counters[name] for name in PAPI_COUNTERS)
        gbs = requests * CACHE_LINE / (p.median_exec_ns / 1e9) / 1e9
        out.cores.append(p.cores)
        out.bandwidth_gbs.append(gbs)
    return out


def _lookup(table: Mapping[str, str], figure: str) -> str:
    try:
        return table[figure.lower()]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure!r}; available: {', '.join(sorted(table))}"
        ) from None
