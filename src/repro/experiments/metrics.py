"""The paper's metrics (Section V-C) as first-class extractors.

Each function maps a :class:`~repro.experiments.runner.RunResult` or a
:class:`~repro.experiments.harness.ScalingPoint` (anything carrying a
telemetry frame or a ``counters`` dict, plus an execution time) to one
number, exactly as the paper defines it:

- **Task Duration** — ``/threads/time/average``;
- **Task Overhead** — ``/threads/time/average-overhead``;
- **Task Time (per core)** — ``/threads/time/cumulative`` ÷ cores;
- **Scheduling Overhead (per core)** —
  ``/threads/time/cumulative-overhead`` ÷ cores;
- **Bandwidth** — offcore requests × 64 B ÷ execution time.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.config import PAPI_COUNTERS
from repro.model.work import CACHE_LINE

TASK_DURATION = "/threads{locality#0/total}/time/average"
TASK_OVERHEAD = "/threads{locality#0/total}/time/average-overhead"
TASK_TIME = "/threads{locality#0/total}/time/cumulative"
SCHED_OVERHEAD = "/threads{locality#0/total}/time/cumulative-overhead"
IDLE_RATE = "/threads{locality#0/total}/idle-rate"


def _counters(run: Any) -> dict[str, float]:
    telemetry = getattr(run, "telemetry", None)
    if telemetry is not None:
        totals = telemetry.totals()
        if totals:
            return totals
    counters = getattr(run, "counters", None)
    if not counters:
        raise ValueError("no counters on this result — run with collect_counters=True")
    return counters


def _exec_time_ns(run: Any) -> float:
    for attr in ("exec_time_ns", "median_exec_ns"):
        value = getattr(run, attr, None)
        if value is not None:
            return float(value)
    raise ValueError("result carries no execution time")


def task_duration_us(run: Any) -> float:
    """Average task grain size in µs (Table V's measurement)."""
    return _counters(run)[TASK_DURATION] / 1e3


def task_overhead_us(run: Any) -> float:
    """Average per-task scheduling cost in µs."""
    return _counters(run)[TASK_OVERHEAD] / 1e3


def task_time_per_core_ms(run: Any, cores: int) -> float:
    """Cumulative task execution time divided by cores, in ms."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return _counters(run)[TASK_TIME] / cores / 1e6


def scheduling_overhead_per_core_ms(run: Any, cores: int) -> float:
    """Cumulative scheduling overhead divided by cores, in ms."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return _counters(run)[SCHED_OVERHEAD] / cores / 1e6


def overhead_fraction(run: Any) -> float:
    """Scheduling overhead as a fraction of task time (Figs 11/12's
    'overheads equivalent to / ~50% of the task time')."""
    counters = _counters(run)
    task_time = counters[TASK_TIME]
    return counters[SCHED_OVERHEAD] / task_time if task_time else 0.0


def idle_fraction(run: Any) -> float:
    """Idle rate as a plain fraction in [0, 1]."""
    return _counters(run)[IDLE_RATE] / 10_000.0


def bandwidth_gbs(run: Any) -> float:
    """The paper's offcore bandwidth estimate in GB/s."""
    counters = _counters(run)
    requests = sum(counters[name] for name in PAPI_COUNTERS)
    seconds = _exec_time_ns(run) / 1e9
    return requests * CACHE_LINE / seconds / 1e9 if seconds else 0.0
