"""Regenerate every table and figure of the paper into text files.

Run:  python -m repro.experiments.generate [outdir] [--samples N] [--jobs N]

Produces one ``<experiment>.txt`` per table/figure under *outdir*
(default ``results/``) plus a combined ``all_results.txt``.  This is
what EXPERIMENTS.md is built from.

All scaling curves come from two campaign runs (one on the figure core
grid, one on the table grid) executed through
:func:`repro.campaign.engine.run_campaign`: ``--jobs N`` fans the
matrix over a process pool and ``--cache-dir`` reuses cells across
invocations, so regenerating after a partial run only executes what is
missing.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.campaign.cache import ResultCache
from repro.campaign.engine import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    BANDWIDTH_FIGURES,
    EXEC_TIME_FIGURES,
    OVERHEAD_FIGURES,
    bandwidth_figure,
    execution_time_figure,
    overhead_figure,
)
from repro.experiments.report import (
    render_bandwidth_figure,
    render_execution_time_figure,
    render_overhead_figure,
    render_table1,
    render_table5,
)
from repro.experiments.tables import table1, table5
from repro.inncabs.suite import available_benchmarks

FIGURE_CORES = (1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
TABLE_CORES = (1, 2, 4, 8, 10, 16, 20)


def generate_all(
    outdir: Path,
    samples: int = 1,
    verbose: bool = True,
    jobs: int = 1,
    cache_dir: Path | str | None = None,
) -> dict[str, str]:
    """Regenerate everything; returns {experiment id: rendered text}."""
    outdir.mkdir(parents=True, exist_ok=True)
    fig_config = ExperimentConfig(samples=samples, core_counts=FIGURE_CORES)
    table_config = ExperimentConfig(samples=samples, core_counts=TABLE_CORES)
    cache = ResultCache(Path(cache_dir)) if cache_dir is not None else None
    results: dict[str, str] = {}

    def note(message: str) -> None:
        if verbose:
            print(f"[{time.strftime('%H:%M:%S')}] {message}", file=sys.stderr)

    def emit(key: str, text: str) -> None:
        results[key] = text
        (outdir / f"{key}.txt").write_text(text + "\n")
        note(f"wrote {key}.txt")

    figure_benchmarks = tuple(sorted(set(EXEC_TIME_FIGURES.values())))
    fig_spec = CampaignSpec.from_config(fig_config, benchmarks=figure_benchmarks)
    note(f"figure campaign: {sum(1 for _ in fig_spec.cells())} cells (jobs={jobs})")
    fig_artifact = run_campaign(fig_spec, jobs=jobs, cache=cache).artifact

    table_spec = CampaignSpec.from_config(table_config, benchmarks=tuple(available_benchmarks()))
    note(f"table campaign: {sum(1 for _ in table_spec.cells())} cells (jobs={jobs})")
    table_artifact = run_campaign(table_spec, jobs=jobs, cache=cache).artifact

    emit("table1", render_table1(table1(cores=20, config=table_config)))
    emit("table5", render_table5(table5(config=table_config, artifact=table_artifact)))
    for fig in sorted(EXEC_TIME_FIGURES):
        emit(fig, render_execution_time_figure(execution_time_figure(fig, artifact=fig_artifact)))
    for fig in sorted(OVERHEAD_FIGURES):
        emit(fig, render_overhead_figure(overhead_figure(fig, artifact=fig_artifact)))
    for fig in sorted(BANDWIDTH_FIGURES):
        emit(fig, render_bandwidth_figure(bandwidth_figure(fig, artifact=fig_artifact)))

    combined = "\n\n".join(f"===== {key} =====\n{text}" for key, text in sorted(results.items()))
    (outdir / "all_results.txt").write_text(combined + "\n")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("outdir", nargs="?", default="results", type=Path)
    parser.add_argument("--samples", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", type=Path, default=None)
    args = parser.parse_args(argv)
    generate_all(args.outdir, samples=args.samples, jobs=args.jobs, cache_dir=args.cache_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
