"""Task context: the API surface a benchmark task body programs against.

This is the reproduction of Table II in the paper — the benchmarks call
``ctx.async_`` / ``ctx.wait`` / ``ctx.new_mutex`` and the *same source*
runs on the HPX-style runtime (``hpx::async``/``hpx::future``/
``hpx::lcos::local::mutex``) and the Standard C++ model (``std::async``/
``std::future``/``std::mutex``): only the executing context differs.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.model.effects import Await, AwaitAll, Compute, Lock, Spawn, Unlock, YieldNow
from repro.model.work import Work

# Shared effects for the common ``ctx.compute(cpu_ns, membytes=...)`` call
# shape (see TaskContext.compute).  Keyed by (cpu_ns, membytes).
_COMPUTE_CACHE: dict[tuple[Work | int, int], Compute] = {}


class TaskContext:
    """Bound to one task at execution time by the owning runtime.

    The effect-constructing methods are pure; only :meth:`new_mutex`
    talks to the runtime directly (mutex creation is instantaneous and
    requires no scheduling decision).
    """

    __slots__ = ("_runtime", "task")

    def __init__(self, runtime: Any, task: Any) -> None:
        self._runtime = runtime
        self.task = task

    # -- identification -------------------------------------------------

    @property
    def runtime_name(self) -> str:
        """``"hpx"`` or ``"std"`` — occasionally useful in examples."""
        return self._runtime.name

    @property
    def num_workers(self) -> int:
        """Number of cores/workers the runtime is executing on."""
        return self._runtime.num_workers

    @property
    def platform(self) -> Any:
        """The executing node's :class:`~repro.platform.spec.PlatformSpec`.

        Lets platform-sensitive workloads (e.g. the FMM mini-app picking
        kernel variants per core type) plan against the simulated
        hardware without reaching into runtime internals.
        """
        return self._runtime.machine.platform

    # -- effect constructors ---------------------------------------------

    def async_(
        self,
        fn: Callable[..., Any],
        *args: Any,
        policy: str = "async",
        stack_bytes: int = 0,
    ) -> Spawn:
        """``hpx::async(f, ...)`` / ``std::async(std::launch::async, f, ...)``."""
        return Spawn(fn=fn, args=args, policy=policy, stack_bytes=stack_bytes)

    def wait(self, future: Any) -> Await:
        """``future.get()`` — suspend until ready, resume with the value."""
        return Await(future=future)

    def wait_all(self, futures: Sequence[Any]) -> AwaitAll:
        """Join a vector of futures (``hpx::when_all(...).get()``)."""
        return AwaitAll(futures=tuple(futures))

    def compute(self, work: Work | int, membytes: int = 0, **kwargs: Any) -> Compute:
        """Consume machine resources.

        Accepts either a pre-built :class:`Work` or a raw ``cpu_ns``
        (plus optional ``membytes`` and further :class:`Work` kwargs).
        """
        if work.__class__ is Work:
            return Compute(work=work)
        if not kwargs:
            # Hot path: benchmarks call ``ctx.compute(cpu_ns, membytes=...)``
            # with a handful of distinct values millions of times.  Work and
            # Compute are immutable, so identical demands share one effect.
            key = (work, membytes)
            cached = _COMPUTE_CACHE.get(key)
            if cached is not None:
                return cached
            effect = Compute(work=Work(cpu_ns=int(work), membytes=membytes))
            if len(_COMPUTE_CACHE) < 1024:
                _COMPUTE_CACHE[key] = effect
            return effect
        if isinstance(work, Work):  # Work subclass: honour it verbatim
            return Compute(work=work)
        return Compute(work=Work(cpu_ns=int(work), membytes=membytes, **kwargs))

    def lock(self, mutex: Any) -> Lock:
        """``mutex.lock()`` — may suspend the task."""
        return Lock(mutex=mutex)

    def unlock(self, mutex: Any) -> Unlock:
        """``mutex.unlock()``."""
        return Unlock(mutex=mutex)

    def yield_now(self) -> YieldNow:
        """``hpx::this_thread::yield()`` / ``std::this_thread::yield()``."""
        return YieldNow()

    # -- direct runtime services ------------------------------------------

    def new_mutex(self) -> Any:
        """Create a mutex understood by the executing runtime."""
        return self._runtime.create_mutex()
