"""Effects yielded by task bodies to their executing runtime.

A task body is a generator.  Each ``yield`` hands one of these effect
objects to the runtime, which performs the operation in simulated time
and resumes the generator with the result (a future handle, an awaited
value, or ``None``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence


class Effect:
    """Base class for all effects (isinstance anchor)."""

    __slots__ = ()


@dataclass(frozen=True)
class Spawn(Effect):
    """Launch ``fn(ctx, *args)`` as a new task; resumes with a future.

    ``policy`` is a launch-policy name: ``"async"``, ``"deferred"``,
    ``"fork"`` or ``"sync"`` (see Table II / Section V-B of the paper).
    """

    fn: Callable[..., Any]
    args: tuple = ()
    policy: str = "async"
    stack_bytes: int = 0


@dataclass(frozen=True)
class Await(Effect):
    """Block until *future* is ready; resumes with its value.

    Equivalent of ``future.get()`` in the benchmarks.
    """

    future: Any


@dataclass(frozen=True)
class AwaitAll(Effect):
    """Block until every future in *futures* is ready; resumes with a
    list of their values (``hpx::when_all`` / joining a vector of
    ``std::future``)."""

    futures: Sequence[Any]


@dataclass(frozen=True)
class Compute(Effect):
    """Consume simulated machine resources described by *work*."""

    work: Any  # repro.model.work.Work


@dataclass(frozen=True)
class Lock(Effect):
    """Acquire *mutex*, suspending if it is held."""

    mutex: Any


@dataclass(frozen=True)
class Unlock(Effect):
    """Release *mutex*, waking one waiter if any."""

    mutex: Any


@dataclass(frozen=True)
class YieldNow(Effect):
    """Cooperatively yield the core (``hpx::this_thread::yield``)."""
