"""Effects yielded by task bodies to their executing runtime.

A task body is a generator.  Each ``yield`` hands one of these effect
objects to the runtime, which performs the operation in simulated time
and resumes the generator with the result (a future handle, an awaited
value, or ``None``).

The effect classes are deliberately plain ``__slots__`` value objects
rather than dataclasses: one is allocated per ``yield`` of every task,
which makes their constructors part of the simulator's hot path.
Treat instances as immutable.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence


class Effect:
    """Base class for all effects (isinstance anchor)."""

    __slots__ = ()


class Spawn(Effect):
    """Launch ``fn(ctx, *args)`` as a new task; resumes with a future.

    ``policy`` is a launch-policy name: ``"async"``, ``"deferred"``,
    ``"fork"`` or ``"sync"`` (see Table II / Section V-B of the paper).
    """

    __slots__ = ("fn", "args", "policy", "stack_bytes")

    def __init__(
        self,
        fn: Callable[..., Any],
        args: tuple[Any, ...] = (),
        policy: str = "async",
        stack_bytes: int = 0,
    ) -> None:
        self.fn = fn
        self.args = args
        self.policy = policy
        self.stack_bytes = stack_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__name__", self.fn)
        return f"Spawn(fn={name}, args={self.args!r}, policy={self.policy!r})"


class Await(Effect):
    """Block until *future* is ready; resumes with its value.

    Equivalent of ``future.get()`` in the benchmarks.
    """

    __slots__ = ("future",)

    def __init__(self, future: Any) -> None:
        self.future = future

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Await(future={self.future!r})"


class AwaitAll(Effect):
    """Block until every future in *futures* is ready; resumes with a
    list of their values (``hpx::when_all`` / joining a vector of
    ``std::future``)."""

    __slots__ = ("futures",)

    def __init__(self, futures: Sequence[Any]) -> None:
        self.futures = futures

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AwaitAll(futures={self.futures!r})"


class Compute(Effect):
    """Consume simulated machine resources described by *work*."""

    __slots__ = ("work",)

    def __init__(self, work: Any) -> None:  # repro.model.work.Work
        self.work = work

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compute(work={self.work!r})"


class Lock(Effect):
    """Acquire *mutex*, suspending if it is held."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: Any) -> None:
        self.mutex = mutex

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Lock(mutex={self.mutex!r})"


class Unlock(Effect):
    """Release *mutex*, waking one waiter if any."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: Any) -> None:
        self.mutex = mutex

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Unlock(mutex={self.mutex!r})"


class YieldNow(Effect):
    """Cooperatively yield the core (``hpx::this_thread::yield``)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "YieldNow()"
