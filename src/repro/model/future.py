"""Future/promise used by both runtimes.

Semantics follow ``std::future`` / ``hpx::future``: single producer,
single fulfilment, value or exception, ready-callbacks for the runtimes
to wake waiters.  The *waiting* mechanics differ per runtime (an HPX
task suspends; a kernel thread blocks) and live in the runtimes — this
class only carries state.
"""

from __future__ import annotations

import enum
from typing import Any, Callable


class FutureState(enum.Enum):
    NOT_READY = "not_ready"
    READY = "ready"
    EXCEPTION = "exception"


class FutureError(RuntimeError):
    """Invalid future usage (double set, get before ready)."""


_NOT_READY = FutureState.NOT_READY  # hot-path alias (one global load)


class ThrowValue:
    """Resume marker: throw the wrapped exception into the waiting
    generator instead of sending a value (``future.get()`` re-raising)."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


def resume_payload(future: "SimFuture") -> Any:
    """What a waiter should be resumed with: the value, or a
    :class:`ThrowValue` carrying the stored exception."""
    exc = future._exception
    if exc is not None:
        return ThrowValue(exc)
    return future.value()


def resume_payload_all(futures: Any) -> Any:
    """Joint resume payload for a list of futures: the list of values,
    or a :class:`ThrowValue` of the first stored exception."""
    for fut in futures:
        exc = fut._exception
        if exc is not None:
            return ThrowValue(exc)
    return [fut.value() for fut in futures]


class SimFuture:
    """Write-once container with ready callbacks."""

    __slots__ = ("state", "_value", "_exception", "_callbacks", "producer_task")

    def __init__(self, producer_task: Any = None) -> None:
        self.state = _NOT_READY
        self._value: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["SimFuture"], None]] = []
        # The task that will produce the value; runtimes use this to run
        # `deferred` tasks inline at first wait.
        self.producer_task = producer_task

    @property
    def is_ready(self) -> bool:
        return self.state is not _NOT_READY

    def set_value(self, value: Any) -> None:
        """Fulfil the future; fires callbacks synchronously, in FIFO order."""
        if self.is_ready:
            raise FutureError("future already satisfied")
        self._value = value
        self.state = FutureState.READY
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        """Fail the future; ``value`` will re-raise *exc* for every waiter."""
        if self.is_ready:
            raise FutureError("future already satisfied")
        self._exception = exc
        self.state = FutureState.EXCEPTION
        self._fire()

    def value(self) -> Any:
        """The stored value (re-raises a stored exception)."""
        if self.state is FutureState.READY:
            return self._value
        if self.state is FutureState.EXCEPTION:
            assert self._exception is not None
            raise self._exception
        raise FutureError("future not ready")

    def exception(self) -> BaseException | None:
        """The stored exception, or None."""
        return self._exception

    def on_ready(self, callback: Callable[["SimFuture"], None]) -> None:
        """Run *callback(self)* when ready (immediately if already ready)."""
        if self.is_ready:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)
