"""The runtime-agnostic programming model.

Benchmark task bodies are generator coroutines that yield *effects*
(spawn, await, compute, lock, unlock, yield) to whatever runtime is
executing them — the HPX-style runtime in :mod:`repro.runtime` or the
``std::async`` kernel-thread model in :mod:`repro.kernel`.  This mirrors
Table II of the paper: the same benchmark source runs on both runtimes,
only the namespace (the executing context) changes.
"""

from repro.model.context import TaskContext
from repro.model.population import CohortPlan, TaskCohort
from repro.model.effects import (
    Await,
    AwaitAll,
    Compute,
    Effect,
    Lock,
    Spawn,
    Unlock,
    YieldNow,
)
from repro.model.work import Work

__all__ = [
    "Await",
    "AwaitAll",
    "CohortPlan",
    "Compute",
    "Effect",
    "Lock",
    "Spawn",
    "TaskCohort",
    "TaskContext",
    "Unlock",
    "Work",
    "YieldNow",
]
