"""Task-population descriptors for mesoscale (cohort) execution.

A :class:`TaskCohort` describes a *homogeneous population* of tasks —
same body, same grain, no data dependence between members — by its
aggregate structure: how many tasks, what each one computes, and the
mean number of scheduler interactions (spawns, awaits) a member
performs.  A :class:`CohortPlan` is an ordered sequence of cohorts that
together stand in for one whole benchmark run.

These are pure descriptions: workloads build them
(:meth:`repro.inncabs.base.Benchmark.cohort_plan`) and the cohort
engine (:mod:`repro.exec.cohort`) consumes them.  The structure rates
are floats so mean-value plans (expected branching processes like UTS)
can describe fractional per-task behaviour; the cohort engine rounds
only at population level, never per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.model.work import Work

__all__ = ["CohortPlan", "TaskCohort"]


@dataclass(frozen=True)
class TaskCohort:
    """One homogeneous task population.

    Parameters
    ----------
    label:
        Human-readable name used in diagnostics (``"fib-internal"``).
    tasks:
        Population size — how many member tasks the cohort stands for.
    work:
        The :class:`~repro.model.work.Work` each member executes
        (pre-locality-scaling; the backend applies its own traffic
        factor through ``population_work``).
    spawns / ready_awaits / blocking_awaits:
        Mean scheduler interactions per member: child tasks spawned,
        awaits satisfied without suspending, and awaits that suspend
        the member until a dependency completes.  Floats so mean-value
        cohorts can carry expectations.
    depth:
        Critical-path length through the cohort in member tasks; the
        cohort cannot finish faster than ``depth`` sequential members
        even on unbounded parallelism.
    live_tasks:
        Modeled peak simultaneously-live population, for backends that
        commit per-task resources (the ``std::async`` model commits a
        thread stack per live task).  ``None`` means the whole
        population is live at once.
    """

    label: str
    tasks: int
    work: Work
    spawns: float = 0.0
    ready_awaits: float = 0.0
    blocking_awaits: float = 0.0
    depth: int = 1
    live_tasks: int | None = None

    def __post_init__(self) -> None:
        if self.tasks < 1:
            raise ValueError(f"cohort {self.label!r}: tasks must be >= 1, got {self.tasks}")
        if self.depth < 1:
            raise ValueError(f"cohort {self.label!r}: depth must be >= 1, got {self.depth}")
        for name in ("spawns", "ready_awaits", "blocking_awaits"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"cohort {self.label!r}: {name} must be >= 0, got {value}")
        if self.live_tasks is not None and self.live_tasks < 1:
            raise ValueError(
                f"cohort {self.label!r}: live_tasks must be >= 1, got {self.live_tasks}"
            )

    @property
    def peak_live(self) -> int:
        """Peak live population for resource-committing backends.

        Defaults to the whole cohort.  May legitimately *exceed*
        ``tasks``: a plan can book the live population of a whole
        phase (e.g. a tree descent's spine plus its frontier) on the
        cohort that drives it.  Lazily-admitting backends apply their
        own, typically much smaller, model instead.
        """
        return self.tasks if self.live_tasks is None else self.live_tasks


@dataclass(frozen=True)
class CohortPlan:
    """An ordered cohort decomposition of one benchmark run.

    Cohorts execute strictly in sequence — plan builders order them so
    population admission mirrors the exact engine (e.g. fib admits its
    internal spine before any leaf runs).  ``result`` is the value the
    run's root future resolves to; ``exact=False`` marks mean-value
    plans whose result is an expectation rather than the exact
    benchmark output (verification is skipped for those).
    """

    workload: str
    cohorts: tuple[TaskCohort, ...]
    result: Any = None
    exact: bool = True
    note: str = ""

    def __post_init__(self) -> None:
        if not self.cohorts:
            raise ValueError(f"cohort plan for {self.workload!r} has no cohorts")

    @property
    def total_tasks(self) -> int:
        return sum(c.tasks for c in self.cohorts)
