"""Parallel experiment campaign engine.

A *campaign* is the paper's full experiment matrix — (benchmark,
runtime, cores, seed) cells — executed as independent simulation runs.
Because every cell is a seeded discrete-event simulation, cells can be
fanned out over a process pool and the results are bit-identical to a
serial replay; that invariant is what makes cached artifacts and the
CI regression gate trustworthy.

One module per concern:

- :mod:`repro.campaign.spec` — the campaign description, cell
  enumeration and stable cache keys;
- :mod:`repro.campaign.cache` — the content-addressed result cache
  (re-running a campaign only executes missing or invalidated cells);
- :mod:`repro.campaign.engine` — serial/process-parallel execution;
- :mod:`repro.campaign.artifact` — the versioned JSON artifact format
  written under ``results/campaigns/``;
- :mod:`repro.campaign.compare` — artifact diffing and the regression
  gate behind ``repro compare``.
"""

from repro.campaign.artifact import ARTIFACT_SCHEMA, CampaignArtifact, CellResult
from repro.campaign.cache import ResultCache
from repro.campaign.compare import (
    CompareReport,
    CompareThresholds,
    PointDelta,
    compare_artifacts,
    render_compare,
)
from repro.campaign.engine import CampaignRun, CampaignStats, run_campaign
from repro.campaign.spec import CACHE_KEY_VERSION, CampaignSpec, Cell, cell_cache_key

__all__ = [
    "ARTIFACT_SCHEMA",
    "CACHE_KEY_VERSION",
    "CampaignArtifact",
    "CampaignRun",
    "CampaignSpec",
    "CampaignStats",
    "Cell",
    "CellResult",
    "CompareReport",
    "CompareThresholds",
    "PointDelta",
    "ResultCache",
    "cell_cache_key",
    "compare_artifacts",
    "render_compare",
    "run_campaign",
]
