"""Content-addressed result cache for campaign cells.

One JSON file per cell under ``<root>/<key[:2]>/<key>.json`` where
*key* is :func:`repro.campaign.spec.cell_cache_key`.  The payload
embeds its own key and schema version, so a corrupt, truncated or
stale entry is detected on load and treated as a miss (the cell is
simply re-executed).  Writes are atomic (unique temp file + fsync +
``os.replace``), which is what makes interrupted campaigns resumable —
every cell that finished before the interrupt is a cache hit on the
next run — and what lets any number of processes share one cache root:
campaign pool workers and ``repro serve`` workers hammering the same
key never expose torn JSON to a reader; the last complete store wins.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Bump when the cached payload layout changes.
#: 2: cell results carry telemetry sample rows instead of a counters dict.
CACHE_PAYLOAD_SCHEMA = 2

DEFAULT_CACHE_DIR = Path("results") / "campaigns" / "cache"


@dataclass
class ResultCache:
    """Filesystem-backed content-addressed store of cell results."""

    root: Path
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = field(default=0)  # corrupt/mismatched entries seen

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @classmethod
    def default(cls) -> "ResultCache":
        """A cache rooted at the conventional ``results/campaigns/cache``."""
        return cls(DEFAULT_CACHE_DIR)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> dict[str, Any] | None:
        """The cached result for *key*, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self.invalid += 1
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_PAYLOAD_SCHEMA
            or payload.get("key") != key
            or not isinstance(payload.get("result"), dict)
        ):
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def store(self, key: str, result: dict[str, Any]) -> None:
        """Atomically persist *result* under *key*."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CACHE_PAYLOAD_SCHEMA, "key": key, "result": result}
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{key[:8]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
                # Flush user- and kernel-side before the rename: readers
                # racing concurrent writers (server workers, campaign
                # processes) must only ever observe a complete payload,
                # even across a crash mid-store.
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
