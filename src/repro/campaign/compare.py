"""Artifact diffing and the regression gate behind ``repro compare``.

Two artifacts are compared point-by-point — one point per (benchmark,
runtime, cores) — on median execution time, counter medians, and abort
status.  A point fails the gate when

- its median execution time grew by more than ``exec_time`` (relative),
- it aborts in the current artifact but not in the baseline,
- it exists in the baseline but not in the current artifact, or
- a counter threshold is configured and any shared counter's median
  moved by more than that fraction in either direction.

``repro compare`` renders the report as a table and exits non-zero when
any point fails — the CI bench-smoke job gates on exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.campaign.artifact import CampaignArtifact
from repro.experiments.harness import ScalingPoint

PointKey = tuple[str, str, int]  # (benchmark, runtime, cores)

# Point statuses; FAIL_STATUSES trip the gate.
OK = "ok"
IMPROVED = "improved"
REGRESSION = "regression"
COUNTER_REGRESSION = "counter-regression"
ABORT_NEW = "abort-new"
ABORT_FIXED = "abort-fixed"
ABORT_BOTH = "abort-both"
MISSING = "missing"
NEW = "new"

FAIL_STATUSES = frozenset({REGRESSION, COUNTER_REGRESSION, ABORT_NEW, MISSING})


@dataclass(frozen=True)
class CompareThresholds:
    """Gate configuration (relative fractions, e.g. ``0.10`` = 10%)."""

    exec_time: float = 0.05
    #: None disables counter gating (counter drift is still reported).
    counters: float | None = None


@dataclass
class PointDelta:
    """Comparison outcome for one (benchmark, runtime, cores) point."""

    benchmark: str
    runtime: str
    cores: int
    status: str
    baseline_ms: float | None = None
    current_ms: float | None = None
    exec_delta: float | None = None  # relative change, + is slower
    worst_counter: str | None = None
    worst_counter_delta: float | None = None

    @property
    def failed(self) -> bool:
        return self.status in FAIL_STATUSES

    @property
    def key(self) -> PointKey:
        return (self.benchmark, self.runtime, self.cores)


@dataclass
class CompareReport:
    """Every point delta plus the gate verdict."""

    thresholds: CompareThresholds
    deltas: list[PointDelta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.failed for d in self.deltas)

    @property
    def failures(self) -> list[PointDelta]:
        return [d for d in self.deltas if d.failed]

    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _index_points(artifact: CampaignArtifact) -> dict[PointKey, ScalingPoint]:
    points: dict[PointKey, ScalingPoint] = {}
    for (benchmark, runtime), curve in artifact.curves().items():
        for p in curve.points:
            points[(benchmark, runtime, p.cores)] = p
    return points


def _worst_counter_delta(base: ScalingPoint, cur: ScalingPoint) -> tuple[str | None, float | None]:
    """Largest relative counter-median move over the shared counters."""
    worst_name, worst = None, None
    for name, base_value in base.counters.items():
        if name not in cur.counters:
            continue
        if base_value == 0:
            delta = 0.0 if cur.counters[name] == 0 else float("inf")
        else:
            delta = (cur.counters[name] - base_value) / abs(base_value)
        if worst is None or abs(delta) > abs(worst):
            worst_name, worst = name, delta
    return worst_name, worst


def compare_points(
    base: ScalingPoint, cur: ScalingPoint, key: PointKey, thresholds: CompareThresholds
) -> PointDelta:
    """Compare one point of the matrix under *thresholds*."""
    benchmark, runtime, cores = key
    delta = PointDelta(benchmark=benchmark, runtime=runtime, cores=cores, status=OK)
    if base.aborted and cur.aborted:
        delta.status = ABORT_BOTH
        return delta
    if cur.aborted:
        delta.status = ABORT_NEW
        delta.baseline_ms = base.median_exec_ms
        return delta
    if base.aborted:
        delta.status = ABORT_FIXED
        delta.current_ms = cur.median_exec_ms
        return delta
    delta.baseline_ms = base.median_exec_ms
    delta.current_ms = cur.median_exec_ms
    if base.median_exec_ns > 0:
        delta.exec_delta = (cur.median_exec_ns - base.median_exec_ns) / base.median_exec_ns
    delta.worst_counter, delta.worst_counter_delta = _worst_counter_delta(base, cur)
    if delta.exec_delta is not None and delta.exec_delta > thresholds.exec_time:
        delta.status = REGRESSION
    elif (
        thresholds.counters is not None
        and delta.worst_counter_delta is not None
        and abs(delta.worst_counter_delta) > thresholds.counters
    ):
        delta.status = COUNTER_REGRESSION
    elif delta.exec_delta is not None and delta.exec_delta < -thresholds.exec_time:
        delta.status = IMPROVED
    return delta


def compare_artifacts(
    baseline: CampaignArtifact,
    current: CampaignArtifact,
    thresholds: CompareThresholds | None = None,
) -> CompareReport:
    """Diff *current* against *baseline* point-by-point."""
    thresholds = thresholds or CompareThresholds()
    base_points = _index_points(baseline)
    cur_points = _index_points(current)
    report = CompareReport(thresholds=thresholds)
    for key in sorted(set(base_points) | set(cur_points)):
        benchmark, runtime, cores = key
        if key not in cur_points:
            base = base_points[key]
            report.deltas.append(
                PointDelta(
                    benchmark=benchmark,
                    runtime=runtime,
                    cores=cores,
                    status=MISSING,
                    baseline_ms=None if base.aborted else base.median_exec_ms,
                )
            )
        elif key not in base_points:
            cur = cur_points[key]
            report.deltas.append(
                PointDelta(
                    benchmark=benchmark,
                    runtime=runtime,
                    cores=cores,
                    status=NEW,
                    current_ms=None if cur.aborted else cur.median_exec_ms,
                )
            )
        else:
            report.deltas.append(compare_points(base_points[key], cur_points[key], key, thresholds))
    return report


def _fmt_ms(value: float | None) -> str:
    return "-" if value is None else f"{value:.3f}"


def _fmt_pct(value: float | None) -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return "+inf"
    return f"{value * 100:+.1f}%"


def render_compare(report: CompareReport, *, only_failures: bool = False) -> str:
    """Plain-text table of a :class:`CompareReport`."""
    rows: Iterable[PointDelta] = report.failures if only_failures else report.deltas
    lines = [
        f"{'benchmark':11s} {'rt':4s} {'cores':>5s} {'base ms':>10s} {'cur ms':>10s} "
        f"{'exec Δ':>8s} {'counter Δ':>10s}  status"
    ]
    for d in rows:
        lines.append(
            f"{d.benchmark:11s} {d.runtime:4s} {d.cores:5d} {_fmt_ms(d.baseline_ms):>10s} "
            f"{_fmt_ms(d.current_ms):>10s} {_fmt_pct(d.exec_delta):>8s} "
            f"{_fmt_pct(d.worst_counter_delta):>10s}  {d.status}"
        )
    failed = report.failures
    verdict = (
        "PASS: no point regressed beyond "
        f"{report.thresholds.exec_time * 100:.0f}% (exec time)"
        if not failed
        else f"FAIL: {len(failed)} point(s) regressed: "
        + ", ".join(f"{d.benchmark}/{d.runtime}@{d.cores} [{d.status}]" for d in failed)
    )
    lines.append(verdict)
    return "\n".join(lines)
