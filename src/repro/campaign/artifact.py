"""Versioned JSON campaign artifacts.

One file per campaign under ``results/campaigns/``:

- ``schema`` / ``code_version`` — format and producer versions;
- ``environment`` — interpreter, platform and simulated-machine
  metadata for provenance;
- ``spec`` — the full :class:`~repro.campaign.spec.CampaignSpec`;
- ``cells`` — every (benchmark, runtime, cores, sample) run with its
  cache key and the per-run :class:`~repro.experiments.runner.RunResult`
  fields; counter readings are stored as the run's full telemetry
  sample stream (``telemetry`` rows, schema 2) rather than a final
  totals dict;
- ``points`` — per (benchmark, runtime, cores) aggregates (medians,
  abort status) — the exact data behind the paper's figures and tables.

Cells are stored in the spec's canonical enumeration order and encoded
with sorted keys, so two campaigns over the same spec are comparable
cell-for-cell regardless of execution order or parallelism.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro._version import __version__
from repro.campaign.spec import CampaignSpec, Cell, canonical_json
from repro.experiments.harness import ScalingCurve, aggregate_point
from repro.experiments.runner import RunResult
from repro.telemetry.frame import TelemetryFrame

#: Artifact format version; bump on breaking layout changes.
#: Schema 2: cells persist the full telemetry sample stream
#: (``telemetry`` rows) instead of the final ``counters`` dict; schema-1
#: files still load (their counter dicts are adapted into one-shot
#: frames).
#: Schema 3: profiled cells persist a ``profile`` summary dict (the
#: :meth:`~repro.profiler.report.RunProfile.to_json_dict` form) and the
#: spec gained its ``profile`` flag; schema-1/2 files still load.
ARTIFACT_SCHEMA = 3

#: RunResult fields persisted per cell (result/query_samples are not
#: serializable and are deliberately dropped).  ``telemetry`` is stored
#: as sample rows; the legacy ``counters`` dict is derived from it on
#: load.
RESULT_FIELDS = (
    "mode",
    "aborted",
    "abort_reason",
    "exec_time_ns",
    "verified",
    "telemetry",
    "tasks_executed",
    "tasks_created",
    "peak_live_tasks",
    "offcore_bytes",
    "engine_events",
    "profile",
)


def run_result_to_dict(result: RunResult) -> dict[str, Any]:
    """The persisted subset of a :class:`RunResult`."""
    data: dict[str, Any] = {}
    for name in RESULT_FIELDS:
        if name == "telemetry":
            frame = result.telemetry
            if frame is None and result.counters:
                frame = TelemetryFrame.from_counters(
                    result.counters, timestamp_ns=result.exec_time_ns
                )
            data["telemetry"] = frame.to_rows() if frame is not None else []
        elif name == "profile":
            # A live RunProfile serializes to its summary dict; a cell
            # restored from an artifact already carries the dict form.
            profile = result.profile
            if profile is not None and hasattr(profile, "to_json_dict"):
                profile = profile.to_json_dict()
            data["profile"] = profile
        else:
            data[name] = getattr(result, name)
    return data


def run_result_from_dict(cell: Cell, data: Mapping[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from its persisted form.

    Accepts both layouts: schema-2 dicts carry ``telemetry`` sample
    rows; legacy schema-1 dicts carry only the final ``counters`` dict,
    which is adapted into a one-shot frame.
    """
    # ``mode`` arrived with the execution-mode architecture; artifacts
    # written before it default to the only mode that existed.
    fields = {name: data[name] for name in RESULT_FIELDS if name != "telemetry" and name in data}
    if "telemetry" in data:
        frame = TelemetryFrame.from_rows(data["telemetry"])
    else:  # legacy schema-1 cell
        frame = TelemetryFrame.from_counters(
            dict(data["counters"]), timestamp_ns=int(data.get("exec_time_ns", 0))
        )
    fields["telemetry"] = frame if len(frame) else None
    fields["counters"] = frame.totals()
    return RunResult(benchmark=cell.benchmark, runtime=cell.runtime, cores=cell.cores, **fields)


@dataclass(frozen=True)
class CellResult:
    """One executed (or cache-restored) cell."""

    cell: Cell
    key: str  # content-addressed cache key
    result: dict[str, Any]  # persisted RunResult fields

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.cell.benchmark,
            "runtime": self.cell.runtime,
            "cores": self.cell.cores,
            "sample": self.cell.sample,
            "seed": self.cell.seed,
            "key": self.key,
            "result": dict(self.result),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "CellResult":
        cell = Cell(
            benchmark=data["benchmark"],
            runtime=data["runtime"],
            cores=data["cores"],
            sample=data["sample"],
            seed=data["seed"],
        )
        return cls(cell=cell, key=data["key"], result=dict(data["result"]))

    def run_result(self) -> RunResult:
        return run_result_from_dict(self.cell, self.result)


def collect_environment(spec: CampaignSpec) -> dict[str, Any]:
    """Provenance metadata recorded in the artifact."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine_spec": spec.platform.name,
    }


@dataclass
class CampaignArtifact:
    """In-memory form of one campaign artifact file."""

    spec: CampaignSpec
    cells: list[CellResult]
    code_version: str = __version__
    created_unix: int = 0
    environment: dict[str, Any] = field(default_factory=dict)
    _points: dict[tuple[str, str], ScalingCurve] | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def build(cls, spec: CampaignSpec, cells: list[CellResult]) -> "CampaignArtifact":
        """Assemble an artifact from freshly-executed cells."""
        return cls(
            spec=spec,
            cells=cells,
            created_unix=int(time.time()),
            environment=collect_environment(spec),
        )

    # -- aggregation ---------------------------------------------------

    def curves(self) -> dict[tuple[str, str], ScalingCurve]:
        """All (benchmark, runtime) scaling curves, aggregated once."""
        if self._points is None:
            grouped: dict[tuple[str, str, int], list[CellResult]] = {}
            for cr in self.cells:
                grouped.setdefault(
                    (cr.cell.benchmark, cr.cell.runtime, cr.cell.cores), []
                ).append(cr)
            curves: dict[tuple[str, str], ScalingCurve] = {}
            for (benchmark, runtime, cores), members in grouped.items():
                members.sort(key=lambda cr: cr.cell.sample)
                point = aggregate_point(cores, [cr.run_result() for cr in members])
                curve = curves.setdefault(
                    (benchmark, runtime),
                    ScalingCurve(benchmark=benchmark, runtime=runtime, points=[]),
                )
                curve.points.append(point)
            for curve in curves.values():
                curve.points.sort(key=lambda p: p.cores)
            self._points = curves
        return self._points

    def curve(self, benchmark: str, runtime: str) -> ScalingCurve:
        """The scaling curve for one benchmark/runtime pair."""
        try:
            return self.curves()[(benchmark, runtime)]
        except KeyError:
            have = ", ".join(sorted(f"{b}/{r}" for b, r in self.curves()))
            raise KeyError(
                f"artifact has no cells for {benchmark}/{runtime}; contains: {have}"
            ) from None

    def points_json(self) -> list[dict[str, Any]]:
        """Per-point aggregates in a stable order (artifact ``points``)."""
        rows = []
        for (benchmark, runtime), curve in sorted(self.curves().items()):
            for p in curve.points:
                rows.append(
                    {
                        "benchmark": benchmark,
                        "runtime": runtime,
                        "cores": p.cores,
                        "aborted": p.aborted,
                        "median_exec_ns": p.median_exec_ns,
                        "exec_samples": list(p.exec_samples),
                        "counters": dict(p.counters),
                        "tasks_executed": p.tasks_executed,
                        "peak_live_tasks": p.peak_live_tasks,
                        "offcore_bytes": p.offcore_bytes,
                    }
                )
        return rows

    # -- (de)serialization ---------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": ARTIFACT_SCHEMA,
            "kind": "repro-campaign",
            "code_version": self.code_version,
            "created_unix": self.created_unix,
            "environment": dict(self.environment),
            "spec": self.spec.to_json_dict(),
            "cells": [cr.to_json_dict() for cr in self.cells],
            "points": self.points_json(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=1)

    def cells_json(self) -> str:
        """Canonical encoding of the cells alone (determinism checks)."""
        return canonical_json([cr.to_json_dict() for cr in self.cells])

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "CampaignArtifact":
        if data.get("kind") != "repro-campaign":
            raise ValueError("not a campaign artifact (missing kind=repro-campaign)")
        schema = data.get("schema")
        if schema not in (1, 2, ARTIFACT_SCHEMA):
            raise ValueError(
                f"unsupported artifact schema {schema!r}; this build reads 1..{ARTIFACT_SCHEMA}"
            )
        return cls(
            spec=CampaignSpec.from_json_dict(data["spec"]),
            cells=[CellResult.from_json_dict(c) for c in data["cells"]],
            code_version=data["code_version"],
            created_unix=data["created_unix"],
            environment=dict(data["environment"]),
        )

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Path | str) -> "CampaignArtifact":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json_dict(json.load(handle))
