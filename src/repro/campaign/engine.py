"""Serial and process-parallel campaign execution.

Every cell is an independent seeded discrete-event simulation, so the
matrix fans out over a :class:`concurrent.futures.ProcessPoolExecutor`
with no shared state and ``--jobs N`` is bit-identical to a serial
replay (cells are reassembled in canonical spec order, never in
completion order).  Finished cells are written to the result cache as
they complete, from the parent process, so an interrupted campaign
resumes where it stopped: the next run only executes the missing
cells.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.campaign.artifact import CampaignArtifact, CellResult, run_result_to_dict
from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec, Cell, cell_cache_key

#: Called after each cell resolves: (cell, result_dict, from_cache).
ProgressFn = Callable[[Cell, dict[str, Any], bool], None]


@dataclass
class CampaignStats:
    """How a campaign run was satisfied."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    aborted: int = 0  # cells whose run aborted (e.g. std thread-budget death)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


@dataclass
class CampaignRun:
    """Artifact plus execution statistics for one engine invocation."""

    artifact: CampaignArtifact
    stats: CampaignStats = field(default_factory=CampaignStats)


def execute_cell(spec: CampaignSpec, cell: Cell) -> dict[str, Any]:
    """Run one cell to completion; the process-pool worker entry point."""
    from repro.api import Session
    from repro.workloads import WorkloadSpec

    session = Session(runtime=cell.runtime, cores=cell.cores, config=spec.experiment_config(cell))
    result = session.run(
        WorkloadSpec.parse(cell.benchmark),
        params=spec.cell_params(cell),
        counters=spec.counter_specs,
        collect_counters=spec.collect_counters,
        profile=spec.profile or None,
    )
    return run_result_to_dict(result)


def run_campaign(
    spec: CampaignSpec,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: ProgressFn | None = None,
) -> CampaignRun:
    """Execute *spec*, reusing cached cells; returns artifact + stats.

    ``jobs=1`` runs serially in-process; ``jobs>1`` fans pending cells
    out over a process pool.  Either way the artifact is identical.
    """
    cells = list(spec.cells())
    keys = {cell: cell_cache_key(spec, cell) for cell in cells}
    stats = CampaignStats(total=len(cells))
    results: dict[Cell, dict[str, Any]] = {}

    pending: list[Cell] = []
    for cell in cells:
        cached = cache.load(keys[cell]) if cache is not None else None
        if cached is not None:
            results[cell] = cached
            stats.cache_hits += 1
            if progress is not None:
                progress(cell, cached, True)
        else:
            pending.append(cell)

    def finish(cell: Cell, result: dict[str, Any]) -> None:
        results[cell] = result
        stats.executed += 1
        if cache is not None:
            cache.store(keys[cell], result)
        if progress is not None:
            progress(cell, result, False)

    if pending and jobs > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(execute_cell, spec, cell): cell for cell in pending}
            remaining = set(futures)
            # Drain as results complete so the cache reflects progress
            # even if a later cell raises or the run is interrupted.
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    finish(futures[future], future.result())
    else:
        for cell in pending:
            finish(cell, execute_cell(spec, cell))

    ordered = [CellResult(cell=cell, key=keys[cell], result=results[cell]) for cell in cells]
    stats.aborted = sum(1 for cr in ordered if cr.result["aborted"])
    return CampaignRun(artifact=CampaignArtifact.build(spec, ordered), stats=stats)
