"""Campaign description, cell enumeration, and stable cache keys.

A :class:`CampaignSpec` is the declarative form of the paper's
experiment matrix: which benchmarks, which runtimes, which core counts,
how many samples, and every parameter that influences a run (machine
model, runtime cost models, benchmark inputs, root seed).  The spec is
the single source of truth from which

- the engine enumerates :class:`Cell`\\ s (one simulation run each),
- the cache derives a content-addressed key per cell, and
- the artifact records how its data was produced.

Cache keys are a SHA-256 over a canonical JSON encoding of everything
that determines a cell's result — including the package version, so a
code release invalidates cached results — and deliberately exclude
matrix shape (which benchmarks/core counts ran alongside), so growing
a campaign reuses every cell already computed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro._version import __version__
from repro.experiments.config import DEFAULT_SAMPLES, QUICK_CORE_COUNTS, ExperimentConfig
from repro.kernel.config import StdParams
from repro.platform.presets import default_platform
from repro.platform.spec import PlatformSpec
from repro.runtime.config import HpxParams
from repro.simcore.machine import MachineSpec

#: Bump to invalidate every cached cell (cache layout / semantics change).
#: v4: payloads carry telemetry sample rows; platform specs grew
#: ``counter_query_cost_ns``.
#: v5: cells name workloads (``WorkloadSpec`` canonical strings) — the
#: key hashes the parsed workload name with its parameters folded into
#: ``params``, so every spelling of one workload shares one entry.
#: v6: the key folds in the counter-provider identity (built-ins,
#: workload-attached providers, installed entry points) — a new plugin
#: or workload provider can change which counters a run collects, so
#: it must invalidate the cell.
#: v7: the execution-mode architecture landed (``mode`` is a workload
#: param reaching the key through ``cell_params``); results also
#: persist the mode per cell, so pre-mode payloads must not satisfy
#: post-mode lookups.
#: v8: the causal profiler landed — ``builtin.profiler`` joined the
#: provider chain (changing ``provider_identity``) and cells may run
#: profiled (``CampaignSpec.profile`` reaches the key), whose per-event
#: instrumentation charge perturbs every result.
CACHE_KEY_VERSION = 8

RUNTIMES = ("hpx", "std")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding used for hashing and artifacts."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of *obj*."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


@dataclass(frozen=True)
class Cell:
    """One cell of the matrix: a single simulation run.

    ``benchmark`` is the canonical :class:`~repro.workloads.WorkloadSpec`
    spelling — a bare name for parameterless entries (``"fib"``), or
    ``"taskbench:shape=fft,width=8"`` when the matrix runs several
    variants of one workload side by side.
    """

    benchmark: str
    runtime: str  # "hpx" | "std"
    cores: int
    sample: int  # sample index within the point
    seed: int  # fully-resolved root seed for this run

    def label(self) -> str:
        return f"{self.benchmark}/{self.runtime} cores={self.cores} sample={self.sample}"


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a campaign needs to be reproducible."""

    benchmarks: tuple[str, ...]
    runtimes: tuple[str, ...] = RUNTIMES
    core_counts: tuple[int, ...] = QUICK_CORE_COUNTS
    samples: int = DEFAULT_SAMPLES
    seed: int = 20160523
    preset: str = "default"
    #: Extra benchmark parameters overlaid on the preset, for every benchmark.
    params: Mapping[str, Any] = field(default_factory=dict)
    platform: PlatformSpec = field(default_factory=default_platform)
    hpx: HpxParams = field(default_factory=HpxParams)
    std: StdParams | None = None  # None: the scaled-budget default
    collect_counters: bool = True
    counter_specs: tuple[str, ...] | None = None  # None: the paper's set
    #: Attach the causal profiler to every cell; the run results then
    #: carry a profile summary (critical path, work/span, parallelism).
    #: Profiling charges per-event instrumentation, so profiled cells
    #: cache separately from unprofiled ones.
    profile: bool = False

    def __post_init__(self) -> None:
        from repro.workloads import WorkloadSpec

        # Normalize every entry to the canonical WorkloadSpec spelling
        # (validating the name and parameter keys up front), so cells,
        # artifacts and cache keys never see spelling variants.
        normalized = []
        for entry in self.benchmarks:
            workload = entry if isinstance(entry, WorkloadSpec) else WorkloadSpec.parse(entry)
            workload.validate()
            normalized.append(workload.canonical())
        object.__setattr__(self, "benchmarks", tuple(normalized))
        if isinstance(self.platform, MachineSpec):
            object.__setattr__(self, "platform", self.platform.to_platform())
        if self.std is None:
            from repro.experiments.config import default_std_params

            object.__setattr__(self, "std", default_std_params())
        for runtime in self.runtimes:
            if runtime not in RUNTIMES:
                raise ValueError(f"unknown runtime {runtime!r}; expected one of {RUNTIMES}")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")

    @property
    def machine(self) -> PlatformSpec:
        """Legacy alias for :attr:`platform`."""
        return self.platform

    @classmethod
    def from_config(
        cls,
        config: ExperimentConfig,
        *,
        benchmarks: Sequence[str],
        runtimes: Sequence[str] = RUNTIMES,
        core_counts: Sequence[int] | None = None,
        samples: int | None = None,
        params: Mapping[str, Any] | None = None,
        preset: str = "default",
        collect_counters: bool = True,
        counter_specs: Sequence[str] | None = None,
    ) -> "CampaignSpec":
        """Build a spec from an :class:`ExperimentConfig` (the harness path)."""
        return cls(
            benchmarks=tuple(benchmarks),
            runtimes=tuple(runtimes),
            core_counts=tuple(core_counts if core_counts is not None else config.core_counts),
            samples=samples if samples is not None else config.samples,
            seed=config.seed,
            preset=preset,
            params=dict(params or {}),
            platform=config.platform,
            hpx=config.hpx,
            std=config.std,
            collect_counters=collect_counters,
            counter_specs=tuple(counter_specs) if counter_specs is not None else None,
        )

    def experiment_config(self, cell: Cell) -> ExperimentConfig:
        """The single-run :class:`ExperimentConfig` behind *cell*."""
        assert self.std is not None
        return ExperimentConfig(
            platform=self.platform,
            hpx=self.hpx,
            std=self.std,
            samples=1,
            core_counts=(cell.cores,),
            seed=cell.seed,
        )

    def cells(self) -> Iterator[Cell]:
        """Enumerate the matrix in canonical (deterministic) order.

        Seeds vary per sample exactly as the serial harness always did
        (``seed + sample``), so campaign results are bit-compatible
        with historical serial runs.
        """
        for benchmark in self.benchmarks:
            for runtime in self.runtimes:
                for cores in self.core_counts:
                    for sample in range(self.samples):
                        yield Cell(
                            benchmark=benchmark,
                            runtime=runtime,
                            cores=cores,
                            sample=sample,
                            seed=self.seed + sample,
                        )

    def cell_params(self, cell: Cell) -> dict[str, Any]:
        """Fully-resolved workload parameters for *cell*.

        Overlay order: preset < campaign-wide ``params`` < the cell's
        own embedded workload parameters (most specific wins — two
        variants of one workload in a matrix keep what distinguishes
        them) < the cell seed.
        """
        from repro.workloads import WorkloadSpec, workload_preset_params

        workload = WorkloadSpec.parse(cell.benchmark)
        params = workload_preset_params(workload.name, self.preset)
        params.update(self.params)
        params.update(workload.params)
        params["seed"] = cell.seed
        return params

    def to_json_dict(self) -> dict[str, Any]:
        assert self.std is not None
        return {
            "benchmarks": list(self.benchmarks),
            "runtimes": list(self.runtimes),
            "core_counts": list(self.core_counts),
            "samples": self.samples,
            "seed": self.seed,
            "preset": self.preset,
            "params": dict(self.params),
            "platform": self.platform.to_json_dict(),
            "hpx": asdict(self.hpx),
            "std": asdict(self.std),
            "collect_counters": self.collect_counters,
            "counter_specs": list(self.counter_specs) if self.counter_specs else None,
            "profile": self.profile,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if "platform" in data:
            platform = PlatformSpec.from_json_dict(data["platform"])
        else:  # pre-platform artifacts carry a flat MachineSpec dict
            platform = MachineSpec(**data["machine"]).to_platform()
        return cls(
            benchmarks=tuple(data["benchmarks"]),
            runtimes=tuple(data["runtimes"]),
            core_counts=tuple(data["core_counts"]),
            samples=data["samples"],
            seed=data["seed"],
            preset=data["preset"],
            params=dict(data["params"]),
            platform=platform,
            hpx=HpxParams(**data["hpx"]),
            std=StdParams(**data["std"]),
            collect_counters=data["collect_counters"],
            counter_specs=(
                tuple(data["counter_specs"]) if data["counter_specs"] is not None else None
            ),
            # Pre-profiler artifacts (schema <= 2) know nothing of it.
            profile=data.get("profile", False),
        )

    def spec_id(self) -> str:
        """Short stable identifier for the whole campaign (file naming)."""
        return stable_hash({"version": __version__, "spec": self.to_json_dict()})[:12]


def cell_cache_key(spec: CampaignSpec, cell: Cell) -> str:
    """Content-addressed cache key for one cell.

    Includes every input that determines the cell's result: the
    resolved benchmark parameters, the full platform spec (two cells
    differing only in platform hash differently), the cost model of
    the *cell's own* runtime (an ``hpx`` cell is not invalidated by a
    ``std::async`` recalibration and vice versa), the counter
    configuration (counters instrument both runtimes), the counter
    *provider* identity (built-ins, the workload's own providers, and
    installed entry-point plugins — what is available to collect), the
    package version, and :data:`CACHE_KEY_VERSION`.

    The payload's ``benchmark`` is the parsed workload *name* alone —
    parameters embedded in the cell's canonical spelling are already
    folded into ``params`` by :meth:`CampaignSpec.cell_params` — so
    ``taskbench:shape=fft`` in a campaign matrix and ``{"benchmark":
    "taskbench", "params": {"shape": "fft"}}`` over the serve API hash
    to the same entry.
    """
    from repro.counters.providers import provider_identity
    from repro.workloads import WorkloadSpec

    assert spec.std is not None
    workload_name = WorkloadSpec.parse(cell.benchmark).name
    payload: dict[str, Any] = {
        "cache_key_version": CACHE_KEY_VERSION,
        "code_version": __version__,
        "benchmark": workload_name,
        "runtime": cell.runtime,
        "cores": cell.cores,
        "seed": cell.seed,
        "params": spec.cell_params(cell),
        "platform": spec.platform.to_json_dict(),
        "collect_counters": spec.collect_counters,
        "counter_specs": list(spec.counter_specs) if spec.counter_specs else None,
        "counter_providers": list(provider_identity(workload=workload_name)),
        "profile": spec.profile,
    }
    if cell.runtime == "hpx":
        payload["hpx"] = asdict(spec.hpx)
    else:
        payload["std"] = asdict(spec.std)
    return stable_hash(payload)
