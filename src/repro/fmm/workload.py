"""The FMM-like benchmark and its application counter provider.

Models one time step of a fast multipole method solver: a multipole
(M2L) sweep over the subgrids followed by the particle-particle (P2P)
near-field phase.  The P2P kernel exists in three implementation
variants — ``vectorized``, ``scalar`` and ``legacy`` — and the app
selects a variant **per core type**: core types are ranked by clock
frequency and the fastest type gets the vectorized kernel, the next
the scalar one, anything slower the legacy fallback.  On the
asymmetric ``hybrid-4p8e`` preset this splits the subgrid population
between two kernels, and the per-variant counters
``/fmm{locality#0/total}/p2p-subgrids@<variant>`` expose the split
through the standard counter grammar.

Counter registration goes exclusively through the public provider API:
:class:`repro.counters.AppCounterSet` declared here *is* the
``CounterProvider`` carried by the workload's registry entry.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

# Public API only — the import-boundary test enforces that this package
# never reaches into repro.counters submodules.
from repro.counters import AppCounter, AppCounterSet
from repro.inncabs.base import Benchmark, BenchmarkInfo

__all__ = [
    "FMM_COUNTER_PROVIDER",
    "FMM_PRESETS",
    "FmmBenchmark",
    "VARIANTS",
    "variant_for_core",
]

#: Kernel variants, fastest-core-type first.
VARIANTS = ("vectorized", "scalar", "legacy")

#: Relative cost of one P2P subgrid under each variant (the vectorized
#: kernel is the tuned one; the legacy fallback is the slow reference).
_VARIANT_COST = {"vectorized": 1.0, "scalar": 2.25, "legacy": 3.75}

#: The app's counter set — also the workload's CounterProvider.
FMM_COUNTER_PROVIDER = AppCounterSet("fmm", provider="fmm")

_P2P_LAUNCHED: dict[str, AppCounter] = {
    variant: FMM_COUNTER_PROVIDER.counter(
        "p2p-subgrids",
        parameters=variant,
        help_text=f"P2P subgrids executed by the {variant} kernel variant",
        unit="subgrids",
    )
    for variant in VARIANTS
}

_MULTIPOLE_EVALS = FMM_COUNTER_PROVIDER.counter(
    "multipole-evals",
    help_text="Multipole (M2L) expansions evaluated",
    unit="evals",
)


def variant_for_core(platform: Any, core: int) -> str:
    """Kernel variant an FMM build selects for *core* on *platform*.

    Core types are ranked by socket clock frequency (fastest first);
    rank 0 runs the vectorized kernel, rank 1 the scalar one, anything
    further down the legacy fallback.  Homogeneous platforms therefore
    run vectorized everywhere.
    """
    freqs = sorted({socket.freq_ghz for socket in platform.sockets}, reverse=True)
    rank = freqs.index(platform.sockets[platform.socket_of(core)].freq_ghz)
    return VARIANTS[min(rank, len(VARIANTS) - 1)]


def _jitter(seed: int, index: int) -> float:
    """Deterministic per-subgrid cost jitter in [0.875, 1.125)."""
    state = (seed * 6364136223846793005 + index * 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
    return 0.875 + (state >> 40) / (1 << 24) * 0.25


def _multipole_batch(ctx: Any, count: int, m2l_ns: int) -> Iterator[Any]:
    """Evaluate *count* multipole expansions (the far-field sweep)."""
    for _ in range(count):
        _MULTIPOLE_EVALS.increment()
        yield ctx.compute(m2l_ns, membytes=4096)
    return count


def _p2p_batch(
    ctx: Any, variant: str, subgrids: list[int], neighbors: int, p2p_ns: int, seed: int
) -> Iterator[Any]:
    """Run the near-field kernel over one batch of subgrids.

    The batch is bound to one kernel *variant* (chosen from the core
    type the batch was planned for); each subgrid costs the variant's
    relative factor times the base grain, and contributes ``neighbors``
    particle-particle interactions to the returned total.
    """
    cost = _VARIANT_COST[variant]
    interactions = 0
    for index in subgrids:
        _P2P_LAUNCHED[variant].increment()
        grain = int(p2p_ns * cost * _jitter(seed, index))
        yield ctx.compute(grain, membytes=2048)
        interactions += neighbors
    return interactions


def _fmm_root(
    ctx: Any, subgrids: int, neighbors: int, p2p_ns: int, m2l_ns: int, seed: int
) -> Iterator[Any]:
    """One FMM time step: multipole sweep, then the P2P near field.

    Work is planned per worker; batch *k* is bound to core ``k`` of the
    executing platform (workers occupy the leading cores), so the
    kernel variant split across core types is deterministic regardless
    of work stealing.
    """
    platform = ctx.platform
    batches = max(1, min(ctx.num_workers, subgrids))

    futures = []
    for k in range(batches):
        share = len(range(k, subgrids, batches))
        fut = yield ctx.async_(_multipole_batch, share, m2l_ns)
        futures.append(fut)
    evals = yield ctx.wait_all(futures)

    futures = []
    for k in range(batches):
        variant = variant_for_core(platform, k % platform.total_cores)
        batch = list(range(k, subgrids, batches))
        fut = yield ctx.async_(_p2p_batch, variant, batch, neighbors, p2p_ns, seed)
        futures.append(fut)
    interactions = yield ctx.wait_all(futures)

    return {"multipole_evals": sum(evals), "p2p_interactions": sum(interactions)}


#: Preset parameter overrides (``default`` is implicit and empty).
FMM_PRESETS: Mapping[str, Mapping[str, Any]] = {
    "small": {"subgrids": 16},
    "large": {"subgrids": 192},
}


class FmmBenchmark(Benchmark):
    """The FMM mini-app as a registry workload."""

    info = BenchmarkInfo(
        name="fmm",
        structure="loop-like",
        synchronization="none",
        paper_task_duration_us=4.0,
        paper_granularity="moderate",
        paper_scaling_std="n/a (mini-app)",
        paper_scaling_hpx="n/a (mini-app)",
        description="FMM-like multipole + P2P step; per-core-type kernel variants "
        "counted via application counters",
    )

    default_params: Mapping[str, Any] = {
        "subgrids": 48,
        "neighbors": 26,
        "p2p_ns": 4000,
        "m2l_ns": 2500,
    }

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        """Entry point: ``_fmm_root(ctx, subgrids, neighbors, ...)``."""
        return _fmm_root, (
            int(params["subgrids"]),
            int(params["neighbors"]),
            int(params["p2p_ns"]),
            int(params["m2l_ns"]),
            int(params["seed"]),
        )

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        """Every subgrid was expanded once and interacted with every neighbor."""
        expected = {
            "multipole_evals": int(params["subgrids"]),
            "p2p_interactions": int(params["subgrids"]) * int(params["neighbors"]),
        }
        return result == expected
