"""The FMM mini-app: user-defined application counters, proven end to end.

A fast-multipole-method-like workload with multiple P2P kernel
implementation variants (vectorized / scalar / legacy) chosen **per
core type** from the simulated node's
:class:`~repro.platform.spec.PlatformSpec` — on the asymmetric
``hybrid-4p8e`` preset the P-cores run the vectorized kernel and the
E-cores the scalar one, so the per-variant
``/fmm{locality#0/total}/p2p-subgrids@<variant>`` counters read
differently for the two core types (the Octo-Tiger pattern of
registering per-kernel-variant counters into the runtime's counter
framework).

This package registers its counters exclusively through the *public*
provider API (``repro.counters``'s :class:`AppCounterSet`); an
import-boundary test enforces that no ``repro.counters`` internals are
reached.
"""

from repro.fmm.workload import (
    FMM_COUNTER_PROVIDER,
    FMM_PRESETS,
    VARIANTS,
    FmmBenchmark,
    variant_for_core,
)

__all__ = [
    "FMM_COUNTER_PROVIDER",
    "FMM_PRESETS",
    "FmmBenchmark",
    "VARIANTS",
    "variant_for_core",
]
