"""Shared execution layer: one effect interpreter, many scheduler backends.

Both task runtimes (:mod:`repro.runtime` — the HPX-style thread manager,
:mod:`repro.kernel` — the ``std::async`` thread-per-task model) execute
the same benchmark bodies: generator coroutines yielding
:mod:`repro.model.effects` values.  This package holds everything that
is runtime-independent about executing them:

- :mod:`repro.exec.interp` — the single effect-interpretation loop
  (coroutine resume, ``SimFuture`` payload/exception propagation, task
  completion), dispatching each yielded effect to the backend;
- :mod:`repro.exec.backend` — the :class:`SchedulerBackend` protocol a
  runtime implements (spawn-policy decision, block/wake, dispatch cost,
  memory commit);
- :mod:`repro.exec.probes` — the instrumentation probe bus: typed stat
  views feeding the counter framework, the trace hook, and the
  per-activation instrumentation charge, shared by every backend;
- :mod:`repro.exec.errors` — the execution failure modes (deadlock,
  resource exhaustion) with diagnostics naming the stuck tasks;
- :mod:`repro.exec.modes` — the :class:`ExecutionMode` selection
  (``exact`` | ``cohort``) resolved per run;
- :mod:`repro.exec.cohort` — the mesoscale engine: advances whole
  homogeneous task populations per event using mean-value math from
  the resource model, materializing exact probe deltas at cohort
  boundaries (see ``docs/cohort.md``).

Adding a third runtime means implementing :class:`SchedulerBackend`
(see ``docs/backends.md``); the interpreter, the counters, tracing and
the experiment harness come along for free.
"""

from repro.exec.backend import SchedulerBackend
from repro.exec.cohort import CohortEngine
from repro.exec.errors import (
    DeadlockError,
    ExecutionError,
    ResourceExhausted,
    describe_tasks,
    format_stall,
)
from repro.exec.interp import EffectInterpreter
from repro.exec.modes import (
    EXECUTION_MODES,
    CohortIneligibleError,
    ExecutionMode,
    resolve_mode,
)
from repro.exec.probes import KernelProbe, ProbeBus, SchedulerProbe, WorkerProbe

__all__ = [
    "EXECUTION_MODES",
    "CohortEngine",
    "CohortIneligibleError",
    "DeadlockError",
    "EffectInterpreter",
    "ExecutionError",
    "ExecutionMode",
    "KernelProbe",
    "ProbeBus",
    "ResourceExhausted",
    "SchedulerBackend",
    "SchedulerProbe",
    "WorkerProbe",
    "describe_tasks",
    "format_stall",
    "resolve_mode",
]
