"""Shared execution layer: one effect interpreter, many scheduler backends.

Both task runtimes (:mod:`repro.runtime` — the HPX-style thread manager,
:mod:`repro.kernel` — the ``std::async`` thread-per-task model) execute
the same benchmark bodies: generator coroutines yielding
:mod:`repro.model.effects` values.  This package holds everything that
is runtime-independent about executing them:

- :mod:`repro.exec.interp` — the single effect-interpretation loop
  (coroutine resume, ``SimFuture`` payload/exception propagation, task
  completion), dispatching each yielded effect to the backend;
- :mod:`repro.exec.backend` — the :class:`SchedulerBackend` protocol a
  runtime implements (spawn-policy decision, block/wake, dispatch cost,
  memory commit);
- :mod:`repro.exec.probes` — the instrumentation probe bus: typed stat
  views feeding the counter framework, the trace hook, and the
  per-activation instrumentation charge, shared by every backend;
- :mod:`repro.exec.errors` — the execution failure modes (deadlock,
  resource exhaustion) with diagnostics naming the stuck tasks.

Adding a third runtime means implementing :class:`SchedulerBackend`
(see ``docs/backends.md``); the interpreter, the counters, tracing and
the experiment harness come along for free.
"""

from repro.exec.backend import SchedulerBackend
from repro.exec.errors import (
    DeadlockError,
    ExecutionError,
    ResourceExhausted,
    describe_tasks,
    format_stall,
)
from repro.exec.interp import EffectInterpreter
from repro.exec.probes import KernelProbe, ProbeBus, SchedulerProbe, WorkerProbe

__all__ = [
    "DeadlockError",
    "EffectInterpreter",
    "ExecutionError",
    "KernelProbe",
    "ProbeBus",
    "ResourceExhausted",
    "SchedulerBackend",
    "SchedulerProbe",
    "WorkerProbe",
    "describe_tasks",
    "format_stall",
]
