"""The scheduler-backend protocol the effect interpreter drives.

A backend owns the *policy* side of execution: where a spawned task
goes, what a dispatch costs, how blocking and waking work, whether
memory is committed per task.  The *mechanics* — resuming the coroutine,
routing ``SimFuture`` payloads and exceptions, completing tasks — live
in :class:`repro.exec.interp.EffectInterpreter` and are shared.

``repro.runtime.scheduler.HpxRuntime`` and
``repro.kernel.scheduler.StdRuntime`` are the two implementations; see
``docs/backends.md`` for how to add a third.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.exec.probes import ProbeBus
from repro.model.effects import (
    Await,
    AwaitAll,
    Compute,
    Lock,
    Spawn,
    Unlock,
    YieldNow,
)
from repro.model.population import TaskCohort
from repro.model.work import Work


@runtime_checkable
class SchedulerBackend(Protocol):
    """What a runtime must provide to execute effect coroutines.

    The *worker* argument the interpreter threads through is opaque to
    it: the HPX backend passes its worker object, the kernel backend
    its core.  ``task`` is equally backend-owned (``Task`` or
    ``OSThread``); the interpreter only touches the small task surface
    it documents (``gen``, ``bind``, ``pending_send``, ``future``).
    """

    #: Short runtime name ("hpx", "std", ...), shown in results.
    name: str
    #: The discrete-event engine driving the simulation.
    engine: Any
    #: The published measurement surface (stats, trace, instrumentation).
    probes: ProbeBus
    #: True once the simulated process died (resource exhaustion).
    aborted: bool
    #: Human-readable reason when ``aborted``.
    abort_reason: str | None

    @property
    def num_workers(self) -> int:
        """Number of workers/cores the backend executes on."""
        ...

    @property
    def workers(self) -> Any:
        """Per-worker views in worker-index order.

        Each element exposes at least ``stats`` (a
        :class:`~repro.exec.probes.WorkerProbe`), ``core_index`` and
        ``socket`` — what the counter framework and the cohort engine
        address workers by."""
        ...

    # -- driving ----------------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Stage a root task; returns its ``SimFuture``."""
        ...

    def run_to_completion(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Submit *fn*, run the engine until quiescence, return its value."""
        ...

    def create_mutex(self) -> Any:
        """A mutex usable with the ``Lock``/``Unlock`` effects."""
        ...

    def describe_stall(self) -> str:
        """Diagnostic naming the unfinished tasks (deadlock reports)."""
        ...

    # -- interpreter hooks -------------------------------------------------

    def begin_step(self, worker: Any, task: Any) -> bool:
        """Gate one interpreter step; False drops it (aborted process)."""
        ...

    def complete(self, worker: Any, task: Any, value: Any) -> None:
        """The task body returned *value*: retire it, fulfil its future."""
        ...

    def fail(self, worker: Any, task: Any, exc: BaseException) -> None:
        """The task body raised: retire it, propagate through its future."""
        ...

    # -- effect handlers ---------------------------------------------------

    def do_compute(self, worker: Any, task: Any, effect: Compute) -> None:
        """Occupy the worker for the effect's simulated work."""
        ...

    def do_spawn(self, worker: Any, task: Any, effect: Spawn) -> None:
        """Create a child task per the effect's launch policy."""
        ...

    def do_await(self, worker: Any, task: Any, effect: Await) -> None:
        """Wait on one future (block, or resume immediately if ready)."""
        ...

    def do_await_all(self, worker: Any, task: Any, effect: AwaitAll) -> None:
        """Wait on a set of futures."""
        ...

    def do_lock(self, worker: Any, task: Any, effect: Lock) -> None:
        """Acquire the effect's mutex (block under contention)."""
        ...

    def do_unlock(self, worker: Any, task: Any, effect: Unlock) -> None:
        """Release the effect's mutex, waking the next waiter."""
        ...

    def do_yield(self, worker: Any, task: Any, effect: YieldNow) -> None:
        """Cooperatively reschedule the task behind its peers."""
        ...

    # -- population hooks (cohort execution) -------------------------------
    #
    # The cohort engine (:mod:`repro.exec.cohort`) never drives the
    # effect handlers above; it charges whole populations through these
    # four hooks instead.  They expose the backend's *cost model* and
    # *resource policy* at population granularity: what one member
    # task's scheduler interactions cost, and what admitting the live
    # population commits (the ``std::async`` backend commits a thread
    # stack per live member and can abort, exactly as per-task runs do).

    def population_work(self, work: Work) -> Work:
        """Apply backend-wide work scaling (e.g. locality traffic)."""
        ...

    def population_task_costs(self, cohort: TaskCohort) -> "tuple[float, float]":
        """Mean per-member ``(exec_ns, overhead_ns)`` beyond the compute.

        Covers the member's scheduler interactions — activations,
        spawns, awaits, retirement — priced with the backend's own cost
        model.  Floats: rounding happens once per cohort, not per task.
        """
        ...

    def population_begin(self, cohort: TaskCohort) -> int:
        """Admit the cohort's live population; returns members admitted.

        Updates live/peak probes and commits per-task resources.  A
        backend with a resource budget may abort mid-admission (setting
        ``aborted``/``abort_reason``); the return value is then the
        number admitted before death, mirroring the exact engine's
        partially-built population.
        """
        ...

    def population_end(self, cohort: TaskCohort) -> None:
        """Retire the cohort's live population admitted by
        ``population_begin`` and book boundary-only kernel stats."""
        ...

    # -- counter sources ---------------------------------------------------

    def queue_length(self) -> int:
        """Instantaneous number of staged (runnable, unpicked) tasks."""
        ...

    def worker_queue_length(self, index: int) -> int:
        """Staged tasks attributable to one worker (0 where queues are
        global)."""
        ...

    def idle_rate(self, worker_index: int | None = None) -> float:
        """Fraction of wall time not spent busy, in [0, 1]."""
        ...

    def steals_total(self) -> int:
        """Tasks stolen across all workers (0 without work stealing)."""
        ...
