"""Execution failure modes shared by every scheduler backend.

Both runtimes fail the same two ways: the event queue drains while
tasks are still waiting (deadlock), or the simulated process exhausts a
resource budget (the kernel model's committed-memory abort).  The
errors live here so callers can catch one hierarchy regardless of
backend, and the diagnostics name the tasks involved — count plus the
first few task labels — instead of a bare message.
"""

from __future__ import annotations

from typing import Any, Sequence


class ExecutionError(RuntimeError):
    """Base class for simulated execution failures."""


class DeadlockError(ExecutionError):
    """The event queue drained with unfinished tasks."""


class ResourceExhausted(ExecutionError):
    """The process ran out of memory for thread stacks (paper: 'Abort')."""


def describe_tasks(
    tasks: Sequence[Any], *, noun: str = "task", limit: int = 10
) -> list[str]:
    """Indented one-per-task description lines (first *limit* tasks).

    Works for both task kinds: anything with ``tid``, ``description``
    and a ``state`` whose ``value`` is a short string.
    """
    lines = [
        f"  {noun} {task.tid} {task.description} state={task.state.value}"
        for task in tasks[:limit]
    ]
    if len(tasks) > limit:
        lines.append(f"  ... and {len(tasks) - limit} more")
    return lines


def format_stall(
    tasks: Sequence[Any],
    *,
    now_ns: int,
    kind: str = "deadlock",
    noun: str = "task",
    limit: int = 10,
) -> str:
    """Multi-line diagnostic: headline plus the stuck tasks by name."""
    lines = [f"{kind}: {len(tasks)} unfinished {noun}s at t={now_ns}ns"]
    lines.extend(describe_tasks(tasks, noun=noun, limit=limit))
    return "\n".join(lines)
