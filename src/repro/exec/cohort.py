"""The mesoscale execution engine: whole task populations per event.

Where the exact path (:class:`repro.exec.interp.EffectInterpreter`)
advances one effect per engine event, :class:`CohortEngine` advances
one *cohort* — a homogeneous task population described by a
:class:`~repro.model.population.TaskCohort` — per event pair.  The
math is mean-value: every member is charged the population's steady
operating point (L3 pressure and memory bandwidth at the cohort's
concurrency, scheduler interactions at the backend's calibrated per
event costs), and the cohort's wall time is the larger of its
aggregate work spread over the active workers and its critical path.

Exactness contract (test-enforced):

- All ProbeBus deltas materialize *at cohort boundaries*: a counter
  sample taken at a boundary is bit-identical on repeated runs, and
  the run's final totals equal the sum of the per-worker charges.
- The backend's resource policy is honoured through the population
  hooks: the thread-per-task backend commits real stacks for the live
  population and aborts at the same budget the exact engine does.

Approximation error versus the exact engine is characterised in
``docs/cohort.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

from repro.model.future import SimFuture
from repro.model.population import CohortPlan, TaskCohort
from repro.model.work import Work
from repro.platform.resource import PopulationCharge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.backend import SchedulerBackend
    from repro.simcore.machine import Machine

__all__ = ["CohortEngine"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class CohortEngine:
    """Drives a :class:`~repro.model.population.CohortPlan` on a backend.

    One instance per run, like the effect interpreter.  ``submit``
    stages the plan and returns the root future; the backend's engine
    then processes one start/finish event pair per cohort.
    """

    def __init__(self, backend: "SchedulerBackend", machine: "Machine") -> None:
        self.backend = backend
        self.machine = machine
        self.future: SimFuture = SimFuture()
        self._pending: List[TaskCohort] = []
        self._plan: CohortPlan | None = None

    # ------------------------------------------------------------------

    def submit(self, plan: CohortPlan) -> SimFuture:
        """Stage *plan*; cohorts run strictly in order."""
        if self._plan is not None:
            raise RuntimeError("CohortEngine.submit called twice")
        self._plan = plan
        self._pending = list(plan.cohorts)
        self.backend.engine.call_later(0, self._start_next)
        return self.future

    # ------------------------------------------------------------------

    def _start_next(self) -> None:
        backend = self.backend
        if backend.aborted:
            return
        if not self._pending:
            assert self._plan is not None
            self.future.set_value(self._plan.result)
            return
        cohort = self._pending.pop(0)
        stats = backend.probes.total

        admitted = backend.population_begin(cohort)
        if backend.aborted:
            # Mirror the exact engine: only the members admitted before
            # the process died were ever created.
            stats.tasks_created += admitted
            return
        stats.tasks_created += cohort.tasks

        work = backend.population_work(cohort.work)
        exec_extra, overhead_extra = backend.population_task_costs(cohort)

        workers = backend.workers
        active = workers[: min(cohort.tasks, len(workers))]
        shares = self._shares(cohort.tasks, len(active))

        # One steady-state charge per socket hosting active workers:
        # members on a socket share its bandwidth and L3 with exactly
        # the other active workers of that socket.
        per_socket_active: Dict[int, int] = {}
        for w in active:
            per_socket_active[w.socket] = per_socket_active.get(w.socket, 0) + 1
        resources = self.machine.resources
        charges = {
            socket: resources.population_segment(socket, work, concurrency=count)
            for socket, count in per_socket_active.items()
        }

        exec_parts: List[int] = []
        overhead_parts: List[int] = []
        member_busy = 0
        for w, share in zip(active, shares):
            duration = charges[w.socket].duration_ns
            exec_parts.append(round(share * (duration + exec_extra)))
            overhead_parts.append(round(share * overhead_extra))
            member_busy = max(member_busy, round(duration + exec_extra + overhead_extra))

        total_busy = sum(exec_parts) + sum(overhead_parts)
        # Aggregate-work bound vs critical-path bound, never zero: the
        # cohort cannot beat perfect load balance, and it cannot beat
        # `depth` members back to back.
        wall = max(_ceil_div(total_busy, len(active)), cohort.depth * member_busy, 1)
        backend.engine.call_later(
            wall, self._finish, cohort, active, shares, exec_parts, overhead_parts, charges, work
        )

    def _finish(
        self,
        cohort: TaskCohort,
        active: Sequence[Any],
        shares: Sequence[int],
        exec_parts: Sequence[int],
        overhead_parts: Sequence[int],
        charges: Dict[int, PopulationCharge],
        work: Work,
    ) -> None:
        backend = self.backend
        if backend.aborted:  # pragma: no cover - defensive; aborts stop the engine
            return
        stats = backend.probes.total
        resources = self.machine.resources
        cores = self.machine.cores
        for w, share, exec_ns, overhead_ns in zip(active, shares, exec_parts, overhead_parts):
            ws = w.stats
            ws.tasks_executed += share
            ws.exec_ns += exec_ns
            ws.overhead_ns += overhead_ns
            ws.busy_ns += exec_ns + overhead_ns
            resources.population_book(cores[w.core_index], work, charges[w.socket], share)
        stats.tasks_executed += cohort.tasks
        stats.exec_ns += sum(exec_parts)
        stats.overhead_ns += sum(overhead_parts)
        interactions = round(cohort.tasks * (1.0 + cohort.blocking_awaits))
        stats.phases += interactions
        stats.pending_waits += interactions
        backend.population_end(cohort)
        self._start_next()

    # ------------------------------------------------------------------

    @staticmethod
    def _shares(tasks: int, buckets: int) -> Tuple[int, ...]:
        """Integer split of *tasks* over *buckets*, remainder to the
        low-indexed workers (deterministic, sums exactly)."""
        base, rem = divmod(tasks, buckets)
        return tuple(base + (1 if i < rem else 0) for i in range(buckets))
