"""The one effect-interpretation loop both runtimes execute through.

Task bodies are generator coroutines yielding
:mod:`repro.model.effects` values.  :class:`EffectInterpreter` owns the
runtime-independent mechanics of driving them — resume the generator
(``send`` or ``throw`` for exception propagation through futures),
translate ``StopIteration`` into task completion and an uncaught
exception into task failure, and dispatch the yielded effect through a
table keyed on the effect's exact class (the effects are final frozen
dataclasses, so a dict lookup replaces an isinstance chain on the
hottest path).

The backend supplies the policy: every handler, completion, failure and
the per-step gate come from the :class:`~repro.exec.backend.SchedulerBackend`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.model.context import TaskContext
from repro.model.effects import (
    Await,
    AwaitAll,
    Compute,
    Lock,
    Spawn,
    Unlock,
    YieldNow,
)
from repro.model.future import ThrowValue

Handler = Callable[[Any, Any, Any], None]

#: ``rewriter(task, work) -> Work`` — return ``work`` itself (the same
#: object) to leave the effect untouched; any other value replaces it.
WorkRewriter = Callable[[Any, Any], Any]


class EffectInterpreter:
    """Drives one backend's task coroutines, one step at a time.

    A *step* is one resumption of a task body: send the pending value
    (or throw the pending exception) into the generator, then hand the
    yielded effect to the backend handler that implements it.  Backends
    schedule ``interp.step`` on the event engine wherever they used to
    schedule their private step function.
    """

    __slots__ = ("backend", "_handlers", "compute_rewriter")

    def __init__(self, backend: Any) -> None:
        self.backend = backend
        self.compute_rewriter: WorkRewriter | None = None
        self._handlers: dict[type, Handler] = {
            Compute: backend.do_compute,
            Spawn: backend.do_spawn,
            Await: backend.do_await,
            AwaitAll: backend.do_await_all,
            Lock: backend.do_lock,
            Unlock: backend.do_unlock,
            YieldNow: backend.do_yield,
        }

    def set_compute_rewriter(self, rewriter: WorkRewriter | None) -> None:
        """Install (or, with ``None``, remove) a what-if work rewriter.

        The rewriter intercepts every :class:`Compute` effect *before*
        the backend handles it and may substitute a different
        :class:`~repro.model.work.Work`.  When it returns the identical
        object the original effect is dispatched untouched, so a
        factor-1.0 rewrite (``Work.scaled(1.0)`` returns ``self``) is
        bit-identical to running without a rewriter.  The swap happens
        in the dispatch table, so the non-rewriting path costs nothing.
        """
        self.compute_rewriter = rewriter
        if rewriter is None:
            self._handlers[Compute] = self.backend.do_compute
            return
        do_compute = self.backend.do_compute

        def rewritten_compute(worker: Any, task: Any, effect: Any) -> None:
            new_work = rewriter(task, effect.work)
            if new_work is not effect.work:
                effect = Compute(new_work)
            do_compute(worker, task, effect)

        self._handlers[Compute] = rewritten_compute

    def step(self, worker: Any, task: Any, send_value: Any) -> None:
        """Resume *task* with *send_value* and dispatch what it yields."""
        backend = self.backend
        if not backend.begin_step(worker, task):
            return
        gen = task.gen
        if gen is None:  # first activation: bind the body to its context
            gen = task.bind(TaskContext(backend, task))
        task.pending_send = None
        try:
            if send_value.__class__ is ThrowValue:
                effect = gen.throw(send_value.exc)
            else:
                effect = gen.send(send_value)
        except StopIteration as stop:
            backend.complete(worker, task, stop.value)
            return
        except Exception as exc:  # body raised: propagate through the future
            backend.fail(worker, task, exc)
            return
        handler = self._handlers.get(effect.__class__)
        if handler is None:
            backend.fail(worker, task, TypeError(f"task yielded non-effect {effect!r}"))
            return
        handler(worker, task, effect)
