"""Execution-mode selection: exact event replay vs mesoscale cohorts.

Every run resolves one :class:`ExecutionMode`:

- ``exact`` — the original discrete-event path: every task is a
  coroutine, every effect an engine event, timing bit-identical to the
  committed golden fixtures.
- ``cohort`` — the mesoscale path: large homogeneous task populations
  advance as single cohort events using mean-value math from the
  resource model, with exact ProbeBus deltas materialized at cohort
  boundaries.  Orders of magnitude fewer engine events; counter totals
  are approximations with documented error bounds (``docs/cohort.md``).

The mode travels as a workload parameter (``mode=cohort`` in a
:class:`~repro.workloads.WorkloadSpec`, ``--mode`` on the CLI), so it
folds into campaign cell cache keys like any other input.
"""

from __future__ import annotations

import enum

__all__ = ["EXECUTION_MODES", "CohortIneligibleError", "ExecutionMode", "resolve_mode"]


class ExecutionMode(enum.Enum):
    """How a run advances simulated time."""

    EXACT = "exact"
    COHORT = "cohort"


#: Accepted spellings, in preference order (``exact`` is the default).
EXECUTION_MODES: tuple[str, ...] = tuple(m.value for m in ExecutionMode)


class CohortIneligibleError(ValueError):
    """The workload (or this parameterisation of it) has no cohort plan.

    Raised before any simulation state is built, so a failed cohort run
    never half-executes.  The message names the workload and explains
    which structural property is missing.
    """


def resolve_mode(value: "str | ExecutionMode | None") -> ExecutionMode:
    """Resolve a user-facing mode spelling to an :class:`ExecutionMode`.

    ``None`` means unspecified and resolves to the default ``exact``
    mode.  Unknown spellings raise :class:`ValueError` listing the
    valid modes.
    """
    if value is None:
        return ExecutionMode.EXACT
    if isinstance(value, ExecutionMode):
        return value
    try:
        return ExecutionMode(value)
    except ValueError:
        expected = ", ".join(EXECUTION_MODES)
        raise ValueError(
            f"unknown execution mode {value!r}; expected one of: {expected}"
        ) from None
