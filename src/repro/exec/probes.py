"""The instrumentation probe bus: one measurement spine for all backends.

Schedulers account their work into plain typed probe objects
(:class:`WorkerProbe` per worker/core, :class:`SchedulerProbe` totals)
and publish them on a :class:`ProbeBus`.  Everything that *observes*
execution — the performance-counter framework, the task-event trace
recorder, the experiment metrics — reads from the bus, never from
scheduler internals, so a counter written once works against every
:class:`~repro.exec.backend.SchedulerBackend`.

The bus also carries the two instrumentation channels the paper
quantifies:

- ``instrument_ns`` — per-activation cost charged while counters are
  active (timestamping / PAPI reads in the scheduler hot path);
- ``trace`` — the task life-cycle hook (``create`` / ``activate`` /
  ``suspend`` / ``resume`` / ``terminate`` / ``depend``) behind
  :mod:`repro.trace`.

Both are a single attribute load on the dispatch path when inactive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

#: ``trace(time_ns, kind, task, aux)`` — *aux* is the executing worker
#: index for life-cycle events and the producer tid for ``depend``.
TraceHook = Callable[[int, str, Any, "int | None"], None]


@dataclass(slots=True)
class WorkerProbe:
    """Per-worker accounting (backs the worker-thread counter instances)."""

    exec_ns: int = 0
    overhead_ns: int = 0
    busy_ns: int = 0
    tasks_executed: int = 0
    steals_attempted: int = 0
    steals_ok: int = 0
    steals_cross_socket: int = 0


@dataclass(slots=True)
class SchedulerProbe:
    """Global accounting (backs the ``total`` counter instances)."""

    tasks_created: int = 0
    tasks_executed: int = 0
    exec_ns: int = 0  # cumulative task execution time
    overhead_ns: int = 0  # cumulative scheduling overhead
    phases: int = 0
    live_tasks: int = 0
    peak_live_tasks: int = 0
    suspended_tasks: int = 0  # instantaneous: waiting on futures/mutexes
    pending_wait_ns: int = 0  # cumulative staged->activated wait time
    pending_waits: int = 0  # activations that came through a queue


@dataclass(slots=True)
class KernelProbe(SchedulerProbe):
    """Kernel-model totals: the shared probe plus OS-level extras.

    The legacy ``threads_*`` spellings remain readable/writable
    properties so existing callers keep working.
    """

    committed_bytes: int = 0
    dispatches: int = 0
    preemptions: int = 0
    blocks: int = 0
    wakes: int = 0

    # -- legacy aliases (the kernel model used to call tasks "threads") --

    @property
    def threads_created(self) -> int:
        return self.tasks_created

    @threads_created.setter
    def threads_created(self, value: int) -> None:
        self.tasks_created = value

    @property
    def threads_completed(self) -> int:
        return self.tasks_executed

    @threads_completed.setter
    def threads_completed(self, value: int) -> None:
        self.tasks_executed = value

    @property
    def live_threads(self) -> int:
        return self.live_tasks

    @live_threads.setter
    def live_threads(self, value: int) -> None:
        self.live_tasks = value

    @property
    def peak_live_threads(self) -> int:
        return self.peak_live_tasks

    @peak_live_threads.setter
    def peak_live_threads(self, value: int) -> None:
        self.peak_live_tasks = value


class ProbeBus:
    """The backend's published measurement surface.

    Holds the total probe, the per-worker probes, the trace hook and
    the per-activation instrumentation charge.  The scheduler keeps
    direct references to the probes for its hot-path increments; the
    bus is how everything else finds them.
    """

    __slots__ = ("total", "workers", "trace", "instrument_ns", "_trace_hooks")

    def __init__(self, total: SchedulerProbe, workers: Iterable[WorkerProbe]) -> None:
        self.total = total
        self.workers: list[WorkerProbe] = list(workers)
        self.trace: TraceHook | None = None
        self.instrument_ns = 0
        self._trace_hooks: tuple[TraceHook, ...] = ()

    # -- instrumentation charge ------------------------------------------

    def add_instrumentation(self, delta_ns: int) -> None:
        """Register (positive) or remove (negative) per-activation
        instrumentation cost; called by counter ``start``/``stop``."""
        self.instrument_ns = max(0, self.instrument_ns + delta_ns)

    # -- trace subscription ------------------------------------------------

    def subscribe_trace(self, hook: TraceHook) -> None:
        """Attach *hook* alongside any other subscribed trace hooks.

        Unlike a direct ``bus.trace = hook`` assignment (which replaces
        whatever was attached), subscribing composes: every subscribed
        hook sees every event, in subscription order.  The composed
        dispatch is folded back into the single ``trace`` slot so the
        scheduler hot path stays one attribute load — zero subscribers
        is ``None``, one subscriber is the bare hook, several become one
        fan-out closure.  A later direct assignment overrides the
        composition until the next (un)subscribe; don't mix the styles
        on one bus.
        """
        if hook in self._trace_hooks:
            raise ValueError("trace hook is already subscribed")
        self._trace_hooks = self._trace_hooks + (hook,)
        self._compose_trace()

    def unsubscribe_trace(self, hook: TraceHook) -> None:
        """Detach a hook previously attached with :meth:`subscribe_trace`."""
        if hook not in self._trace_hooks:
            raise ValueError("trace hook is not subscribed")
        self._trace_hooks = tuple(h for h in self._trace_hooks if h != hook)
        self._compose_trace()

    def _compose_trace(self) -> None:
        hooks = self._trace_hooks
        if not hooks:
            self.trace = None
        elif len(hooks) == 1:
            self.trace = hooks[0]
        else:

            def fan_out(
                time_ns: int,
                kind: str,
                task: Any,
                aux: int | None,
                _hooks: tuple[TraceHook, ...] = hooks,
            ) -> None:
                for hook in _hooks:
                    hook(time_ns, kind, task, aux)

            self.trace = fan_out

    # -- trace emission ----------------------------------------------------

    def emit(self, time_ns: int, kind: str, task: Any, aux: int | None) -> None:
        """Deliver one life-cycle event to the trace hook, if attached."""
        hook = self.trace
        if hook is not None:
            hook(time_ns, kind, task, aux)

    def emit_dependencies(self, time_ns: int, waiter: Any, futures: Sequence[Any]) -> None:
        """Emit join edges (producer -> waiter) for satisfied futures.

        The hook's 4th argument carries the *producer tid* for
        ``depend`` events (it is the worker index for the life-cycle
        events).
        """
        hook = self.trace
        if hook is None:
            return
        for fut in futures:
            producer = getattr(fut, "producer_task", None)
            if producer is not None and producer is not waiter:
                tid = getattr(producer, "tid", None)
                if tid is not None:
                    hook(time_ns, "depend", waiter, tid)

    # -- derived views -----------------------------------------------------

    def busy_ns(self, index: int | None = None) -> int:
        """Cumulative busy time of one worker, or of all workers."""
        if index is None:
            return sum(w.busy_ns for w in self.workers)
        return self.workers[index].busy_ns
