"""Parcels: remote action invocations over a modelled interconnect.

A parcel carries an action (a task body) plus serialized arguments to a
destination locality, where it is scheduled as an ordinary HPX task;
result parcels travel back the same way.  Transit time = serialization
+ network latency + size/bandwidth, with per-port accounting behind the
``/parcels/...`` performance counters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

DEFAULT_PARCEL_OVERHEAD_BYTES = 512


@dataclass(frozen=True)
class NetworkParams:
    """Cluster-interconnect model (InfiniBand-ish magnitudes)."""

    latency_ns: int = 1_800  # one-way wire + NIC latency
    bandwidth_bytes_per_s: float = 6e9
    serialize_ns_per_kb: int = 250  # argument (de)serialization cost

    def transit_ns(self, size_bytes: int) -> int:
        wire = round(size_bytes / self.bandwidth_bytes_per_s * 1e9)
        serialize = self.serialize_ns_per_kb * (size_bytes // 1024 + 1)
        return self.latency_ns + wire + serialize


@dataclass(frozen=True)
class Parcel:
    """One action invocation in flight."""

    pid: int
    source: int
    dest: int
    action: Callable[..., Any]
    args: tuple
    size_bytes: int
    sent_at: int


@dataclass
class ParcelportStats:
    """Per-locality parcel accounting (backs /parcels counters)."""

    sent: int = 0
    received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    latency_sum_ns: int = 0  # sum of receive transit times


class Parcelport:
    """One locality's network endpoint."""

    _pid_counter = itertools.count()

    def __init__(self, locality_id: int, engine: Any, network: NetworkParams) -> None:
        self.locality_id = locality_id
        self.engine = engine
        self.network = network
        self.stats = ParcelportStats()
        # Set by the DistributedSystem: dest locality id -> deliver fn.
        self._deliver: Callable[[Parcel], None] | None = None
        self._ports: dict[int, "Parcelport"] = {}

    def connect(self, ports: dict[int, "Parcelport"], deliver: Callable[[Parcel], None]) -> None:
        """Wire this port into the system."""
        self._ports = ports
        self._deliver = deliver

    def send(
        self,
        dest: int,
        action: Callable[..., Any],
        args: tuple,
        *,
        payload_bytes: int = 0,
    ) -> Parcel:
        """Send an action invocation to *dest*; returns the parcel."""
        if dest == self.locality_id:
            raise ValueError("parcels are for remote destinations; call locally instead")
        if dest not in self._ports:
            raise KeyError(f"unknown destination locality {dest}")
        size = DEFAULT_PARCEL_OVERHEAD_BYTES + payload_bytes
        parcel = Parcel(
            pid=next(self._pid_counter),
            source=self.locality_id,
            dest=dest,
            action=action,
            args=args,
            size_bytes=size,
            sent_at=self.engine.now,
        )
        self.stats.sent += 1
        self.stats.bytes_sent += size
        transit = self.network.transit_ns(size)
        target = self._ports[dest]
        self.engine.schedule(transit, lambda: target.receive(parcel))
        return parcel

    def receive(self, parcel: Parcel) -> None:
        self.stats.received += 1
        self.stats.bytes_received += parcel.size_bytes
        self.stats.latency_sum_ns += self.engine.now - parcel.sent_at
        assert self._deliver is not None, "parcelport not connected"
        self._deliver(parcel)
