"""The distributed system: localities sharing one simulated clock.

Each locality owns a machine, an HPX runtime, a parcelport, an AGAS
cache and a full performance-counter registry.  ``async_remote`` ships
an action to another locality and returns a future the caller can
``yield ctx.wait(...)`` on, exactly like a local one — the paper's
"full semantic equivalence of local and remote execution".

Remote counter access (`query_counter`) evaluates any counter on any
locality in-band (a query task on the target, results returned by
parcel) — the capability Section IV highlights.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.counters.base import CounterEnvironment
from repro.counters.registry import CounterRegistry, build_default_registry
from repro.distributed.agas import AgasCache, AgasService
from repro.distributed.parcel import NetworkParams, Parcel, Parcelport
from repro.papi.hw import PapiSubstrate
from repro.platform.presets import resolve_platform
from repro.platform.spec import PlatformSpec
from repro.runtime.config import HpxParams
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine, MachineSpec

QUERY_COST_NS = 800  # in-band evaluation cost on the target locality


class Locality:
    """One node of the simulated cluster."""

    def __init__(
        self,
        locality_id: int,
        engine: Engine,
        *,
        cores: int,
        platform: PlatformSpec,
        hpx_params: HpxParams,
        network: NetworkParams,
        agas: AgasService,
    ) -> None:
        self.id = locality_id
        self.machine = Machine(platform)
        self.runtime = HpxRuntime(engine, self.machine, num_workers=cores, params=hpx_params)
        self.runtime.locality_id = locality_id
        self.parcelport = Parcelport(locality_id, engine, network)
        self.agas_cache = AgasCache(agas)
        env = CounterEnvironment(
            engine=engine,
            runtime=self.runtime,
            machine=self.machine,
            papi=PapiSubstrate(self.machine),
        )
        env.locality_id = locality_id  # type: ignore[attr-defined]
        self.registry: CounterRegistry = build_default_registry(env)


class DistributedSystem:
    """A fixed set of localities wired through parcelports."""

    def __init__(
        self,
        engine: Engine,
        *,
        localities: int,
        cores_per_locality: int,
        platform: PlatformSpec | MachineSpec | str | None = None,
        machine_spec: MachineSpec | None = None,
        hpx_params: HpxParams | None = None,
        network: NetworkParams | None = None,
    ) -> None:
        if localities < 1:
            raise ValueError("need at least one locality")
        if platform is not None and machine_spec is not None:
            raise ValueError("pass either platform= or machine_spec=, not both")
        self.engine = engine
        self.network = network or NetworkParams()
        self.agas = AgasService()
        spec = resolve_platform(platform if platform is not None else machine_spec)
        params = hpx_params or HpxParams()
        self.localities = [
            Locality(
                i,
                engine,
                cores=cores_per_locality,
                platform=spec,
                hpx_params=params,
                network=self.network,
                agas=self.agas,
            )
            for i in range(localities)
        ]
        ports = {loc.id: loc.parcelport for loc in self.localities}
        for loc in self.localities:
            loc.parcelport.connect(ports, lambda parcel, loc=loc: self._deliver(loc, parcel))
        from repro.counters.parcel_counters import DistributedCounterProvider

        for loc in self.localities:
            loc.registry.install(DistributedCounterProvider(loc, self))

    # -- remote invocation ---------------------------------------------------

    def async_remote(
        self,
        source: int,
        dest: int,
        action: Callable[..., Any],
        *args: Any,
        payload_bytes: int = 0,
        result_bytes: int = 256,
    ):
        """Run ``action(ctx, *args)`` on *dest*; returns a future that
        becomes ready at *source* once the result parcel arrives."""
        from repro.model.future import SimFuture

        if source == dest:
            return self.localities[dest].runtime.submit(action, *args)
        result = SimFuture()

        def remote_entry(parcel: Parcel) -> None:
            # Runs at delivery on the destination: schedule the shipped
            # action as an ordinary task there.
            inner = self.localities[dest].runtime.submit(action, *args)

            def send_back(fut) -> None:
                def deliver_result(value=None, exc=None):
                    if exc is not None:
                        result.set_exception(exc)
                    else:
                        result.set_value(value)

                try:
                    value = fut.value()
                except Exception as error:  # ship the exception home
                    self.localities[dest].parcelport.send(
                        source,
                        _result_parcel_action,
                        (deliver_result, None, error),
                        payload_bytes=result_bytes,
                    )
                    return
                self.localities[dest].parcelport.send(
                    source,
                    _result_parcel_action,
                    (deliver_result, value, None),
                    payload_bytes=result_bytes,
                )

            inner.on_ready(send_back)

        self.localities[source].parcelport.send(dest, remote_entry, (), payload_bytes=payload_bytes)
        # The outbound parcel's action is invoked at delivery with the
        # parcel itself; mark it so _deliver can distinguish.
        return result

    def _deliver(self, locality: Locality, parcel: Parcel) -> None:
        if parcel.action is _result_parcel_action:
            deliver_result, value, exc = parcel.args
            deliver_result(value=value, exc=exc)
            return
        # Remote-entry closures receive the parcel; plain task actions
        # are submitted to the runtime directly.
        if getattr(parcel.action, "__name__", "") == "remote_entry":
            parcel.action(parcel)
        else:
            locality.runtime.submit(parcel.action, *parcel.args)

    # -- symbolic names --------------------------------------------------------

    def register_name(self, source: int, name: str, payload: Any = None):
        """Bind *name* -> (source locality, payload) in AGAS.

        Local on locality 0; a parcel round trip from anywhere else.
        Returns a future of the created entry.
        """
        if source == 0:
            from repro.model.future import SimFuture

            fut = SimFuture()
            entry = self.agas.bind(name, source, payload)
            self.engine.schedule(0, lambda: fut.set_value(entry))
            return fut

        def bind_action(ctx: Any, name=name, source=source, payload=payload):
            yield ctx.compute(QUERY_COST_NS)
            return self.agas.bind(name, source, payload)

        return self.async_remote(source, 0, bind_action)

    def resolve_name(self, source: int, name: str):
        """Resolve *name*; served from the local AGAS cache when hot."""
        from repro.model.future import SimFuture

        cache = self.localities[source].agas_cache
        cached = cache.lookup(name)
        if cached is not None:
            fut = SimFuture()
            self.engine.schedule(0, lambda: fut.set_value(cached))
            return fut
        if source == 0:
            fut = SimFuture()
            entry = self.agas.resolve(name)
            cache.insert(entry)
            self.engine.schedule(0, lambda: fut.set_value(entry))
            return fut

        def resolve_action(ctx: Any, name=name):
            yield ctx.compute(QUERY_COST_NS)
            return self.agas.resolve(name)

        fut = self.async_remote(source, 0, resolve_action)
        fut.on_ready(lambda f: cache.insert(f.value()) if f.state.value == "ready" else None)
        return fut

    # -- remote counters ----------------------------------------------------------

    def query_counter(self, source: int, dest: int, counter_spec: str):
        """Evaluate *counter_spec* on locality *dest* from *source*.

        The evaluation runs as an in-band task on the target (costing
        scheduler time there, like any counter query); the value comes
        back by parcel.  Returns a future of the float value.
        """

        def query_action(ctx: Any, spec=counter_spec, dest=dest):
            yield ctx.compute(QUERY_COST_NS)
            counter = self.localities[dest].registry.create_counter(spec)
            return counter.get_counter_value().value

        return self.async_remote(source, dest, query_action)

    # -- driving --------------------------------------------------------------------

    def run(self) -> None:
        self.engine.run()


def _result_parcel_action(*args: Any) -> None:  # pragma: no cover - marker
    """Marker action for result parcels (dispatched in _deliver)."""
    raise AssertionError("result parcels are handled by the parcelport")
