"""Distributed HPX model: localities, parcels, AGAS, remote counters.

The paper emphasises that HPX "employs a unified API for both parallel
and distributed applications" and that "any Performance Counter can be
accessed remotely (from a different location) or locally (from the same
locality)".  This package models the distributed substrate those claims
rest on:

- a :class:`~repro.distributed.system.DistributedSystem` of localities,
  each with its own machine, HPX runtime and counter registry, sharing
  one simulated clock;
- a :class:`~repro.distributed.parcel.Parcelport` per locality moving
  action invocations over a latency/bandwidth network model, with
  ``/parcels/...`` counters;
- an :class:`~repro.distributed.agas.AgasService` (Active Global
  Address Space) on locality 0 resolving symbolic names, with caching
  and ``/agas/...`` counters;
- remote counter queries: evaluate any counter on any locality from any
  other locality, in-band, over parcels.
"""

from repro.distributed.agas import AgasService
from repro.distributed.parcel import NetworkParams, Parcel, Parcelport
from repro.distributed.system import DistributedSystem

__all__ = [
    "AgasService",
    "DistributedSystem",
    "NetworkParams",
    "Parcel",
    "Parcelport",
]
