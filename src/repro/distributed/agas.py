"""AGAS — the Active Global Address Space (symbolic name service).

A minimal model of HPX's AGAS: a symbolic-namespace service hosted on
locality 0 mapping names to (locality, payload) entries.  Localities
resolve names through parcels and keep a local cache; binds invalidate
nothing here (entries are write-once per name, matching how counter
components register themselves).

Backs the ``/agas/...`` performance counters (binds, resolves, cache
hits/misses) — one of the paper's four counter groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class AgasError(KeyError):
    """Unknown or duplicate symbolic name."""


@dataclass
class AgasStats:
    binds: int = 0
    resolves: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True)
class AgasEntry:
    name: str
    locality: int
    payload: Any = None


class AgasService:
    """The authoritative name table (lives on locality 0)."""

    def __init__(self) -> None:
        self._table: dict[str, AgasEntry] = {}
        self.stats = AgasStats()

    def bind(self, name: str, locality: int, payload: Any = None) -> AgasEntry:
        """Register *name*; duplicate binds are an error."""
        if name in self._table:
            raise AgasError(f"symbolic name already bound: {name!r}")
        entry = AgasEntry(name=name, locality=locality, payload=payload)
        self._table[name] = entry
        self.stats.binds += 1
        return entry

    def resolve(self, name: str) -> AgasEntry:
        self.stats.resolves += 1
        try:
            return self._table[name]
        except KeyError:
            raise AgasError(f"unknown symbolic name: {name!r}") from None

    def __len__(self) -> int:
        return len(self._table)


class AgasCache:
    """Per-locality resolution cache."""

    def __init__(self, service: AgasService) -> None:
        self.service = service
        self._cache: dict[str, AgasEntry] = {}

    def lookup(self, name: str) -> AgasEntry | None:
        """Cache-only lookup; counts hits/misses on the service stats."""
        entry = self._cache.get(name)
        if entry is not None:
            self.service.stats.cache_hits += 1
        else:
            self.service.stats.cache_misses += 1
        return entry

    def insert(self, entry: AgasEntry) -> None:
        self._cache[entry.name] = entry
