"""Legacy discrete-event engine (pre two-tier queue).

The original binary-heap implementation, kept verbatim as the
determinism oracle: the property tests and ``repro bench-core`` run it
side by side with :mod:`repro.simcore.events` and require bit-identical
simulated timestamps and counter values.  Do not optimise this module.

A minimal but strict event queue: events fire in (time, sequence) order,
where the sequence number is the order of scheduling.  Ties in time are
therefore resolved deterministically, which both runtimes rely on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

Callback = Callable[[], Any]


def _bind(fn: Callable[..., Any], args: tuple) -> Callback:
    """Close over positional args (the legacy engine stores bare thunks)."""
    return lambda: fn(*args)


# Shared exception type: callers catch one class whichever engine runs.
from repro.simcore.events import SimulationError  # noqa: E402


class _Event:
    """A scheduled callback.  Cancellation is handled with a tombstone flag
    so that heap entries never need to be removed eagerly."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callback) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Timer-protocol compatibility (see :class:`repro.simcore.events.Timer`)."""
        return not self.cancelled

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<_Event t={self.time} seq={self.seq}{state}>"


class LegacyEventQueue:
    """A binary heap of :class:`_Event` objects ordered by (time, seq)."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def push(self, time: int, callback: Callback) -> _Event:
        """Schedule *callback* at absolute *time*; returns a cancellable handle."""
        event = _Event(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> _Event | None:
        """Pop the earliest live event, skipping tombstones.  None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> int | None:
        """Earliest live event time, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class LegacyEngine:
    """The simulation driver.

    ``now`` is the current simulated time in nanoseconds.  ``run()``
    drains the event queue until it is empty, a registered stop
    condition fires, or the configured event budget is exhausted
    (protection against runaway simulations).
    """

    def __init__(self, *, max_events: int = 200_000_000) -> None:
        self.now: int = 0
        self.events_processed: int = 0
        self.max_events = max_events
        self._queue = LegacyEventQueue()
        self._stopped = False
        self._stop_reason: str | None = None

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: int, callback: Callback, *args: Any) -> _Event:
        """Schedule *callback* to run *delay* nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        if args:
            callback = _bind(callback, args)
        return self._queue.push(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callback, *args: Any) -> _Event:
        """Schedule *callback* at absolute simulated *time* (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        if args:
            callback = _bind(callback, args)
        return self._queue.push(time, callback)

    # The fast-path entry points of the current engine, aliased so the
    # optimised schedulers can drive this engine unchanged.  The heap
    # mechanics and the (time, seq) order are exactly the original's.
    call_later = schedule
    call_at = schedule_at

    # -- control -------------------------------------------------------

    def stop(self, reason: str | None = None) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True
        self._stop_reason = reason

    @property
    def stop_reason(self) -> str | None:
        return self._stop_reason

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def run(self, until: int | None = None) -> None:
        """Process events until the queue drains (or *until* is reached).

        The clock is left at the last processed event; it does not
        fast-forward to *until* when the queue drains early.
        """
        self._stopped = False
        self._stop_reason = None
        while not self._stopped:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = self._queue.pop()
            assert event is not None
            self.now = event.time
            self.events_processed += 1
            if self.events_processed > self.max_events:
                raise SimulationError(
                    f"event budget exhausted ({self.max_events} events) at t={self.now}ns"
                )
            event.callback()


# Aliases so the legacy engine is a drop-in engine_factory.
EventQueue = LegacyEventQueue
Engine = LegacyEngine
