"""Per-socket memory-controller model (legacy import location).

The bandwidth-arbitration math moved into the unified resource model at
:mod:`repro.platform.resource`; this module re-exports it so existing
imports keep working.  See that module for the model description.
"""

from __future__ import annotations

from repro.platform.resource import MemoryController, MemoryTrafficStats

__all__ = ["MemoryController", "MemoryTrafficStats"]
