"""Per-socket memory-controller model.

Each socket owns one memory controller with a bounded peak bandwidth.
A single core cannot saturate the controller on its own (it is limited
by its private miss bandwidth), so aggregate bandwidth first rises with
the number of concurrently-streaming cores and then saturates — the
shape the paper's Figures 13/14 show for the offcore-request-derived
bandwidth estimate.

The model is a snapshot model: when a compute segment starts, its memory
service time is computed from the number of streams active on the
socket *at that instant*.  This keeps the discrete-event engine free of
O(n) re-scheduling storms while preserving the contention shape.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class MemoryTrafficStats:
    """Cumulative memory traffic bookkeeping for one socket."""

    bytes_total: int = 0
    bytes_cross_socket: int = 0
    segments: int = 0


class MemoryController:
    """Bandwidth arbitration for one socket.

    Parameters
    ----------
    socket_id:
        Index of the owning socket.
    peak_bw:
        Socket peak memory bandwidth in bytes per second.
    per_core_bw:
        Maximum bandwidth a single core can draw, bytes per second.
    cross_socket_factor:
        Multiplier (> 1) applied to the service time of traffic that
        crosses the QPI link to the remote socket's memory.
    """

    __slots__ = (
        "socket_id",
        "peak_bw",
        "per_core_bw",
        "cross_socket_factor",
        "active_streams",
        "stats",
    )

    def __init__(
        self,
        socket_id: int,
        *,
        peak_bw: float,
        per_core_bw: float,
        cross_socket_factor: float = 1.6,
    ) -> None:
        if peak_bw <= 0 or per_core_bw <= 0:
            raise ValueError("bandwidths must be positive")
        self.socket_id = socket_id
        self.peak_bw = float(peak_bw)
        self.per_core_bw = float(per_core_bw)
        self.cross_socket_factor = float(cross_socket_factor)
        self.active_streams = 0
        self.stats = MemoryTrafficStats()

    def effective_bandwidth(self, streams: int | None = None) -> float:
        """Bandwidth one stream obtains with *streams* concurrent streams."""
        n = self.active_streams if streams is None else streams
        n = max(1, n)
        return min(self.per_core_bw, self.peak_bw / n)

    def service_time_ns(self, nbytes: int, *, cross_socket_fraction: float = 0.0) -> int:
        """Nanoseconds needed to move *nbytes* under current contention."""
        if nbytes <= 0:
            return 0
        if cross_socket_fraction == 0.0:
            # Hot path: socket-local traffic (the common case).  Matches
            # the general expression exactly: local == float(nbytes),
            # remote == 0.0, and bw is the same min().
            bw = self.peak_bw / (self.active_streams + 1)
            if bw > self.per_core_bw:
                bw = self.per_core_bw
            return round(nbytes / bw * 1e9)
        if not 0.0 <= cross_socket_fraction <= 1.0:
            raise ValueError("cross_socket_fraction must be in [0, 1]")
        bw = self.effective_bandwidth(self.active_streams + 1)
        local = nbytes * (1.0 - cross_socket_fraction)
        remote = nbytes * cross_socket_fraction * self.cross_socket_factor
        return round((local + remote) / bw * 1e9)

    def stream_started(self, nbytes: int, *, cross_socket_fraction: float = 0.0) -> None:
        """Register a memory-consuming segment beginning on this socket."""
        self.active_streams += 1
        stats = self.stats
        stats.bytes_total += nbytes
        if cross_socket_fraction:
            stats.bytes_cross_socket += round(nbytes * cross_socket_fraction)
        stats.segments += 1

    def stream_finished(self) -> None:
        """Register a memory-consuming segment ending."""
        if self.active_streams <= 0:
            raise RuntimeError("stream_finished without matching stream_started")
        self.active_streams -= 1
