"""Node model: sockets, cores, shared L3 pressure, hardware counters.

Models the paper's platform (Table III): dual-socket Intel Ivy Bridge
E5-2670v2, 10 cores/socket at 2.5 GHz, 25 MB shared L3 per socket,
hyper-threading disabled.  The machine turns :class:`~repro.model.work.Work`
descriptions into segment durations (CPU time + contended memory time)
and accumulates per-core hardware event counts that the simulated PAPI
layer exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.work import Work
from repro.simcore.memory import MemoryController


@dataclass(frozen=True)
class MachineSpec:
    """Static description of the simulated node."""

    name: str = "ivybridge-2x10"
    sockets: int = 2
    cores_per_socket: int = 10
    freq_ghz: float = 2.5
    l3_bytes_per_socket: int = 25 * 1024 * 1024
    socket_peak_bw: float = 42e9  # bytes/s per socket
    per_core_bw: float = 7.5e9  # bytes/s a single core can draw
    cross_socket_factor: float = 1.6
    ram_bytes: int = 62 * 1024**3
    ipc: float = 1.6  # retired instructions per cycle (for the counter model)
    l3_pressure_alpha: float = 0.35  # extra-traffic slope once L3 overflows
    l3_max_factor: float = 2.5  # cap on the L3 overflow inflation

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def socket_of(self, core_index: int) -> int:
        if not 0 <= core_index < self.total_cores:
            raise IndexError(f"core {core_index} out of range")
        return core_index // self.cores_per_socket


@dataclass
class HardwareCounters:
    """Monotonic per-core hardware event counts (the PAPI substrate)."""

    cycles: int = 0
    instructions: int = 0
    offcore_all_data_rd: int = 0
    offcore_demand_code_rd: int = 0
    offcore_demand_rfo: int = 0

    def offcore_total(self) -> int:
        return (self.offcore_all_data_rd + self.offcore_demand_code_rd + self.offcore_demand_rfo)


@dataclass
class Core:
    """One physical core."""

    index: int
    socket: int
    hw: HardwareCounters = field(default_factory=HardwareCounters)
    busy_ns: int = 0  # cumulative time spent executing segments


class SegmentTicket:
    """Handle returned by :meth:`Machine.segment_begin`; pass back to
    :meth:`Machine.segment_end` when the segment's end event fires.

    Plain ``__slots__`` object (one per compute segment — hot path);
    treat instances as immutable."""

    __slots__ = ("core_index", "socket", "duration_ns", "membytes_effective", "uses_memory")

    def __init__(
        self,
        core_index: int,
        socket: int,
        duration_ns: int,
        membytes_effective: int,
        uses_memory: bool,
    ) -> None:
        self.core_index = core_index
        self.socket = socket
        self.duration_ns = duration_ns
        self.membytes_effective = membytes_effective
        self.uses_memory = uses_memory


class Machine:
    """The simulated node: resolves Work into time and event counts."""

    def __init__(self, spec: MachineSpec | None = None) -> None:
        self.spec = spec or MachineSpec()
        self.cores = [
            Core(index=i, socket=self.spec.socket_of(i))
            for i in range(self.spec.total_cores)
        ]
        self.controllers = [
            MemoryController(
                s,
                peak_bw=self.spec.socket_peak_bw,
                per_core_bw=self.spec.per_core_bw,
                cross_socket_factor=self.spec.cross_socket_factor,
            )
            for s in range(self.spec.sockets)
        ]
        # Sum of the working sets of segments currently active per socket,
        # for the shared-L3 pressure model.
        self._active_ws = [0] * self.spec.sockets
        # Spec is frozen: cache the constants segment_begin reads per call.
        self._l3_bytes = self.spec.l3_bytes_per_socket
        self._l3_alpha = self.spec.l3_pressure_alpha
        self._l3_max = self.spec.l3_max_factor
        self._freq_ghz = self.spec.freq_ghz
        self._ipc = self.spec.ipc

    # -- queries ---------------------------------------------------------

    def core(self, index: int) -> Core:
        return self.cores[index]

    def l3_pressure_factor(self, socket: int, extra_ws: int) -> float:
        """Traffic inflation once concurrent working sets overflow the L3."""
        ws = self._active_ws[socket] + extra_ws
        overflow = ws / self.spec.l3_bytes_per_socket - 1.0
        if overflow <= 0:
            return 1.0
        return min(self.spec.l3_max_factor, 1.0 + self.spec.l3_pressure_alpha * overflow)

    def total_offcore_bytes(self) -> int:
        return sum(c.stats.bytes_total for c in self.controllers)

    # -- segment lifecycle -------------------------------------------------

    def segment_begin(
        self,
        core_index: int,
        work: Work,
        *,
        cross_socket_fraction: float = 0.0,
        speed_factor: float = 1.0,
    ) -> SegmentTicket:
        """Start executing *work* on core *core_index*.

        Returns a ticket carrying the segment duration under current
        contention.  *speed_factor* scales CPU time (>1 means slower;
        used by the kernel model for time-slicing dilation).
        """
        core = self.cores[core_index]
        socket = core.socket
        controller = self.controllers[socket]
        working_set = work.membytes if work.working_set is None else work.working_set

        # Inline l3_pressure_factor (hot path: one call per segment).
        ws = self._active_ws[socket] + working_set
        overflow = ws / self._l3_bytes - 1.0
        if overflow <= 0:
            pressure = 1.0
        else:
            pressure = min(self._l3_max, 1.0 + self._l3_alpha * overflow)
        membytes = round(work.membytes * pressure)
        mem_ns = controller.service_time_ns(membytes, cross_socket_fraction=cross_socket_fraction)
        cpu_ns = round(work.cpu_ns * speed_factor)
        duration = cpu_ns + mem_ns

        uses_memory = membytes > 0
        if uses_memory:
            controller.stream_started(membytes, cross_socket_fraction=cross_socket_fraction)
        self._active_ws[socket] += working_set

        # Hardware counter increments are booked at segment start; the
        # simulated PAPI layer only ever observes them after the segment
        # completes, so eager booking is unobservable and cheaper.
        hw = core.hw
        if membytes:
            lines_work = work.scaled_traffic(pressure)
            data_rd, code_rd, rfo = lines_work.offcore_requests()
            hw.offcore_all_data_rd += data_rd
            hw.offcore_demand_code_rd += code_rd
            hw.offcore_demand_rfo += rfo
        hw.cycles += round(duration * self._freq_ghz)
        hw.instructions += round(work.cpu_ns * self._freq_ghz * self._ipc)
        core.busy_ns += duration

        return SegmentTicket(
            core_index=core_index,
            socket=socket,
            duration_ns=duration,
            membytes_effective=membytes,
            uses_memory=uses_memory,
        )

    def segment_end(self, ticket: SegmentTicket, work: Work) -> None:
        """Finish the segment identified by *ticket*."""
        if ticket.uses_memory:
            self.controllers[ticket.socket].stream_finished()
        self._active_ws[ticket.socket] -= work.effective_working_set
        if self._active_ws[ticket.socket] < 0:
            raise RuntimeError("working-set accounting went negative")
