"""Node model: the simulated machine behind one platform spec.

The contention/latency math lives in
:class:`repro.platform.resource.ResourceModel`; :class:`Machine` owns
the per-core state (hardware counters, busy time) and delegates every
segment to the resource model.  A machine is built from any
:class:`~repro.platform.spec.PlatformSpec` — the default is the paper's
platform (Table III): dual-socket Intel Ivy Bridge E5-2670v2, 10
cores/socket at 2.5 GHz, 25 MB shared L3 per socket, hyper-threading
disabled.

:class:`MachineSpec` remains as the legacy single-shape description
(N identical sockets); it converts losslessly to a ``PlatformSpec``
via :meth:`MachineSpec.to_platform` and is accepted everywhere a
platform is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.model.work import Work
from repro.platform.presets import resolve_platform
from repro.platform.resource import (
    Core,
    HardwareCounters,
    ResourceModel,
    SegmentTicket,
)
from repro.platform.spec import PlatformSpec, SocketSpec

__all__ = ["Core", "HardwareCounters", "Machine", "MachineSpec", "SegmentTicket"]


@dataclass(frozen=True)
class MachineSpec:
    """Legacy static description of a node with N identical sockets.

    Kept for backwards compatibility (and as the compact spelling for
    even shapes); :meth:`to_platform` is the lossless upgrade path to
    the declarative :class:`~repro.platform.spec.PlatformSpec`.
    """

    name: str = "ivybridge-2x10"
    sockets: int = 2
    cores_per_socket: int = 10
    freq_ghz: float = 2.5
    l3_bytes_per_socket: int = 25 * 1024 * 1024
    socket_peak_bw: float = 42e9  # bytes/s per socket
    per_core_bw: float = 7.5e9  # bytes/s a single core can draw
    cross_socket_factor: float = 1.6
    ram_bytes: int = 62 * 1024**3
    ipc: float = 1.6  # retired instructions per cycle (for the counter model)
    l3_pressure_alpha: float = 0.35  # extra-traffic slope once L3 overflows
    l3_max_factor: float = 2.5  # cap on the L3 overflow inflation

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def socket_of(self, core_index: int) -> int:
        if not 0 <= core_index < self.total_cores:
            raise IndexError(f"core {core_index} out of range")
        return core_index // self.cores_per_socket

    def to_platform(self) -> PlatformSpec:
        """The equivalent declarative platform (lossless)."""
        socket = SocketSpec(
            cores=self.cores_per_socket,
            freq_ghz=self.freq_ghz,
            l3_bytes=self.l3_bytes_per_socket,
            peak_bw=self.socket_peak_bw,
            per_core_bw=self.per_core_bw,
        )
        return PlatformSpec(
            name=self.name,
            sockets=(socket,) * self.sockets,
            cross_socket_factor=self.cross_socket_factor,
            ram_bytes=self.ram_bytes,
            ipc=self.ipc,
            l3_pressure_alpha=self.l3_pressure_alpha,
            l3_max_factor=self.l3_max_factor,
        )

    @classmethod
    def from_platform(cls, platform: PlatformSpec) -> "MachineSpec":
        """The legacy spelling of *platform* (homogeneous shapes only)."""
        if not platform.homogeneous:
            raise ValueError(
                f"platform {platform.name!r} has uneven sockets; "
                "it has no MachineSpec spelling"
            )
        socket = platform.sockets[0]
        return cls(
            name=platform.name,
            sockets=platform.num_sockets,
            cores_per_socket=socket.cores,
            freq_ghz=socket.freq_ghz,
            l3_bytes_per_socket=socket.l3_bytes,
            socket_peak_bw=socket.peak_bw,
            per_core_bw=socket.per_core_bw,
            cross_socket_factor=platform.cross_socket_factor,
            ram_bytes=platform.ram_bytes,
            ipc=platform.ipc,
            l3_pressure_alpha=platform.l3_pressure_alpha,
            l3_max_factor=platform.l3_max_factor,
        )


#: Anything a Machine (or Topology) accepts as its platform.
PlatformLike = Union[PlatformSpec, MachineSpec, str, None]


class Machine:
    """The simulated node: resolves Work into time and event counts."""

    def __init__(self, spec: PlatformLike = None) -> None:
        self.platform = resolve_platform(spec)
        self.resources = ResourceModel(self.platform)
        self.cores = [
            Core(index=i, socket=self.platform.socket_of(i))
            for i in range(self.platform.total_cores)
        ]
        # Compat alias: the controllers live on the resource model now.
        self.controllers = self.resources.controllers

    @property
    def spec(self) -> PlatformSpec:
        """The platform this machine simulates (legacy spelling)."""
        return self.platform

    @property
    def _active_ws(self) -> list[int]:
        """Per-socket active working sets (legacy test hook)."""
        return self.resources.active_ws

    # -- queries ---------------------------------------------------------

    def core(self, index: int) -> Core:
        return self.cores[index]

    def l3_pressure_factor(self, socket: int, extra_ws: int) -> float:
        """Traffic inflation once concurrent working sets overflow the L3."""
        return self.resources.l3_pressure_factor(socket, extra_ws)

    def total_offcore_bytes(self) -> int:
        return self.resources.total_offcore_bytes()

    # -- segment lifecycle -------------------------------------------------

    def segment_begin(
        self,
        core_index: int,
        work: Work,
        *,
        cross_socket_fraction: float = 0.0,
        speed_factor: float = 1.0,
    ) -> SegmentTicket:
        """Start executing *work* on core *core_index*.

        Returns a ticket carrying the segment duration under current
        contention.  *speed_factor* scales CPU time (>1 means slower;
        used by the kernel model for time-slicing dilation).
        """
        return self.resources.segment_begin(
            self.cores[core_index],
            work,
            cross_socket_fraction=cross_socket_fraction,
            speed_factor=speed_factor,
        )

    def segment_end(self, ticket: SegmentTicket, work: Work) -> None:
        """Finish the segment identified by *ticket*."""
        self.resources.segment_end(ticket, work)
