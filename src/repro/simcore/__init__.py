"""Discrete-event simulation substrate.

This package models the paper's test platform (Table III): a dual-socket
Intel Ivy Bridge node with ten cores per socket, private L1/L2 caches, a
shared L3 per socket, and per-socket memory controllers with bounded
bandwidth.  All simulated time is kept as integer nanoseconds so that
runs are bit-for-bit deterministic.
"""

from repro.simcore.clock import MS, NS_PER_S, US, from_us, ms, ns_to_s, ns_to_us, s, us
from repro.simcore.events import Engine, EventQueue, SimulationError, Timer
from repro.simcore.machine import Core, Machine, MachineSpec
from repro.simcore.memory import MemoryController, MemoryTrafficStats
from repro.simcore.rng import derive_rng, derive_seed
from repro.simcore.topology import BindMode, Topology

__all__ = [
    "MS",
    "NS_PER_S",
    "US",
    "BindMode",
    "Core",
    "Engine",
    "EventQueue",
    "Machine",
    "MachineSpec",
    "MemoryController",
    "MemoryTrafficStats",
    "SimulationError",
    "Timer",
    "Topology",
    "derive_rng",
    "derive_seed",
    "from_us",
    "ms",
    "ns_to_s",
    "ns_to_us",
    "s",
    "us",
]
