"""hwloc-style topology and thread-affinity support.

The paper pins worker threads so sockets fill first (``taskset`` for the
Standard versions, ``--hpx:bind`` for HPX, verified with ``htop``).
:class:`Topology` reproduces that: it maps a requested worker count to a
concrete list of core indices under a binding mode.  Topologies are
built from any :class:`~repro.platform.spec.PlatformSpec` — including
uneven socket shapes (1-socket desktops, asymmetric hybrids) — with the
legacy even-shape ``MachineSpec`` accepted and converted.
"""

from __future__ import annotations

import enum

from repro.platform.presets import resolve_platform
from repro.platform.spec import PlatformSpec


class BindMode(enum.Enum):
    """Thread-to-core binding policies (subset of ``--hpx:bind``)."""

    COMPACT = "compact"  # fill socket 0 first, then socket 1 (paper default)
    SCATTER = "scatter"  # round-robin across sockets
    BALANCED = "balanced"  # split evenly across sockets, compact within

    @classmethod
    def parse(cls, text: str) -> "BindMode":
        try:
            return cls(text.lower())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown bind mode {text!r}; expected one of {valid}") from None


class Topology:
    """Logical view of the platform for affinity decisions."""

    def __init__(self, spec: PlatformSpec | object | None = None) -> None:
        self.platform = resolve_platform(spec)

    @property
    def spec(self) -> PlatformSpec:
        """The underlying platform (legacy spelling)."""
        return self.platform

    def describe_core(self, core_index: int) -> str:
        """hwloc-like location string, e.g. ``socket#1/core#3``."""
        socket, local = self.platform.core_local(core_index)
        return f"socket#{socket}/core#{local}"

    def _check_workers(self, num_workers: int, total: int) -> None:
        if not 1 <= num_workers <= total:
            raise ValueError(
                f"platform {self.platform.name!r} has {total} bindable cores; "
                f"num_workers must be in [1, {total}], got {num_workers}"
            )

    def binding(self, num_workers: int, mode: BindMode = BindMode.COMPACT) -> list[int]:
        """Core indices for *num_workers* workers under *mode*.

        Raises ``ValueError`` naming the platform if more workers than
        cores are requested (hyper-threading is disabled in the paper's
        experiments).
        """
        platform = self.platform
        self._check_workers(num_workers, platform.total_cores)
        if mode is BindMode.COMPACT:
            # Global core indices are already socket-major.
            return list(range(num_workers))
        if mode is BindMode.SCATTER:
            # Round-robin by local core index; exhausted (smaller)
            # sockets simply drop out of later rounds.
            order: list[int] = []
            rounds = max(sock.cores for sock in platform.sockets)
            for local in range(rounds):
                for socket, sock in enumerate(platform.sockets):
                    if local < sock.cores:
                        order.append(platform.core_range(socket)[local])
            return order[:num_workers]
        if mode is BindMode.BALANCED:
            # Even split, compact within each socket; on uneven shapes a
            # socket never takes more than it has and the overflow is
            # redistributed to sockets with spare capacity, in order.
            capacities = [sock.cores for sock in platform.sockets]
            base, extra = divmod(num_workers, len(capacities))
            targets = [base + (1 if socket < extra else 0) for socket in range(len(capacities))]
            counts = [min(target, cap) for target, cap in zip(targets, capacities)]
            overflow = num_workers - sum(counts)
            while overflow > 0:
                # One worker at a time onto the least-loaded socket with
                # spare capacity, so the split stays as even as it can be.
                socket = min(
                    (s for s, cap in enumerate(capacities) if counts[s] < cap),
                    key=lambda s: (counts[s], s),
                )
                counts[socket] += 1
                overflow -= 1
            order = []
            for socket, count in enumerate(counts):
                order.extend(platform.core_range(socket)[:count])
            return order
        raise AssertionError(f"unhandled bind mode {mode}")

    def binding_smt(
        self, num_workers: int, smt: int = 1, mode: BindMode = BindMode.COMPACT
    ) -> list[int]:
        """Core indices allowing up to *smt* workers per physical core.

        With hyper-threading enabled (smt=2) the paper binds two
        threads per core; workers beyond the physical core count wrap
        around onto already-occupied cores in binding order.
        """
        if smt < 1:
            raise ValueError("smt must be >= 1")
        total_cores = self.platform.total_cores
        self._check_workers(num_workers, total_cores * smt)
        if num_workers <= total_cores:
            return self.binding(num_workers, mode)
        full = self.binding(total_cores, mode)
        out = list(full)
        while len(out) < num_workers:
            out.append(full[len(out) % len(full)])
        return out

    def sockets_used(self, core_indices: list[int]) -> set[int]:
        """Set of socket ids covered by *core_indices*."""
        return {self.platform.socket_of(c) for c in core_indices}
