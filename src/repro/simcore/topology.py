"""hwloc-style topology and thread-affinity support.

The paper pins worker threads so sockets fill first (``taskset`` for the
Standard versions, ``--hpx:bind`` for HPX, verified with ``htop``).
:class:`Topology` reproduces that: it maps a requested worker count to a
concrete list of core indices under a binding mode.
"""

from __future__ import annotations

import enum

from repro.simcore.machine import MachineSpec


class BindMode(enum.Enum):
    """Thread-to-core binding policies (subset of ``--hpx:bind``)."""

    COMPACT = "compact"  # fill socket 0 first, then socket 1 (paper default)
    SCATTER = "scatter"  # round-robin across sockets
    BALANCED = "balanced"  # split evenly across sockets, compact within

    @classmethod
    def parse(cls, text: str) -> "BindMode":
        try:
            return cls(text.lower())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown bind mode {text!r}; expected one of {valid}")


class Topology:
    """Logical view of the machine for affinity decisions."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    def describe_core(self, core_index: int) -> str:
        """hwloc-like location string, e.g. ``socket#1/core#3``."""
        socket = self.spec.socket_of(core_index)
        local = core_index - socket * self.spec.cores_per_socket
        return f"socket#{socket}/core#{local}"

    def binding(self, num_workers: int, mode: BindMode = BindMode.COMPACT) -> list[int]:
        """Core indices for *num_workers* workers under *mode*.

        Raises ``ValueError`` if more workers than cores are requested
        (hyper-threading is disabled in the paper's experiments).
        """
        total = self.spec.total_cores
        if not 1 <= num_workers <= total:
            raise ValueError(f"num_workers must be in [1, {total}], got {num_workers}")
        if mode is BindMode.COMPACT:
            return list(range(num_workers))
        if mode is BindMode.SCATTER:
            order: list[int] = []
            per = self.spec.cores_per_socket
            for local in range(per):
                for socket in range(self.spec.sockets):
                    order.append(socket * per + local)
            return order[:num_workers]
        if mode is BindMode.BALANCED:
            per = self.spec.cores_per_socket
            base, extra = divmod(num_workers, self.spec.sockets)
            order = []
            for socket in range(self.spec.sockets):
                count = base + (1 if socket < extra else 0)
                order.extend(range(socket * per, socket * per + count))
            return order
        raise AssertionError(f"unhandled bind mode {mode}")

    def binding_smt(
        self, num_workers: int, smt: int = 1, mode: BindMode = BindMode.COMPACT
    ) -> list[int]:
        """Core indices allowing up to *smt* workers per physical core.

        With hyper-threading enabled (smt=2) the paper binds two
        threads per core; workers beyond the physical core count wrap
        around onto already-occupied cores in binding order.
        """
        if smt < 1:
            raise ValueError("smt must be >= 1")
        total = self.spec.total_cores * smt
        if not 1 <= num_workers <= total:
            raise ValueError(f"num_workers must be in [1, {total}], got {num_workers}")
        if num_workers <= self.spec.total_cores:
            return self.binding(num_workers, mode)
        full = self.binding(self.spec.total_cores, mode)
        out = list(full)
        while len(out) < num_workers:
            out.append(full[len(out) % len(full)])
        return out

    def sockets_used(self, core_indices: list[int]) -> set[int]:
        """Set of socket ids covered by *core_indices*."""
        return {self.spec.socket_of(c) for c in core_indices}
