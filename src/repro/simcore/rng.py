"""Deterministic random-number derivation.

Every stochastic component (UTS tree shapes, benchmark jitter, kernel
scheduler tie-breaking) derives its generator from a root seed plus a
tuple of string/int keys, so sub-streams are independent and stable no
matter in which order components are constructed.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *keys: object) -> int:
    """Derive a 64-bit child seed from *root_seed* and a key path."""
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(root_seed).encode())
    for key in keys:
        digest.update(b"/")
        digest.update(repr(key).encode())
    return int.from_bytes(digest.digest(), "little")


def derive_rng(root_seed: int, *keys: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded from a derived seed."""
    return np.random.default_rng(derive_seed(root_seed, *keys))
