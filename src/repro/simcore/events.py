"""Discrete-event engine — the fast-path event core.

Events fire in strict ``(time, sequence)`` order, where the sequence
number is the order of scheduling.  Ties in time are therefore resolved
deterministically, which both runtimes rely on; the determinism
contract (identical virtual timestamps and counter values for identical
inputs) is load-bearing for the campaign result cache and for the
``repro compare`` / ``repro bench-core`` regression gates.

The queue is two-tier:

- a **calendar ring** of per-nanosecond slots covering the near
  future ``[floor, floor + RING_SLOTS)`` — the dominant
  ``schedule(now+δ)`` case (context switches, steals, notifications,
  short compute segments) lands in a slot in O(1).  A slot holds the
  entry itself while it has exactly one event (the common case at
  shallow queue depth) and is promoted to a bucket list on the first
  same-timestamp collision.  Occupancy is indexed by a min-heap of the
  *distinct* populated slot times: plain ints compared in C, at most
  one heap operation per slot (not per event).  Within the window the
  slot↔time mapping is bijective, so a slot never mixes timestamps;
- a binary **heap spillover** for far-future events (long compute
  segments, periodic queries).  Heap items are the entry lists
  themselves, compared element-wise on ``(time, seq)`` in C.

Entries are 5-slot lists ``[time, seq, fn, args, state]`` recycled
through a free list; cancellation tombstones an entry in place
(``state = 0``) and the live count is maintained incrementally, so
``__len__`` is O(1).  Tombstones are skipped at dispatch and the
spillover heap is compacted lazily once more than half of it is dead.
The run loop dispatches whole same-timestamp batches: one next-time
computation per batch instead of a peek + pop pair per event.

Handles: :meth:`Engine.schedule` / :meth:`Engine.schedule_at` return a
:class:`Timer` (``cancel`` / ``reschedule``); fire-and-forget callers
use :meth:`Engine.call_later` / :meth:`Engine.call_at`, which skip the
handle allocation and let the entry be recycled.
"""

from __future__ import annotations

from gc import disable as _gc_disable, enable as _gc_enable, isenabled as _gc_isenabled
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Any, Callable

Callback = Callable[..., Any]

# Near-future horizon of the calendar ring, in nanoseconds (one slot per
# nanosecond).  Scheduler primitives cost 50–3000 ns, so almost every
# event lands in the ring; multi-microsecond compute segments spill to
# the heap.  Must be a power of two.
RING_SLOTS = 1 << 13
_RING_MASK = RING_SLOTS - 1

# Entry state values (index 4 of an entry list).
_DEAD = 0  # fired or cancelled — skipped at dispatch
_PENDING = 1  # live, no handle outstanding — recycled after firing
_OWNED = 2  # live, a Timer holds it — never recycled

_FREE_CAP = 2048  # max recycled entries / buckets kept around


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Timer:
    """Handle to one scheduled callback.

    The documented handle protocol: ``cancel()`` tombstones the event
    (it will be skipped at dispatch), ``reschedule()`` moves it to a new
    time — **re-sequencing it**: the event takes a fresh sequence
    number, i.e. it fires after anything already scheduled for the same
    timestamp.  ``active`` is True while the callback has neither fired
    nor been cancelled.  Callers must use this protocol instead of
    reaching into queue internals.
    """

    __slots__ = ("_queue", "_entry")

    def __init__(self, queue: "EventQueue", entry: list) -> None:
        self._queue = queue
        self._entry = entry

    @property
    def time(self) -> int:
        """Absolute simulated time this timer is (or was) set for."""
        return self._entry[0]

    @property
    def seq(self) -> int:
        """Scheduling sequence number (the tie-break within a timestamp)."""
        return self._entry[1]

    @property
    def active(self) -> bool:
        """True until the callback fires or the timer is cancelled."""
        return self._entry[4] != _DEAD

    @property
    def cancelled(self) -> bool:
        """Backwards-compatible alias: True once no longer active."""
        return self._entry[4] == _DEAD

    @property
    def callback(self) -> Callback:
        """The scheduled callable (without its bound arguments)."""
        return self._entry[2]

    def cancel(self) -> None:
        """Tombstone the event; it will be skipped when its time comes."""
        self._queue._cancel(self._entry)

    def reschedule(self, delay: int | None = None, *, at: int | None = None) -> "Timer":
        """Move the timer to ``now + delay`` (or absolute ``at``).

        Works on active and already-fired/cancelled timers alike (the
        latter is re-arming).  Returns ``self``.
        """
        if (delay is None) == (at is None):
            raise ValueError("reschedule needs exactly one of delay= or at=")
        queue = self._queue
        now = queue._now()
        time = now + delay if delay is not None else at
        if time < now:
            raise SimulationError(f"cannot schedule in the past: {time} < {now}")
        if delay is not None and delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        entry = self._entry
        if entry[4] != _DEAD:
            queue._cancel(entry)
        self._entry = queue._push(time, entry[2], entry[3], _OWNED)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.active else " dead"
        return f"<Timer t={self._entry[0]} seq={self._entry[1]}{state}>"


class EventQueue:
    """Two-tier (calendar ring + heap) queue of ``(time, seq)``-ordered
    events with O(1) live count and free-listed entries."""

    __slots__ = (
        "_ring",
        "_ring_times",
        "_heap",
        "_seq",
        "_live",
        "_floor",
        "_free",
        "_heap_dead",
        "engine",
    )

    def __init__(self) -> None:
        # A ring cell is None (empty), a bare entry (one event at that
        # time — the shallow-queue fast path), or a bucket list of
        # entries (same-timestamp collision).  The two non-None shapes
        # are both lists; ``type(cell[0]) is int`` distinguishes an
        # entry (cell[0] is its time) from a bucket (cell[0] is an
        # entry).  Buckets are never empty.
        self._ring: list[list | None] = [None] * RING_SLOTS
        self._ring_times: list[int] = []  # min-heap of populated slot times
        self._heap: list[list] = []  # far-future spillover
        self._seq = 0
        self._live = 0  # pending (non-tombstoned) entries
        self._floor = 0  # lower bound of the ring window
        self._free: list[list] = []  # recycled entries
        self._heap_dead = 0  # tombstones currently in the spillover heap
        self.engine: "Engine | None" = None  # backref set by Engine

    # -- public API --------------------------------------------------------

    def __len__(self) -> int:
        """Number of live (non-cancelled, not yet fired) events. O(1)."""
        return self._live

    def push(self, time: int, callback: Callback, *args: Any) -> Timer:
        """Schedule *callback* at absolute *time*; returns a cancellable
        :class:`Timer` handle."""
        return Timer(self, self._push(time, callback, args, _OWNED))

    def pop(self) -> Timer | None:
        """Pop the earliest live event, skipping tombstones.  None if empty.

        Compatibility path (the engine dispatches whole batches); the
        returned :class:`Timer` is already dead — it reports the popped
        event's ``time``/``seq``/``callback``.
        """
        while True:
            batch = self._take_batch(None)
            if batch is None:
                return None
            if type(batch[0]) is int:  # singleton entry, already live
                batch[4] = _DEAD
                self._live -= 1
                return Timer(self, batch)
            time = batch[0][0]
            first = None
            rest: list[list] = []
            for i, entry in enumerate(batch):
                if entry[4] != _DEAD:
                    first = entry
                    rest = batch[i + 1 :]
                    break
            if first is None:  # all tombstones: skip past them
                continue
            self._live -= 1
            first[4] = _DEAD
            if rest:
                self._requeue(time, rest)
            return Timer(self, first)

    def peek_time(self) -> int | None:
        """Earliest live event time, or None if the queue is empty."""
        while True:
            heap = self._heap
            while heap and heap[0][4] == _DEAD:
                _heappop(heap)
                if self._heap_dead:
                    self._heap_dead -= 1
            heap_t = heap[0][0] if heap else None
            ring_times = self._ring_times
            ring_t = ring_times[0] if ring_times else None
            if ring_t is None:
                return heap_t  # may be None: queue empty
            if heap_t is not None and heap_t < ring_t:
                return heap_t
            cell = self._ring[ring_t & _RING_MASK]
            if type(cell[0]) is int:  # singleton entry
                if cell[4] != _DEAD:
                    return ring_t
            else:
                for entry in cell:
                    if entry[4] != _DEAD:
                        return ring_t
            # All-tombstone cell: drop it and look again.
            _heappop(ring_times)
            self._ring[ring_t & _RING_MASK] = None

    # -- internals ---------------------------------------------------------

    def _now(self) -> int:
        return self.engine.now if self.engine is not None else self._floor

    def _push(self, time: int, fn: Callback, args: tuple, state: int) -> list:
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = self._seq
            entry[2] = fn
            entry[3] = args
            entry[4] = state
        else:
            entry = [time, self._seq, fn, args, state]
        self._seq += 1
        self._live += 1
        if 0 <= time - self._floor < RING_SLOTS:
            slot = time & _RING_MASK
            cell = self._ring[slot]
            if cell is None:
                self._ring[slot] = entry
                _heappush(self._ring_times, time)
            elif type(cell[0]) is int:  # singleton entry: promote to bucket
                self._ring[slot] = [cell, entry]
            else:
                cell.append(entry)
        else:
            _heappush(self._heap, entry)
        return entry

    def _cancel(self, entry: list) -> None:
        if entry[4] == _DEAD:
            return
        entry[4] = _DEAD
        self._live -= 1
        # We do not know which tier holds the entry; assume the heap for
        # compaction accounting (ring tombstones are bounded by the ring
        # horizon and cleaned up at dispatch anyway).
        self._heap_dead += 1
        heap = self._heap
        if self._heap_dead > 64 and self._heap_dead * 2 > len(heap):
            live = [e for e in heap if e[4] != _DEAD]
            if len(live) != len(heap):
                _heapify(live)
                self._heap = live
            self._heap_dead = 0

    def _take_batch(self, until: int | None) -> list | None:
        """Detach everything at the earliest pending timestamp.

        Returns either a single *live* entry (singleton fast path) or a
        non-empty entry list in seq order (tombstones included — all
        entries share ``entry[0]``, the batch time); the two shapes are
        distinguished by ``type(result[0]) is int``.  Returns None when
        the queue is empty or the next time exceeds *until*.  Advances
        the ring window floor to the batch time.
        """
        while True:
            ring_times = self._ring_times
            ring_t = ring_times[0] if ring_times else None
            heap = self._heap
            if heap:
                top = heap[0]
                while top[4] == _DEAD:
                    _heappop(heap)
                    if self._heap_dead:
                        self._heap_dead -= 1
                    if not heap:
                        top = None
                        break
                    top = heap[0]
                heap_t = top[0] if top is not None else None
            else:
                heap_t = None
            if ring_t is None:
                if heap_t is None:
                    return None
                time = heap_t
            elif heap_t is None or ring_t <= heap_t:
                time = ring_t
            else:
                time = heap_t
            if until is not None and time > until:
                return None
            batch: list | None = None
            if ring_t == time:
                _heappop(ring_times)
                slot = time & _RING_MASK
                cell = self._ring[slot]
                self._ring[slot] = None
                if type(cell[0]) is int:  # singleton entry
                    if heap_t != time:
                        if time > self._floor:
                            self._floor = time
                        if cell[4] != _DEAD:
                            return cell
                        continue  # lone tombstone: keep searching
                    batch = [cell]
                else:
                    batch = cell
            if heap_t == time:
                spill: list[list] = []
                while heap and heap[0][0] == time:
                    entry = _heappop(heap)
                    if entry[4] == _DEAD:
                        if self._heap_dead:
                            self._heap_dead -= 1
                        continue
                    spill.append(entry)
                if batch is None:
                    batch = spill
                elif spill:
                    batch.extend(spill)
                    batch.sort(key=_entry_seq)
            # The floor is monotonic: a heap entry below it (pushed for a
            # time before the window's lower bound) dispatches from the
            # heap without retracting the ring window — moving the floor
            # backward would re-admit times that alias with an occupied
            # future slot (T and T + RING_SLOTS sharing a cell).
            if time > self._floor:
                self._floor = time
            if batch:
                return batch
            # Nothing live at this timestamp; keep searching.

    def _requeue(self, time: int, entries: list[list]) -> None:
        """Put not-yet-dispatched batch entries back (stop/error paths).

        They keep their original seq, so they still fire before anything
        scheduled at the same time during the partial dispatch.
        """
        live = [e for e in entries if e[4] != _DEAD]
        if not live:
            return
        if not 0 <= time - self._floor < RING_SLOTS:
            # Below the (monotonic) ring window — e.g. a partially
            # consumed heap batch: back to the spillover heap.
            for entry in live:
                _heappush(self._heap, entry)
            return
        slot = time & _RING_MASK
        cell = self._ring[slot]
        if cell is None:
            # Slot was detached with the batch; re-register its time.
            _heappush(self._ring_times, time)
        elif type(cell[0]) is int:  # singleton scheduled during dispatch
            live.append(cell)
        else:
            live.extend(cell)
        self._ring[slot] = live


def _entry_seq(entry: list) -> int:
    return entry[1]


class Engine:
    """The simulation driver.

    ``now`` is the current simulated time in nanoseconds.  ``run()``
    drains the event queue until it is empty, a registered stop
    condition fires, or the configured event budget is exhausted
    (protection against runaway simulations).
    """

    def __init__(self, *, max_events: int = 200_000_000) -> None:
        self.now: int = 0
        self.events_processed: int = 0
        self.max_events = max_events
        self._queue = EventQueue()
        self._queue.engine = self
        self._stopped = False
        self._stop_reason: str | None = None

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: int, callback: Callback, *args: Any) -> Timer:
        """Schedule ``callback(*args)`` to run *delay* ns from now;
        returns a :class:`Timer` handle (cancel / reschedule)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        queue = self._queue
        return Timer(queue, queue._push(self.now + delay, callback, args, _OWNED))

    def schedule_at(self, time: int, callback: Callback, *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated *time* (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        queue = self._queue
        return Timer(queue, queue._push(time, callback, args, _OWNED))

    def call_later(self, delay: int, callback: Callback, *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, entry recycled.

        The hot path for scheduler primitives — skips the Timer
        allocation and lets the queue reuse the entry's storage.  The
        push is inlined (one Python call per event, not two).
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        queue = self._queue
        time = self.now + delay
        free = queue._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = queue._seq
            entry[2] = callback
            entry[3] = args
            entry[4] = _PENDING
        else:
            entry = [time, queue._seq, callback, args, _PENDING]
        queue._seq += 1
        queue._live += 1
        if 0 <= time - queue._floor < RING_SLOTS:
            slot = time & _RING_MASK
            cell = queue._ring[slot]
            if cell is None:
                queue._ring[slot] = entry
                _heappush(queue._ring_times, time)
            elif type(cell[0]) is int:  # singleton entry: promote to bucket
                queue._ring[slot] = [cell, entry]
            else:
                cell.append(entry)
        else:
            _heappush(queue._heap, entry)

    def call_at(self, time: int, callback: Callback, *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at` (same inlined push)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        queue = self._queue
        free = queue._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = queue._seq
            entry[2] = callback
            entry[3] = args
            entry[4] = _PENDING
        else:
            entry = [time, queue._seq, callback, args, _PENDING]
        queue._seq += 1
        queue._live += 1
        if 0 <= time - queue._floor < RING_SLOTS:
            slot = time & _RING_MASK
            cell = queue._ring[slot]
            if cell is None:
                queue._ring[slot] = entry
                _heappush(queue._ring_times, time)
            elif type(cell[0]) is int:  # singleton entry: promote to bucket
                queue._ring[slot] = [cell, entry]
            else:
                cell.append(entry)
        else:
            _heappush(queue._heap, entry)

    # -- control -------------------------------------------------------

    def stop(self, reason: str | None = None) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True
        self._stop_reason = reason

    @property
    def stop_reason(self) -> str | None:
        return self._stop_reason

    @property
    def pending_events(self) -> int:
        return self._queue._live

    def run(self, until: int | None = None) -> None:
        """Process events until the queue drains (or *until* is reached).

        The clock is left at the last processed event; it does not
        fast-forward to *until* when the queue drains early.  Events
        sharing a timestamp are dispatched as one batch, in scheduling
        order; events scheduled *at the current timestamp* by a batch
        member join the next batch (still strictly (time, seq) ordered).
        """
        self._stopped = False
        self._stop_reason = None
        queue = self._queue
        take_batch = queue._take_batch
        max_events = self.max_events
        free = queue._free
        ring = queue._ring
        ring_times = queue._ring_times
        no_until = until is None
        # The dispatch counter runs in a local and is flushed on exit
        # (nothing reads ``events_processed`` mid-run).
        processed = self.events_processed
        # Pause cyclic GC while the loop runs: a simulation allocates large
        # task/generator/future graphs and collection passes over them are
        # pure overhead (refcounting still frees everything acyclic).
        gc_was_enabled = _gc_isenabled()
        if gc_was_enabled:
            _gc_disable()
        try:
            while not self._stopped:
                # Inlined fast path: the next timestamp is a lone ring
                # singleton and the spillover heap is not competing for
                # it (an entry dead at the heap top with time <= t still
                # takes the general path, which skims tombstones).
                if ring_times:
                    t = ring_times[0]
                    heap = queue._heap
                    if (not heap or heap[0][0] > t) and (no_until or t <= until):
                        slot = t & _RING_MASK
                        cell = ring[slot]
                        if type(cell[0]) is int:
                            _heappop(ring_times)
                            ring[slot] = None
                            queue._floor = t
                            entry = cell
                            state = entry[4]
                            if state == _DEAD:
                                continue
                            entry[4] = _DEAD
                            queue._live -= 1
                            self.now = t
                            processed += 1
                            if processed > max_events:
                                raise SimulationError(
                                    f"event budget exhausted ({max_events} events) "
                                    f"at t={self.now}ns"
                                )
                            fn = entry[2]
                            args = entry[3]
                            if state == _PENDING and len(free) < _FREE_CAP:
                                entry[3] = None  # drop the args reference early
                                free.append(entry)
                            fn(*args)
                            continue
                batch = take_batch(until)
                if batch is None:
                    break
                if type(batch[0]) is int:  # singleton live entry
                    entry = batch
                    state = entry[4]
                    entry[4] = _DEAD
                    queue._live -= 1
                    self.now = entry[0]
                    processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            f"event budget exhausted ({max_events} events) at t={self.now}ns"
                        )
                    fn = entry[2]
                    args = entry[3]
                    if state == _PENDING and len(free) < _FREE_CAP:
                        entry[3] = None  # drop the args reference early
                        free.append(entry)
                    fn(*args)
                    continue
                time = batch[0][0]
                index = 0
                size = len(batch)
                try:
                    while index < size:
                        entry = batch[index]
                        index += 1
                        state = entry[4]
                        if state == _DEAD:
                            continue
                        entry[4] = _DEAD
                        queue._live -= 1
                        self.now = time
                        processed += 1
                        if processed > max_events:
                            raise SimulationError(
                                f"event budget exhausted ({max_events} events) at t={self.now}ns"
                            )
                        fn = entry[2]
                        args = entry[3]
                        if state == _PENDING and len(free) < _FREE_CAP:
                            entry[3] = None  # drop the args reference early
                            free.append(entry)
                        fn(*args)
                        if self._stopped:
                            break
                except BaseException:
                    queue._requeue(time, batch[index:])
                    raise
                if index < size:  # stopped mid-batch
                    queue._requeue(time, batch[index:])
        finally:
            self.events_processed = processed
            if gc_was_enabled:
                _gc_enable()
