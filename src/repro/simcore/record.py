"""Event-stream recording: capture a run's exact queue dynamics.

:class:`RecordingEngine` wraps a discrete-event engine and notes every
scheduled delay, grouped by the event whose callback scheduled it
(group 0 is pre-run setup).  Dispatch order is deterministic, so the
``(groups, delays)`` pair is a complete, replayable transcript of the
run's event-queue behaviour: two runs are *bit-identical* at the event
level iff their transcripts are equal.

This is the oracle behind two gates:

- ``repro bench-core`` replays transcripts with no-op callbacks to
  measure the event core alone (see
  :mod:`repro.experiments.bench_core`);
- the golden-stream tests (``tests/test_golden_streams.py``) compare
  fresh transcripts of reference runs against committed fixtures, so a
  scheduler/interpreter refactor cannot silently change semantics.
"""

from __future__ import annotations

import gzip
import json
from array import array
from pathlib import Path
from typing import Any, Callable

Callback = Callable[..., Any]

STREAM_SCHEMA = "repro-event-stream/1"


class RecordingEngine:
    """Engine wrapper noting every scheduled delay by dispatching event.

    ``groups[i]``/``delays[i]`` pairs say "the *i*-th dispatched event
    scheduled a new event ``delays[i]`` ns ahead" (group 0 is the
    pre-run setup).  Dispatch order is deterministic, so the pairs are
    produced — and can be replayed — in non-decreasing group order.
    """

    def __init__(self, factory: Callable[[], Any] | None = None) -> None:
        if factory is None:
            from repro.simcore.events import Engine

            factory = Engine
        self._engine = factory()
        self.dispatched = 0  # events fired so far (own count: the engine
        # batches its public counter and only flushes it after run())
        self.groups: array = array("q")
        self.delays: array = array("q")

    def __getattr__(self, name: str) -> Any:
        return getattr(self._engine, name)

    def _wrap(self, callback: Callback) -> Callback:
        def fired(*args: Any) -> Any:
            self.dispatched += 1
            return callback(*args)

        return fired

    def _note(self, delay: int) -> None:
        self.groups.append(self.dispatched)
        self.delays.append(delay)

    def call_later(self, delay: int, callback: Callback, *args: Any) -> None:
        self._note(delay)
        self._engine.call_later(delay, self._wrap(callback), *args)

    def call_at(self, time_: int, callback: Callback, *args: Any) -> None:
        self._note(time_ - self._engine.now)
        self._engine.call_at(time_, self._wrap(callback), *args)

    def schedule(self, delay: int, callback: Callback, *args: Any) -> Any:
        self._note(delay)
        return self._engine.schedule(delay, self._wrap(callback), *args)

    def schedule_at(self, time_: int, callback: Callback, *args: Any) -> Any:
        self._note(time_ - self._engine.now)
        return self._engine.schedule_at(time_, self._wrap(callback), *args)


def replay_stream(
    groups: array, delays: array, factory: Callable[[], Any]
) -> tuple[Any, int, int]:
    """Replay a recorded delay stream with no-op callbacks.

    Reproduces the recorded run's exact (time, seq) queue dynamics —
    the engine under test does all the same pushes and pops, only the
    simulation work inside each callback is gone.  Returns
    ``(engine, now, events_processed)``.
    """
    engine = factory()
    call_later = engine.call_later
    n = len(groups)
    state = [0, 0]  # dispatched count, stream cursor

    def fire(_arg: int) -> None:
        k = state[0] + 1
        state[0] = k
        c = state[1]
        while c < n and groups[c] == k:
            call_later(delays[c], fire, k)
            c += 1
        state[1] = c

    c = 0
    while c < n and groups[c] == 0:
        call_later(delays[c], fire, 0)
        c += 1
    state[1] = c
    engine.run()
    return engine, engine.now, engine.events_processed


# -- fixture (de)serialisation ---------------------------------------------


def save_stream(
    path: str | Path,
    *,
    groups: array,
    delays: array,
    meta: dict[str, Any],
) -> None:
    """Write a gzipped JSON stream fixture (transcript + run metadata)."""
    payload = {
        "schema": STREAM_SCHEMA,
        **meta,
        "groups": list(groups),
        "delays": list(delays),
    }
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    with gzip.open(Path(path), "wb", compresslevel=9) as fh:
        fh.write(raw)


def load_stream(path: str | Path) -> dict[str, Any]:
    """Load a fixture written by :func:`save_stream`.

    ``groups``/``delays`` come back as ``array('q')``; everything else
    as plain JSON values.
    """
    with gzip.open(Path(path), "rb") as fh:
        payload = json.loads(fh.read())
    if payload.get("schema") != STREAM_SCHEMA:
        raise ValueError(f"{path}: not a {STREAM_SCHEMA} fixture")
    payload["groups"] = array("q", payload["groups"])
    payload["delays"] = array("q", payload["delays"])
    return payload
