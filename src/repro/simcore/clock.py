"""Simulated time units.

All simulated durations and timestamps in this package are integer
nanoseconds.  Integer arithmetic keeps event ordering exactly
reproducible across platforms (no floating-point drift), which the
determinism tests rely on.
"""

from __future__ import annotations

NS_PER_S = 1_000_000_000
US = 1_000
MS = 1_000_000


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return round(value * US)


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return round(value * MS)


def s(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return round(value * NS_PER_S)


def from_us(value: float) -> int:
    """Alias of :func:`us`, reads better at call sites taking paper values."""
    return us(value)


def ns_to_us(value: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return value / US


def ns_to_s(value: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return value / NS_PER_S
