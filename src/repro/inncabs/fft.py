"""FFT — recursive Cooley-Tukey decimation in time.

Recursive balanced, variable/very fine grain (Table V: 1.03 µs
average).  Computes a real complex FFT: leaves evaluate small DFTs
directly, parents combine children with vectorised butterflies.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.work import Work
from repro.simcore.rng import derive_rng

LEAF_NS_PER_ELEM = 90.0  # direct DFT on tiny leaves
COMBINE_NS_PER_ELEM = 19.0  # butterfly pass
BYTES_PER_ELEM = 16  # complex128


def _dft(x: np.ndarray) -> np.ndarray:
    """Direct DFT (leaves are tiny, so O(n^2) is fine and honest)."""
    n = len(x)
    k = np.arange(n)
    twiddle = np.exp(-2j * np.pi * np.outer(k, k) / n)
    return twiddle @ x


def _fft_task(ctx: Any, x: np.ndarray, offset: int, stride: int, n: int, cutoff: int):
    if n <= cutoff:
        yield ctx.compute(Work(cpu_ns=round(n * LEAF_NS_PER_ELEM), membytes=n * BYTES_PER_ELEM))
        return _dft(x[offset : offset + stride * n : stride])
    half = n // 2
    feven = yield ctx.async_(_fft_task, x, offset, stride * 2, half, cutoff)
    fodd = yield ctx.async_(_fft_task, x, offset + stride, stride * 2, half, cutoff)
    even, odd = (yield ctx.wait_all([feven, fodd]))
    yield ctx.compute(Work(cpu_ns=round(n * COMBINE_NS_PER_ELEM), membytes=2 * n * BYTES_PER_ELEM))
    twiddle = np.exp(-2j * np.pi * np.arange(half) / n) * odd
    return np.concatenate([even + twiddle, even - twiddle])


def _fft_root(ctx: Any, n: int, cutoff: int, seed: int):
    rng = derive_rng(seed, "fft")
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    fut = yield ctx.async_(_fft_task, x, 0, 1, n, cutoff)
    result = yield ctx.wait(fut)
    return x, result


class FftBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="fft",
        structure="recursive-balanced",
        synchronization="none",
        paper_task_duration_us=1.03,
        paper_granularity="variable/very fine",
        paper_scaling_std="to 6",
        paper_scaling_hpx="to 6",
        description="Recursive Cooley-Tukey FFT",
    )

    # 4096-point FFT, cutoff 4: 1023 internal + 1024 leaf tasks.
    default_params = {"n": 1 << 12, "cutoff": 4}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _fft_root, (params["n"], params["cutoff"], params["seed"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        x, out = result
        return bool(np.allclose(out, np.fft.fft(x), atol=1e-8 * params["n"]))
