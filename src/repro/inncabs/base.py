"""Benchmark infrastructure for the Inncabs suite.

Each benchmark is a *real algorithm* written against the runtime-
agnostic task API (:class:`repro.model.context.TaskContext`): it
computes a verifiable result (a Fibonacci number, a sorted array, an
optimal placement, ...) while describing the machine cost of each task
through :class:`repro.model.work.Work`.  Cost models are calibrated so
the ``/threads/time/average`` counter on one core reproduces the task
grain sizes of Table V.

Inputs are scaled down from the original Inncabs input sets (the paper
runs up to 1.75x10^7 tasks; a Python discrete-event simulation cannot
replay that many events in reasonable time).  Scaling preserves grain
size, task-count ratios between benchmarks, and the live-thread blow-up
behaviour of the ``std::async`` versions; the matching memory budget
lives in :mod:`repro.experiments.config`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.exec.modes import resolve_mode
from repro.model.population import CohortPlan

DEFAULT_SEED = 20160523  # IPDPS-workshops 2016 vintage


@dataclass(frozen=True)
class BenchmarkInfo:
    """Static description matching the rows of Table V."""

    name: str
    structure: str  # loop-like | recursive-balanced | recursive-unbalanced | co-dependent
    synchronization: str  # none | atomic pruning | mult. mutex/task | 2 mutex/task
    paper_task_duration_us: float
    paper_granularity: str  # coarse | moderate | fine | very fine | variable/...
    paper_scaling_std: str  # e.g. "to 20", "fail", "no scaling"
    paper_scaling_hpx: str
    description: str = ""
    # Memory-traffic multiplier the HPX runtime applies for this
    # benchmark (depth-first execution order vs the benchmark's access
    # pattern); 1.0 for all but the wavefront-stencil Pyramids.
    hpx_locality_factor: float = 1.0


def effective_locality_factor(base_factor: float, cores: int) -> float:
    """Core-count profile of the HPX execution-order penalty.

    The penalty models the temporal-locality loss of depth-first (LIFO)
    execution for wavefront access patterns (see Pyramids).  It is
    absent on one worker (no stealing, execution order equals program
    order), full while all workers share a socket, and decays across
    the second socket: there, memory-bandwidth saturation and QPI
    latency dominate both execution orders equally, masking the
    ordering effect (the convergence visible in the paper's Fig. 2 at
    high core counts).
    """
    if cores <= 1 or base_factor == 1.0:
        return 1.0
    if cores <= 10:
        return base_factor
    t = min(1.0, (cores - 10) / 8.0)
    return base_factor + (1.0 - base_factor) * t


class Benchmark(abc.ABC):
    """One Inncabs benchmark.

    Subclasses provide ``info``, default parameters, the task-graph
    entry point and a verifier for the computed result.
    """

    info: BenchmarkInfo

    #: Default (scaled) input parameters.
    default_params: Mapping[str, Any] = {}

    def params_with_defaults(self, params: Mapping[str, Any] | None) -> dict[str, Any]:
        merged = dict(self.default_params)
        if params:
            # ``seed`` and ``mode`` are harness-level parameters every
            # benchmark accepts: the root RNG seed and the execution
            # mode (exact | cohort, see repro.exec.modes).
            unknown = set(params) - set(self.default_params) - {"seed", "mode"}
            if unknown:
                raise ValueError(f"unknown parameters for {self.info.name}: {sorted(unknown)}")
            if "mode" in params:
                resolve_mode(params["mode"])  # reject bad spellings early
            merged.update(params)
        merged.setdefault("seed", DEFAULT_SEED)
        return merged

    @abc.abstractmethod
    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        """Return ``(root_fn, args)``: the generator function and its
        arguments; the harness submits ``root_fn(ctx, *args)`` as the
        application's main task.

        *params* has already been merged with the defaults.
        """

    @abc.abstractmethod
    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        """Check the computed result for algorithmic correctness."""

    def cohort_plan(self, params: Mapping[str, Any]) -> CohortPlan | None:
        """Mesoscale description of this parameterisation, or ``None``.

        A benchmark whose task population is homogeneous (same body,
        same grain, no cross-cohort data dependence) can describe one
        run as an ordered :class:`~repro.model.population.CohortPlan`;
        the cohort engine then advances whole populations per event
        instead of interpreting every effect.  ``None`` (the default)
        means this benchmark — or this parameterisation of it — must
        run in ``exact`` mode.

        *params* has already been merged with the defaults.
        """
        return None

    # -- conveniences used by the harness -------------------------------------

    @property
    def name(self) -> str:
        return self.info.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Benchmark {self.info.name}>"
