"""Fib — naive recursive Fibonacci (Inncabs/BOTS classic).

Recursive balanced, no synchronization beyond the child joins, very
fine grained: Table V reports 1.37 µs average task duration and the
``std::async`` version failing outright (each call tree node is a
pthread; the live-thread count explodes).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.population import CohortPlan, TaskCohort
from repro.model.work import Work


def fib_reference(n: int) -> int:
    """Iterative Fibonacci, used for verification."""
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def _fib_task(ctx: Any, n: int, leaf_ns: int, combine_ns: int):
    if n < 2:
        yield ctx.compute(leaf_ns)
        return n
    fa = yield ctx.async_(_fib_task, n - 1, leaf_ns, combine_ns)
    fb = yield ctx.async_(_fib_task, n - 2, leaf_ns, combine_ns)
    a = yield ctx.wait(fa)
    b = yield ctx.wait(fb)
    yield ctx.compute(combine_ns, membytes=192)
    return a + b


class FibBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="fib",
        structure="recursive-balanced",
        synchronization="none",
        paper_task_duration_us=1.37,
        paper_granularity="very fine",
        paper_scaling_std="fail",
        paper_scaling_hpx="to 10",
        description="Naive recursive Fibonacci",
    )

    # fib(21) creates 2*F(22)-1 = 35,421 tasks in the paper's shape;
    # n=19 keeps runs fast (13,529 tasks) at identical grain size.
    default_params = {"n": 19, "leaf_ns": 900, "combine_ns": 1250}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _fib_task, (params["n"], params["leaf_ns"], params["combine_ns"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        return result == fib_reference(params["n"])

    @staticmethod
    def task_count(n: int) -> int:
        """Number of tasks the call tree creates: 2*F(n+1) - 1."""
        return 2 * fib_reference(n + 1) - 1

    #: Fraction of the total task population simultaneously live under
    #: eager thread-per-task admission, calibrated against exact runs
    #: (n=12: 347/465 = 0.746, n=16: 2173/3193 = 0.680).
    LIVE_FRACTION = 0.7

    def cohort_plan(self, params: Mapping[str, Any]) -> CohortPlan:
        """Two cohorts: the internal spine, then the leaves.

        The call tree is perfectly homogeneous at each level kind:
        every internal node spawns two children, blocks on the first
        join (the second is ready under depth-first execution) and
        combines; every leaf only computes.  The internal cohort runs
        first so resource admission mirrors the exact engine, which
        builds the spine during descent — a memory-budget abort
        happens there, before any leaf retires.
        """
        n = int(params["n"])
        leaf_ns = int(params["leaf_ns"])
        combine_ns = int(params["combine_ns"])
        result = fib_reference(n)
        if n < 2:
            return CohortPlan(
                workload="fib",
                cohorts=(TaskCohort(label="fib-leaf", tasks=1, work=Work(leaf_ns)),),
                result=result,
            )
        leaves = fib_reference(n + 1)
        internal = leaves - 1
        total = internal + leaves
        live = max(1, round(self.LIVE_FRACTION * total))
        cohorts = (
            TaskCohort(
                label="fib-internal",
                tasks=internal,
                work=Work(combine_ns, membytes=192),
                spawns=2.0,
                ready_awaits=1.0,
                blocking_awaits=1.0,
                depth=max(1, n - 1),
                # Live figure for the whole descent (spine + frontier
                # leaves): eager backends commit it all here.
                live_tasks=live,
            ),
            TaskCohort(
                label="fib-leaves",
                tasks=leaves,
                work=Work(leaf_ns),
                depth=1,
                # Leaves are admitted lazily as parents reach them; the
                # descent's live population is booked on the internal
                # cohort above.
                live_tasks=1,
            ),
        )
        return CohortPlan(workload="fib", cohorts=cohorts, result=result)
