"""Fib — naive recursive Fibonacci (Inncabs/BOTS classic).

Recursive balanced, no synchronization beyond the child joins, very
fine grained: Table V reports 1.37 µs average task duration and the
``std::async`` version failing outright (each call tree node is a
pthread; the live-thread count explodes).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.inncabs.base import Benchmark, BenchmarkInfo


def fib_reference(n: int) -> int:
    """Iterative Fibonacci, used for verification."""
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def _fib_task(ctx: Any, n: int, leaf_ns: int, combine_ns: int):
    if n < 2:
        yield ctx.compute(leaf_ns)
        return n
    fa = yield ctx.async_(_fib_task, n - 1, leaf_ns, combine_ns)
    fb = yield ctx.async_(_fib_task, n - 2, leaf_ns, combine_ns)
    a = yield ctx.wait(fa)
    b = yield ctx.wait(fb)
    yield ctx.compute(combine_ns, membytes=192)
    return a + b


class FibBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="fib",
        structure="recursive-balanced",
        synchronization="none",
        paper_task_duration_us=1.37,
        paper_granularity="very fine",
        paper_scaling_std="fail",
        paper_scaling_hpx="to 10",
        description="Naive recursive Fibonacci",
    )

    # fib(21) creates 2*F(22)-1 = 35,421 tasks in the paper's shape;
    # n=19 keeps runs fast (13,529 tasks) at identical grain size.
    default_params = {"n": 19, "leaf_ns": 900, "combine_ns": 1250}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _fib_task, (params["n"], params["leaf_ns"], params["combine_ns"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        return result == fib_reference(params["n"])

    @staticmethod
    def task_count(n: int) -> int:
        """Number of tasks the call tree creates: 2*F(n+1) - 1."""
        return 2 * fib_reference(n + 1) - 1
