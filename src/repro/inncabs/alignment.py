"""Alignment — all-pairs global sequence alignment.

Loop-like, coarse grain (Table V: 2,748 µs average; the paper runs 100
protein sequences → 4,950 pair tasks).  One task per sequence pair
computes a real Needleman-Wunsch global alignment score by dynamic
programming; rows are vectorised, and the within-row gap chain is
solved with a prefix-maximum (the standard vectorisation of this DP).

Note from the paper (Section V-B): the original benchmark allocated its
DP arrays on the task stack, which overflows HPX's small (8 kB default)
task stacks — both versions were changed to heap allocation.  The port
keeps ``stack_bytes=0`` (heap) accordingly.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.work import Work
from repro.simcore.rng import derive_rng

MATCH = 2
MISMATCH = -1
GAP = -2

# ~30 ns per DP cell reproduces the paper's 2,748 µs grain at the
# scaled sequence length of 300 residues (the paper's prot.100.aa mean
# length is ~460 at ~13 ns/cell; we shrink the real DP work and scale
# the per-cell cost so the task grain is preserved).
CELL_NS = 30.5
BYTES_PER_CELL = 4

_NEG_INF = np.int32(np.iinfo(np.int32).min // 2)


def nw_score_reference(a: np.ndarray, b: np.ndarray) -> int:
    """Plain O(mn) scalar DP — the ground truth for tests."""
    m, n = len(a), len(b)
    prev = [j * GAP for j in range(n + 1)]
    for i in range(1, m + 1):
        cur = [i * GAP] + [0] * n
        for j in range(1, n + 1):
            sub = MATCH if a[i - 1] == b[j - 1] else MISMATCH
            cur[j] = max(prev[j - 1] + sub, prev[j] + GAP, cur[j - 1] + GAP)
        prev = cur
    return prev[n]


def nw_score(a: np.ndarray, b: np.ndarray) -> int:
    """Needleman-Wunsch global alignment score, row-vectorised.

    The within-row recurrence ``cur[j] = max(best[j], cur[j-1]+GAP)``
    unrolls to ``max over k<=j of best[k] + (j-k)*GAP`` which is a
    prefix maximum of ``best[k] - k*GAP``.
    """
    m, n = len(a), len(b)
    idx = np.arange(1, n + 1, dtype=np.int32)
    prev = np.concatenate(([np.int32(0)], idx * GAP)).astype(np.int32)
    for i in range(1, m + 1):
        sub = np.where(b == a[i - 1], MATCH, MISMATCH).astype(np.int32)
        best = np.maximum(prev[:-1] + sub, prev[1:] + GAP)  # columns 1..n
        cur0 = np.int32(i * GAP)
        g = best - idx * GAP
        run = np.maximum.accumulate(g)
        chain = np.empty(n, dtype=np.int32)
        chain[0] = _NEG_INF
        chain[1:] = run[:-1]
        cur_cols = np.maximum(best, np.maximum(chain, cur0) + idx * GAP)
        prev = np.concatenate(([cur0], cur_cols))
    return int(prev[n])


def _align_pair_task(ctx: Any, seqs: list[np.ndarray], i: int, j: int):
    a, b = seqs[i], seqs[j]
    cells = len(a) * len(b)
    yield ctx.compute(
        Work(
            cpu_ns=round(cells * CELL_NS),
            # The original stores the full DP matrix (traceback): one
            # write + re-read of every cell dominates the traffic.
            membytes=round(cells * BYTES_PER_CELL * 1.5),
            working_set=2 * (len(b) + 1) * BYTES_PER_CELL,
        )
    )
    return nw_score(a, b)


def _alignment_root(ctx: Any, nseq: int, seqlen: int, seed: int):
    rng = derive_rng(seed, "alignment")
    seqs = [rng.integers(0, 20, size=seqlen).astype(np.int8) for _ in range(nseq)]
    futures = []
    for i in range(nseq):
        for j in range(i + 1, nseq):
            fut = yield ctx.async_(_align_pair_task, seqs, i, j)
            futures.append(fut)
    scores = yield ctx.wait_all(futures)
    return seqs, scores


class AlignmentBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="alignment",
        structure="loop-like",
        synchronization="none",
        paper_task_duration_us=2748.0,
        paper_granularity="coarse",
        paper_scaling_std="to 20",
        paper_scaling_hpx="to 20",
        description="All-pairs Needleman-Wunsch sequence alignment",
    )

    # 16 sequences of 300 residues -> 120 pair tasks at ~2.75 ms each.
    default_params = {"nseq": 16, "seqlen": 300}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _alignment_root, (params["nseq"], params["seqlen"], params["seed"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        seqs, scores = result
        nseq = params["nseq"]
        if len(scores) != nseq * (nseq - 1) // 2:
            return False
        if nw_score(seqs[0], seqs[0]) != MATCH * len(seqs[0]):
            return False
        return scores[0] == nw_score(seqs[0], seqs[1])
