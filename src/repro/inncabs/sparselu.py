"""SparseLU — blocked LU factorisation of a sparse block matrix.

Loop-like, coarse grain (Table V: 988 µs average).  The classic BOTS
kernel set: for each diagonal step ``k`` — ``lu0`` on the diagonal
block, then parallel ``fwd`` (row) / ``bdiv`` (column) tasks, then
parallel ``bmod`` updates on the trailing submatrix.  All kernels do
real ``numpy``/``scipy`` linear algebra on the blocks; verification
compares against a sequential factorisation of the same matrix.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np
from scipy.linalg import solve_triangular

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.work import Work
from repro.simcore.rng import derive_rng

BYTES_PER_ELEM = 8
LU0_NS_PER_FLOP = 1.0
TRSM_NS_PER_FLOP = 0.8
GEMM_NS_PER_FLOP = 0.55


def _block_present(i: int, j: int) -> bool:
    """Deterministic sparsity pattern (~2/3 of blocks present)."""
    return i == j or (i + j) % 3 != 0


def build_matrix(nb: int, bs: int, seed: int) -> dict[tuple[int, int], np.ndarray]:
    """Diagonally dominant block matrix on the sparsity pattern."""
    rng = derive_rng(seed, "sparselu")
    blocks: dict[tuple[int, int], np.ndarray] = {}
    for i in range(nb):
        for j in range(nb):
            if _block_present(i, j):
                block = rng.standard_normal((bs, bs))
                if i == j:
                    block += np.eye(bs) * (4.0 * bs)
                blocks[(i, j)] = block
    return blocks


def lu0(diag: np.ndarray) -> None:
    """In-place unpivoted LU of the diagonal block."""
    n = diag.shape[0]
    for k in range(n):
        diag[k + 1 :, k] /= diag[k, k]
        diag[k + 1 :, k + 1 :] -= np.outer(diag[k + 1 :, k], diag[k, k + 1 :])


def fwd(diag: np.ndarray, right: np.ndarray) -> None:
    """Solve L X = right in place (L unit-lower from *diag*)."""
    right[:] = solve_triangular(diag, right, lower=True, unit_diagonal=True)


def bdiv(diag: np.ndarray, below: np.ndarray) -> None:
    """Solve X U = below in place (U upper from *diag*)."""
    below[:] = solve_triangular(diag.T, below.T, lower=True).T


def bmod(row: np.ndarray, col: np.ndarray, inner: np.ndarray) -> None:
    """inner -= col @ row (the trailing update)."""
    inner -= col @ row


def sparselu_sequential(blocks: dict[tuple[int, int], np.ndarray], nb: int) -> dict:
    """Sequential reference factorisation (mutates and returns a copy)."""
    blocks = {key: b.copy() for key, b in blocks.items()}
    for k in range(nb):
        lu0(blocks[(k, k)])
        for j in range(k + 1, nb):
            if (k, j) in blocks:
                fwd(blocks[(k, k)], blocks[(k, j)])
        for i in range(k + 1, nb):
            if (i, k) in blocks:
                bdiv(blocks[(k, k)], blocks[(i, k)])
        for i in range(k + 1, nb):
            for j in range(k + 1, nb):
                if (i, k) in blocks and (k, j) in blocks:
                    if (i, j) not in blocks:
                        blocks[(i, j)] = np.zeros_like(blocks[(i, k)])
                    bmod(blocks[(k, j)], blocks[(i, k)], blocks[(i, j)])
    return blocks


def _trsm_work(bs: int) -> Work:
    flops = bs * bs * bs
    return Work(
        cpu_ns=round(flops * TRSM_NS_PER_FLOP),
        membytes=2 * bs * bs * BYTES_PER_ELEM,
        working_set=2 * bs * bs * BYTES_PER_ELEM,
    )


def _fwd_task(ctx: Any, blocks: dict, k: int, j: int):
    yield ctx.compute(_trsm_work(blocks[(k, k)].shape[0]))
    fwd(blocks[(k, k)], blocks[(k, j)])
    return None


def _bdiv_task(ctx: Any, blocks: dict, k: int, i: int):
    yield ctx.compute(_trsm_work(blocks[(k, k)].shape[0]))
    bdiv(blocks[(k, k)], blocks[(i, k)])
    return None


def _bmod_task(ctx: Any, blocks: dict, k: int, i: int, j: int):
    bs = blocks[(i, k)].shape[0]
    flops = 2 * bs * bs * bs
    yield ctx.compute(
        Work(
            cpu_ns=round(flops * GEMM_NS_PER_FLOP),
            membytes=3 * bs * bs * BYTES_PER_ELEM,
            working_set=3 * bs * bs * BYTES_PER_ELEM,
        )
    )
    if (i, j) not in blocks:
        blocks[(i, j)] = np.zeros((bs, bs))
    bmod(blocks[(k, j)], blocks[(i, k)], blocks[(i, j)])
    return None


def _sparselu_root(ctx: Any, nb: int, bs: int, seed: int):
    blocks = build_matrix(nb, bs, seed)
    original = {key: b.copy() for key, b in blocks.items()}
    for k in range(nb):
        flops = round(2 / 3 * bs * bs * bs)
        yield ctx.compute(
            Work(cpu_ns=round(flops * LU0_NS_PER_FLOP), membytes=bs * bs * BYTES_PER_ELEM)
        )
        lu0(blocks[(k, k)])
        futures = []
        for j in range(k + 1, nb):
            if (k, j) in blocks:
                futures.append((yield ctx.async_(_fwd_task, blocks, k, j)))
        for i in range(k + 1, nb):
            if (i, k) in blocks:
                futures.append((yield ctx.async_(_bdiv_task, blocks, k, i)))
        if futures:
            yield ctx.wait_all(futures)
        futures = []
        for i in range(k + 1, nb):
            for j in range(k + 1, nb):
                if (i, k) in blocks and (k, j) in blocks:
                    futures.append((yield ctx.async_(_bmod_task, blocks, k, i, j)))
        if futures:
            yield ctx.wait_all(futures)
    return original, blocks


class SparseLuBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="sparselu",
        structure="loop-like",
        synchronization="none",
        paper_task_duration_us=988.0,
        paper_granularity="coarse",
        paper_scaling_std="to 20",
        paper_scaling_hpx="to 20",
        description="Blocked LU factorisation of a sparse block matrix",
    )

    # 14x14 blocks of 96x96: ~900 tasks at ~1 ms each.
    default_params = {"nb": 14, "bs": 96}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _sparselu_root, (params["nb"], params["bs"], params["seed"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        original, factored = result
        reference = sparselu_sequential(original, params["nb"])
        if set(reference) != set(factored):
            return False
        return all(np.allclose(factored[key], reference[key]) for key in reference)
