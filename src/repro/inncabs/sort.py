"""Sort — parallel mergesort with parallel merges (cilksort style).

Recursive balanced, variable/fine grain (Table V: 52.1 µs average).
Sorts a real ``numpy`` array: leaf ranges sort sequentially; merges are
themselves parallel (split the larger run at its midpoint, binary-
search the split point in the other run, and merge the two halves as
independent tasks).  The parallel merge is what lets sort scale past
the handful of top-level merges — the paper reports HPX sort scaling
to 16 cores.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.work import Work
from repro.simcore.rng import derive_rng

# Cost model: ns per element for the leaf sort / the merge.
LEAF_NS_PER_ELEM = 14.0
MERGE_NS_PER_ELEM = 5.5
COPY_NS_PER_ELEM = 0.8
BYTES_PER_ELEM = 8


def merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorised merge of two sorted arrays."""
    out = np.empty(len(a) + len(b), dtype=a.dtype)
    pos_b = np.searchsorted(a, b, side="right") + np.arange(len(b))
    mask = np.zeros(len(out), dtype=bool)
    mask[pos_b] = True
    out[pos_b] = b
    out[~mask] = a
    return out


def _merge_work(n: int) -> Work:
    return Work(
        cpu_ns=round(n * MERGE_NS_PER_ELEM),
        # Halves re-read mostly from cache below the L3; charge one
        # streaming pass (write-back dominated).
        membytes=n * BYTES_PER_ELEM,
        working_set=n * BYTES_PER_ELEM,
    )


def _pmerge_task(
    ctx: Any,
    src: np.ndarray,
    lo1: int,
    hi1: int,
    lo2: int,
    hi2: int,
    dst: np.ndarray,
    out: int,
    cutoff: int,
):
    """Merge src[lo1:hi1] and src[lo2:hi2] into dst[out:...]."""
    n1, n2 = hi1 - lo1, hi2 - lo2
    n = n1 + n2
    if n <= cutoff:
        yield ctx.compute(_merge_work(n))
        dst[out : out + n] = merge_sorted(src[lo1:hi1], src[lo2:hi2])
        return None
    if n1 < n2:
        lo1, hi1, lo2, hi2 = lo2, hi2, lo1, hi1
        n1, n2 = n2, n1
    mid1 = (lo1 + hi1) // 2
    split2 = lo2 + int(np.searchsorted(src[lo2:hi2], src[mid1]))
    left_len = (mid1 - lo1) + (split2 - lo2)
    f1 = yield ctx.async_(_pmerge_task, src, lo1, mid1, lo2, split2, dst, out, cutoff)
    f2 = yield ctx.async_(_pmerge_task, src, mid1, hi1, split2, hi2, dst, out + left_len, cutoff)
    yield ctx.wait_all([f1, f2])
    return None


def _sort_task(ctx: Any, arr: np.ndarray, buf: np.ndarray, lo: int, hi: int, cutoff: int):
    n = hi - lo
    if n <= cutoff:
        yield ctx.compute(
            Work(
                cpu_ns=round(n * LEAF_NS_PER_ELEM),
                membytes=n * BYTES_PER_ELEM,
                working_set=n * BYTES_PER_ELEM,
            )
        )
        arr[lo:hi] = np.sort(arr[lo:hi])
        return None
    mid = (lo + hi) // 2
    f1 = yield ctx.async_(_sort_task, arr, buf, lo, mid, cutoff)
    f2 = yield ctx.async_(_sort_task, arr, buf, mid, hi, cutoff)
    yield ctx.wait_all([f1, f2])
    fm = yield ctx.async_(_pmerge_task, arr, lo, mid, mid, hi, buf, lo, 2 * cutoff)
    yield ctx.wait(fm)
    yield ctx.compute(Work(cpu_ns=round(n * COPY_NS_PER_ELEM), membytes=n * BYTES_PER_ELEM))
    arr[lo:hi] = buf[lo:hi]
    return None


def _sort_root(ctx: Any, n: int, cutoff: int, seed: int):
    rng = derive_rng(seed, "sort")
    arr = rng.integers(0, 2**31, size=n).astype(np.int64)
    buf = np.empty_like(arr)
    checksum = int(arr.sum())
    fut = yield ctx.async_(_sort_task, arr, buf, 0, n, cutoff)
    yield ctx.wait(fut)
    return arr, checksum


class SortBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="sort",
        structure="recursive-balanced",
        synchronization="none",
        paper_task_duration_us=52.1,
        paper_granularity="variable/fine",
        paper_scaling_std="to 10",
        paper_scaling_hpx="to 16",
        description="Parallel mergesort with parallel merges",
    )

    # ~1,600 tasks: 128 leaf sorts, 127 sorters, ~1,300 merge tasks.
    default_params = {"n": 1 << 19, "cutoff": 1 << 12}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _sort_root, (params["n"], params["cutoff"], params["seed"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        arr, checksum = result
        if len(arr) != params["n"]:
            return False
        return bool(np.all(arr[:-1] <= arr[1:])) and int(arr.sum()) == checksum
