"""Health — multilevel health-system simulation (BOTS 'health').

Loop-like over timesteps, very fine grain (Table V: 1.02 µs average;
the paper's input creates 1.75x10^7 tasks — the largest of the suite).
A tree of villages is simulated step by step: every step spawns one
task per village (recursively down the tree); each task processes its
patient queue with deterministic, seed-derived arrivals/treatment/
referral decisions so the final counts are verifiable.

Referrals travel through per-step inboxes: a patient referred during
step ``S`` becomes visible to the parent village at step ``S+1``.  The
root task joins every village between steps, so results are identical
regardless of runtime, core count or scheduling order — which is what
lets the same verifier check both runtimes.

This is the benchmark whose ``std::async`` version dies fastest: tens
of thousands of tiny tasks per step, each a pthread.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.simcore.rng import derive_seed

TASK_NS = 700  # base per-village step cost
PATIENT_NS = 60  # additional cost per patient processed

_U64 = float(2**64)


@dataclass
class VillageState:
    """Mutable per-village counters."""

    waiting: int = 0
    treated: int = 0
    referred: int = 0
    # Patients referred up to this village, keyed by the step in which
    # the referral happened; consumed at the following step.
    inbox: dict[int, int] = field(default_factory=lambda: defaultdict(int))


def _village_children(village_id: int, level: int, levels: int, branching: int) -> list[int]:
    if level + 1 >= levels:
        return []
    return [village_id * branching + c + 1 for c in range(branching)]


def _parent_of(village_id: int, branching: int) -> int:
    return (village_id - 1) // branching


def _arrivals(seed: int, village_id: int, step: int) -> int:
    """0-3 new patients, deterministic per (village, step)."""
    return derive_seed(seed, "health", village_id, step) % 4


def _treat_capacity(level: int) -> int:
    """Deeper villages are smaller clinics; the root is the hospital."""
    return 3 if level == 0 else 2


def _refers(seed: int, village_id: int, step: int) -> bool:
    """Whether one waiting patient is referred up this step (~25%)."""
    return (derive_seed(seed, "health", village_id, step, "refer") / _U64) < 0.25


def step_village(
    state: dict[int, VillageState],
    seed: int,
    village_id: int,
    level: int,
    step: int,
    branching: int,
) -> int:
    """Process one village for one step; returns patients handled.

    Shared between the task body and the sequential reference so both
    runtimes and the verifier agree exactly.
    """
    village = state.setdefault(village_id, VillageState())
    village.waiting += village.inbox.pop(step - 1, 0)
    village.waiting += _arrivals(seed, village_id, step)
    handled = min(village.waiting, _treat_capacity(level))
    village.waiting -= handled
    village.treated += handled
    if village.waiting > 0 and level > 0 and _refers(seed, village_id, step):
        village.waiting -= 1
        village.referred += 1
        parent = _parent_of(village_id, branching)
        state.setdefault(parent, VillageState()).inbox[step] += 1
    return handled


def _collect(state: dict[int, VillageState]) -> tuple[int, int, int]:
    treated = sum(v.treated for v in state.values())
    waiting = sum(v.waiting for v in state.values()) + sum(
        sum(v.inbox.values()) for v in state.values()
    )
    referred = sum(v.referred for v in state.values())
    return treated, waiting, referred


def _village_task(
    ctx: Any,
    state: dict,
    seed: int,
    village_id: int,
    level: int,
    step: int,
    levels: int,
    branching: int,
):
    futures = []
    for child in _village_children(village_id, level, levels, branching):
        fut = yield ctx.async_(
            _village_task, state, seed, child, level + 1, step, levels, branching
        )
        futures.append(fut)
    handled = step_village(state, seed, village_id, level, step, branching)
    yield ctx.compute(TASK_NS + PATIENT_NS * handled, membytes=256)
    if futures:
        child_totals = yield ctx.wait_all(futures)
        handled += sum(child_totals)
    return handled


def _health_root(ctx: Any, levels: int, branching: int, steps: int, seed: int):
    state: dict[int, VillageState] = {}
    total = 0
    for step in range(steps):
        fut = yield ctx.async_(_village_task, state, seed, 0, 0, step, levels, branching)
        total += yield ctx.wait(fut)
    treated, waiting, referred = _collect(state)
    return total, treated, waiting, referred


def health_reference(levels: int, branching: int, steps: int, seed: int) -> tuple:
    """Sequential simulation with identical per-village decisions."""
    state: dict[int, VillageState] = {}
    total = 0

    def recurse(village_id: int, level: int, step: int) -> int:
        handled = 0
        for child in _village_children(village_id, level, levels, branching):
            handled += recurse(child, level + 1, step)
        handled += step_village(state, seed, village_id, level, step, branching)
        return handled

    for step in range(steps):
        total += recurse(0, 0, step)
    treated, waiting, referred = _collect(state)
    return (total, treated, waiting, referred)


class HealthBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="health",
        structure="loop-like",
        synchronization="none",
        paper_task_duration_us=1.02,
        paper_granularity="very fine",
        paper_scaling_std="fail",
        paper_scaling_hpx="to 10",
        description="Multilevel health-system simulation",
    )

    # 7 levels x branching 4 = 5,461 villages; 3 steps -> ~16,400 tasks.
    # The per-step village count exceeds the scaled thread budget, so
    # the std::async version aborts (paper: health fails).
    default_params = {"levels": 7, "branching": 4, "steps": 3}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _health_root, (
            params["levels"],
            params["branching"],
            params["steps"],
            params["seed"],
        )

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        return tuple(result) == health_reference(
            params["levels"], params["branching"], params["steps"], params["seed"]
        )
