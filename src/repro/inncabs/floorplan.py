"""Floorplan — branch-and-bound rectangle placement with shared pruning.

Recursive unbalanced with *atomic pruning* (Table V: 4.60 µs average,
very fine).  Cells (rectangles with several legal shapes) are placed
one by one at candidate positions derived from already-placed corners;
the objective is the bounding-box area.  A mutex-protected shared best
prunes branches whose bound is already no better.

The paper notes this benchmark exposed an execution-order effect: the
``std::async`` single global queue pruned far earlier than HPX's
per-worker queues (two orders of magnitude fewer nodes), so a fixed
task limit was enforced for a fair comparison — reproduced here with
the ``task_limit`` parameter (spawning stops once the limit is hit and
subtrees run sequentially inside their task).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.work import Work

NODE_NS = 3_600  # per placement-node processing cost
LEAF_NODE_NS = 1_050  # per node in sequential subtrees

# Cell shapes: each cell may be placed as any (w, h) in its list.
DEFAULT_CELLS: tuple[tuple[tuple[int, int], ...], ...] = (
    ((4, 1), (1, 4), (2, 2)),
    ((3, 2), (2, 3)),
    ((5, 1), (1, 5)),
    ((2, 2),),
    ((3, 1), (1, 3)),
    ((2, 4), (4, 2)),
    ((1, 2), (2, 1)),
)

Rect = tuple[int, int, int, int]  # x, y, w, h


def _overlaps(rect: Rect, placed: tuple[Rect, ...]) -> bool:
    x, y, w, h = rect
    for px, py, pw, ph in placed:
        if x < px + pw and px < x + w and y < py + ph and py < y + h:
            return True
    return False


def _candidates(placed: tuple[Rect, ...]) -> list[tuple[int, int]]:
    """Candidate positions: origin plus right/top corners of placements."""
    if not placed:
        return [(0, 0)]
    positions = []
    for x, y, w, h in placed:
        positions.append((x + w, y))
        positions.append((x, y + h))
    # Deterministic order, deduplicated.
    return sorted(set(positions))


def _bbox_area(placed: tuple[Rect, ...]) -> int:
    if not placed:
        return 0
    xmax = max(x + w for x, y, w, h in placed)
    ymax = max(y + h for x, y, w, h in placed)
    return xmax * ymax


def solve_sequential(cells: tuple, depth: int, placed: tuple[Rect, ...], best: list[int]) -> int:
    """Exhaustive B&B below a task; returns nodes visited.

    ``best`` is the shared mutable bound (list of one int).  The same
    routine, started from an empty placement with a local bound, is the
    verification reference.
    """
    nodes = 1
    if depth == len(cells):
        area = _bbox_area(placed)
        if area < best[0]:
            best[0] = area
        return nodes
    for w, h in cells[depth]:
        for x, y in _candidates(placed):
            rect = (x, y, w, h)
            if _overlaps(rect, placed):
                continue
            trial = placed + (rect,)
            if _bbox_area(trial) >= best[0]:
                continue
            nodes += solve_sequential(cells, depth + 1, trial, best)
    return nodes


def floorplan_optimum(cells: tuple) -> int:
    """Sequential optimal bounding-box area."""
    best = [1 << 30]
    solve_sequential(cells, 0, (), best)
    return best[0]


def _floorplan_task(
    ctx: Any,
    shared: dict,
    cells: tuple,
    depth: int,
    placed: tuple[Rect, ...],
    cutoff: int,
    task_limit: int | None,
):
    mutex = shared["mutex"]
    yield ctx.compute(NODE_NS, membytes=128)
    if depth == len(cells):
        area = _bbox_area(placed)
        yield ctx.lock(mutex)
        if area < shared["best"][0]:
            shared["best"][0] = area
        yield ctx.unlock(mutex)
        return 1
    limit_hit = task_limit is not None and shared["tasks"] >= task_limit
    if depth >= cutoff or limit_hit:
        nodes = solve_sequential(cells, depth, placed, shared["best"])
        yield ctx.compute(Work(cpu_ns=nodes * LEAF_NODE_NS, membytes=64))
        return nodes
    futures = []
    for w, h in cells[depth]:
        for x, y in _candidates(placed):
            rect = (x, y, w, h)
            if _overlaps(rect, placed):
                continue
            trial = placed + (rect,)
            if _bbox_area(trial) >= shared["best"][0]:  # atomic read, no lock
                continue
            shared["tasks"] += 1
            fut = yield ctx.async_(
                _floorplan_task, shared, cells, depth + 1, trial, cutoff, task_limit
            )
            futures.append(fut)
    if not futures:
        return 1
    counts = yield ctx.wait_all(futures)
    return 1 + sum(counts)


def _floorplan_root(ctx: Any, cells: tuple, cutoff: int, task_limit: int | None):
    shared = {"best": [1 << 30], "mutex": ctx.new_mutex(), "tasks": 0}
    fut = yield ctx.async_(_floorplan_task, shared, cells, 0, (), cutoff, task_limit)
    nodes = yield ctx.wait(fut)
    return shared["best"][0], nodes


class FloorplanBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="floorplan",
        structure="recursive-unbalanced",
        synchronization="atomic pruning",
        paper_task_duration_us=4.60,
        paper_granularity="very fine",
        paper_scaling_std="to 10",
        paper_scaling_hpx="to 10",
        description="Branch-and-bound rectangle placement",
    )

    default_params = {"cells": DEFAULT_CELLS, "cutoff": 5, "task_limit": None}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _floorplan_root, (
            tuple(params["cells"]),
            params["cutoff"],
            params["task_limit"],
        )

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        area, nodes = result
        return area == floorplan_optimum(tuple(params["cells"])) and nodes > 0
