"""Input presets for the Inncabs suite.

The original Inncabs ships several input sets per benchmark; the paper
used the original sets "with the exception of QAP, which exceeded
memory limits" (only its smallest input ran).  We mirror that idea with
three presets per benchmark:

- ``small``  — seconds-fast inputs for tests and demos;
- ``default``— the calibrated inputs behind every reproduced table and
  figure (empty dict: the benchmark's own defaults);
- ``large``  — ~4x the default task count for heavier runs;
- ``paper``  — the *unscaled* paper-scale inputs (up to ~10^7..10^8
  tasks), offered only where the mesoscale cohort engine can run them
  (``mode=cohort``); the exact engine would take hours on these.
"""

from __future__ import annotations

from typing import Any

from repro.inncabs.suite import available_benchmarks, get_benchmark

PRESETS: dict[str, dict[str, dict[str, Any]]] = {
    "alignment": {
        "small": {"nseq": 5, "seqlen": 60},
        "large": {"nseq": 32, "seqlen": 300},
    },
    "fft": {
        "small": {"n": 256, "cutoff": 4},
        "large": {"n": 1 << 14, "cutoff": 4},
    },
    "fib": {
        "small": {"n": 12},
        "large": {"n": 22},
        # True paper-scale input: 2*F(41)-1 = 3.3x10^8 tasks.  Run with
        # mode=cohort; the exact engine cannot replay this in reasonable
        # time (that scaling limit is why inputs were shrunk at all).
        "paper": {"n": 40},
    },
    "floorplan": {
        "small": {"cutoff": 3},
        "large": {"cutoff": 6},
    },
    "health": {
        "small": {"levels": 3, "branching": 3, "steps": 3},
        "large": {"levels": 7, "branching": 4, "steps": 12},
    },
    "intersim": {
        "small": {"rounds": 4, "tasks_per_round": 16, "interchanges": 6},
        "large": {"rounds": 80, "tasks_per_round": 320, "interchanges": 32},
    },
    "nqueens": {
        "small": {"n": 8, "cutoff": 2},
        "large": {"n": 13, "cutoff": 4},
    },
    "pyramids": {
        "small": {"width": 1024, "steps": 32, "chunk": 8, "block": 256},
        "large": {"width": 1 << 18, "steps": 192, "chunk": 16, "block": 1 << 12},
    },
    "qap": {
        "small": {"n": 6, "cutoff": 2},
        "large": {"n": 9, "cutoff": 4},
    },
    "round": {
        "small": {"players": 6, "rounds": 3},
        "large": {"players": 64, "rounds": 32},
    },
    "sort": {
        "small": {"n": 4096, "cutoff": 256},
        "large": {"n": 1 << 21, "cutoff": 1 << 12},
    },
    "sparselu": {
        "small": {"nb": 5, "bs": 16},
        "large": {"nb": 20, "bs": 96},
    },
    "strassen": {
        "small": {"n": 64, "cutoff": 16},
        "large": {"n": 512, "cutoff": 32},
    },
    "uts": {
        "small": {"b0": 10, "m": 3, "q": 0.3, "max_depth": 6},
        "large": {"b0": 120, "m": 4, "q": 0.31, "max_depth": 24},
        # ~2.5x10^7 expected nodes — the paper's UTS runs 1.7x10^7
        # tasks.  Cohort mode only (mean-value plan).
        "paper": {"b0": 120, "m": 4, "q": 0.33, "max_depth": 40},
    },
}

PRESET_NAMES = ("small", "default", "large", "paper")


def preset_params(benchmark: str, preset: str) -> dict[str, Any]:
    """Parameter overrides for *benchmark* under *preset*.

    ``default`` is always the empty override.  Raises ``KeyError`` for
    unknown benchmarks or presets.
    """
    if benchmark not in PRESETS:
        get_benchmark(benchmark)  # raises with the available list
        raise KeyError(f"no presets table for {benchmark!r}")  # pragma: no cover
    if preset == "default":
        return {}
    try:
        return dict(PRESETS[benchmark][preset])
    except KeyError:
        raise KeyError(
            f"unknown preset {preset!r} for {benchmark}; choose from {PRESET_NAMES}"
        ) from None


def validate_presets() -> None:
    """Every benchmark has small/large, and every listed preset (the
    ``paper`` tier is opt-in per benchmark) uses known parameter names."""
    for name in available_benchmarks():
        bench = get_benchmark(name)
        table = PRESETS.get(name, {})
        for required in ("small", "large"):
            if required not in table:
                raise AssertionError(f"{name} is missing the {required!r} preset")
        for preset in table:
            bench.params_with_defaults(preset_params(name, preset))
