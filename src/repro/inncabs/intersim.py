"""Intersim — co-dependent network-interchange simulation.

Co-dependent with *multiple mutexes per task* (Table V: 3.46 µs
average, very fine; paper input: 1.7x10^6 tasks).  A set of shared
interchange points, each guarded by a mutex, is hammered by rounds of
small tasks: every task locks two interchanges (in ascending order —
no deadlock), moves traffic between them, and unlocks.  The final
traffic counts are exactly predictable, so the result verifies on any
runtime and core count.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.inncabs.base import Benchmark, BenchmarkInfo

TASK_NS = 3_000  # traffic-update compute per task


def _endpoints(round_idx: int, task_idx: int, k: int) -> tuple[int, int]:
    """The two interchanges task (round, idx) couples (deterministic)."""
    a = (task_idx * 7 + round_idx) % k
    b = (task_idx * 13 + round_idx * 5 + 1) % k
    if a == b:
        b = (b + 1) % k
    return (a, b) if a < b else (b, a)


def _intersim_task(ctx: Any, shared: dict, round_idx: int, task_idx: int, k: int):
    a, b = _endpoints(round_idx, task_idx, k)
    mutexes = shared["mutexes"]
    counts = shared["counts"]
    yield ctx.lock(mutexes[a])
    yield ctx.lock(mutexes[b])
    yield ctx.compute(TASK_NS, membytes=256)
    counts[a] += 1
    counts[b] += 1
    yield ctx.unlock(mutexes[b])
    yield ctx.unlock(mutexes[a])
    return None


def _intersim_root(ctx: Any, rounds: int, tasks_per_round: int, interchanges: int):
    shared = {
        "mutexes": [ctx.new_mutex() for _ in range(interchanges)],
        "counts": [0] * interchanges,
    }
    for round_idx in range(rounds):
        futures = []
        for task_idx in range(tasks_per_round):
            fut = yield ctx.async_(_intersim_task, shared, round_idx, task_idx, interchanges)
            futures.append(fut)
        yield ctx.wait_all(futures)
    return shared["counts"]


def intersim_reference(rounds: int, tasks_per_round: int, interchanges: int) -> list[int]:
    counts = [0] * interchanges
    for round_idx in range(rounds):
        for task_idx in range(tasks_per_round):
            a, b = _endpoints(round_idx, task_idx, interchanges)
            counts[a] += 1
            counts[b] += 1
    return counts


class IntersimBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="intersim",
        structure="co-dependent",
        synchronization="mult. mutex/task",
        paper_task_duration_us=3.46,
        paper_granularity="very fine",
        paper_scaling_std="no scaling",
        paper_scaling_hpx="to 10",
        description="Mutex-coupled interchange simulation",
    )

    # 40 rounds x 160 tasks = 6,400 tasks over 24 interchanges.
    default_params = {"rounds": 40, "tasks_per_round": 160, "interchanges": 24}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _intersim_root, (
            params["rounds"],
            params["tasks_per_round"],
            params["interchanges"],
        )

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        return list(result) == intersim_reference(
            params["rounds"], params["tasks_per_round"], params["interchanges"]
        )
