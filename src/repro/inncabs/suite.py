"""Registry of the fourteen Inncabs benchmarks."""

from __future__ import annotations

from repro.inncabs.alignment import AlignmentBenchmark
from repro.inncabs.base import Benchmark
from repro.inncabs.fft import FftBenchmark
from repro.inncabs.fib import FibBenchmark
from repro.inncabs.floorplan import FloorplanBenchmark
from repro.inncabs.health import HealthBenchmark
from repro.inncabs.intersim import IntersimBenchmark
from repro.inncabs.nqueens import NQueensBenchmark
from repro.inncabs.pyramids import PyramidsBenchmark
from repro.inncabs.qap import QapBenchmark
from repro.inncabs.round import RoundBenchmark
from repro.inncabs.sort import SortBenchmark
from repro.inncabs.sparselu import SparseLuBenchmark
from repro.inncabs.strassen import StrassenBenchmark
from repro.inncabs.uts import UtsBenchmark

_BENCHMARKS: dict[str, Benchmark] = {
    bench.info.name: bench
    for bench in (
        AlignmentBenchmark(),
        FftBenchmark(),
        FibBenchmark(),
        FloorplanBenchmark(),
        HealthBenchmark(),
        IntersimBenchmark(),
        NQueensBenchmark(),
        PyramidsBenchmark(),
        QapBenchmark(),
        RoundBenchmark(),
        SortBenchmark(),
        SparseLuBenchmark(),
        StrassenBenchmark(),
        UtsBenchmark(),
    )
}


def available_benchmarks() -> list[str]:
    """Names of all fourteen benchmarks (alphabetical)."""
    return sorted(_BENCHMARKS)


def get_benchmark(name: str) -> Benchmark:
    """Look a benchmark up by name.

    Raises ``KeyError`` listing valid names on miss.
    """
    try:
        return _BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(available_benchmarks())}"
        ) from None
