"""QAP — quadratic assignment by branch-and-bound with atomic pruning.

Recursive unbalanced, very fine grain (Table V: 1.00 µs average).  The
paper could only run the smallest input (larger ones exceed memory);
accordingly the instance here is small (n=8 facilities/locations).
Facilities are assigned to locations depth-first; partial cost plus a
cheap lower bound prunes against a mutex-protected shared best.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.work import Work
from repro.simcore.rng import derive_rng

NODE_NS = 250
LEAF_NODE_NS = 32


def make_instance(n: int, seed: int) -> tuple[list[list[int]], list[list[int]]]:
    """Deterministic flow/distance matrices (symmetric, zero diagonal).

    Returned as plain nested lists: the branch-and-bound inner loop is
    scalar, and Python-list indexing is ~20x faster than numpy scalar
    indexing there.
    """
    rng = derive_rng(seed, "qap")
    flow = rng.integers(0, 10, size=(n, n))
    dist = rng.integers(1, 10, size=(n, n))
    flow = np.triu(flow, 1)
    flow = flow + flow.T
    dist = np.triu(dist, 1)
    dist = dist + dist.T
    return flow.tolist(), dist.tolist()


def _partial_cost_delta(
    flow: list, dist: list, perm: tuple[int, ...], facility: int, location: int
) -> int:
    """Cost added by assigning *facility* -> *location* given *perm*."""
    delta = 0
    for f, loc in enumerate(perm):
        delta += flow[f][facility] * dist[loc][location]
        delta += flow[facility][f] * dist[location][loc]
    return int(delta)


def solve_sequential(
    flow: list,
    dist: list,
    perm: tuple[int, ...],
    used: int,
    cost: int,
    best: list[int],
) -> int:
    """Sequential B&B below a node; returns nodes visited."""
    n = len(flow)
    depth = len(perm)
    nodes = 1
    if depth == n:
        if cost < best[0]:
            best[0] = cost
        return nodes
    for location in range(n):
        if used & (1 << location):
            continue
        delta = _partial_cost_delta(flow, dist, perm, depth, location)
        if cost + delta >= best[0]:
            continue
        nodes += solve_sequential(
            flow, dist, perm + (location,), used | (1 << location), cost + delta, best
        )
    return nodes


def qap_optimum(flow: list, dist: list) -> int:
    best = [1 << 60]
    solve_sequential(flow, dist, (), 0, 0, best)
    return best[0]


def _qap_task(
    ctx: Any,
    shared: dict,
    flow: list,
    dist: list,
    perm: tuple[int, ...],
    used: int,
    cost: int,
    cutoff: int,
):
    mutex = shared["mutex"]
    n = len(flow)
    depth = len(perm)
    yield ctx.compute(NODE_NS, membytes=96)
    if depth == n:
        yield ctx.lock(mutex)
        if cost < shared["best"][0]:
            shared["best"][0] = cost
        yield ctx.unlock(mutex)
        return 1
    if depth >= cutoff:
        nodes = solve_sequential(flow, dist, perm, used, cost, shared["best"])
        yield ctx.compute(Work(cpu_ns=nodes * LEAF_NODE_NS, membytes=64))
        return nodes
    futures = []
    for location in range(n):
        if used & (1 << location):
            continue
        delta = _partial_cost_delta(flow, dist, perm, depth, location)
        if cost + delta >= shared["best"][0]:  # atomic read
            continue
        fut = yield ctx.async_(
            _qap_task,
            shared,
            flow,
            dist,
            perm + (location,),
            used | (1 << location),
            cost + delta,
            cutoff,
        )
        futures.append(fut)
    if not futures:
        return 1
    counts = yield ctx.wait_all(futures)
    return 1 + sum(counts)


def _qap_root(ctx: Any, n: int, cutoff: int, seed: int):
    flow, dist = make_instance(n, seed)
    shared = {"best": [1 << 60], "mutex": ctx.new_mutex()}
    fut = yield ctx.async_(_qap_task, shared, flow, dist, (), 0, 0, cutoff)
    nodes = yield ctx.wait(fut)
    return shared["best"][0], nodes


class QapBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="qap",
        structure="recursive-unbalanced",
        synchronization="atomic pruning",
        paper_task_duration_us=1.00,
        paper_granularity="very fine",
        paper_scaling_std="to 6",
        paper_scaling_hpx="to 4",
        description="Quadratic assignment problem (branch and bound)",
    )

    default_params = {"n": 8, "cutoff": 4}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _qap_root, (params["n"], params["cutoff"], params["seed"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        cost, nodes = result
        flow, dist = make_instance(params["n"], params["seed"])
        return cost == qap_optimum(flow, dist) and nodes > 0
