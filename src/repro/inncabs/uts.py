"""UTS — Unbalanced Tree Search.

Recursive unbalanced, very fine grain (Table V: 1.37 µs average).  A
geometric random tree: the root has ``b0`` children; every other node
has ``m`` children with probability ``q`` (expected size
``b0 / (1 - q*m)`` for ``q*m < 1``).  Child counts derive
deterministically from the seed and the node's path id, so the tree —
and therefore the verified node count — is identical on every runtime
and core count.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.population import CohortPlan, TaskCohort
from repro.model.work import Work
from repro.simcore.rng import derive_seed

NODE_NS = 1_050  # per-node processing cost

_U64 = float(2**64)


def _num_children(seed: int, node_id: int, m: int, q: float, depth: int, max_depth: int) -> int:
    if depth >= max_depth:
        return 0
    draw = derive_seed(seed, "uts", node_id) / _U64
    return m if draw < q else 0


def _uts_task(
    ctx: Any, seed: int, node_id: int, depth: int, b0: int, m: int, q: float, max_depth: int
):
    yield ctx.compute(NODE_NS, membytes=128)
    if depth == 0:
        n_children = b0
    else:
        n_children = _num_children(seed, node_id, m, q, depth, max_depth)
    if n_children == 0:
        return 1
    futures = []
    for i in range(n_children):
        child_id = node_id * 61 + i + 1  # deterministic path id
        fut = yield ctx.async_(_uts_task, seed, child_id, depth + 1, b0, m, q, max_depth)
        futures.append(fut)
    counts = yield ctx.wait_all(futures)
    return 1 + sum(counts)


def uts_reference_count(seed: int, b0: int, m: int, q: float, max_depth: int) -> int:
    """Sequential tree size with the identical child-count derivation."""
    total = 0
    stack = [(0, 0)]  # (node_id, depth)
    while stack:
        node_id, depth = stack.pop()
        total += 1
        n_children = b0 if depth == 0 else _num_children(seed, node_id, m, q, depth, max_depth)
        for i in range(n_children):
            stack.append((node_id * 61 + i + 1, depth + 1))
    return total


class UtsBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="uts",
        structure="recursive-unbalanced",
        synchronization="none",
        paper_task_duration_us=1.37,
        paper_granularity="very fine",
        paper_scaling_std="fail",
        paper_scaling_hpx="to 10",
        description="Unbalanced tree search (geometric tree)",
    )

    default_params = {"b0": 40, "m": 4, "q": 0.31, "max_depth": 22}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _uts_task, (
            params["seed"],
            0,
            0,
            params["b0"],
            params["m"],
            params["q"],
            params["max_depth"],
        )

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        return result == uts_reference_count(
            params["seed"], params["b0"], params["m"], params["q"], params["max_depth"]
        )

    @staticmethod
    def expected_nodes(b0: int, m: int, q: float, max_depth: int) -> float:
        """Expected tree size of the geometric branching process.

        Level populations: ``E_1 = b0`` and ``E_{d+1} = E_d * q * m``
        up to the depth cap.  Finite even for supercritical growth
        (``q*m >= 1``) because the cap truncates the process.
        """
        total = 1.0  # the root
        level = float(b0)
        for _ in range(max_depth):
            total += level
            level *= q * m
        return total

    def cohort_plan(self, params: Mapping[str, Any]) -> CohortPlan:
        """Mean-value plan over the *expected* tree (``exact=False``).

        Unlike fib, the concrete tree depends on the seed; walking it
        to build an exact plan would cost as much as running it.  The
        cohort sizes are expectations of the branching process instead,
        so the plan's result and counter totals are population means —
        verification is skipped and equivalence holds in expectation.
        """
        b0 = int(params["b0"])
        m = int(params["m"])
        q = float(params["q"])
        max_depth = int(params["max_depth"])
        expected = self.expected_nodes(b0, m, q, max_depth)
        non_root = max(1, round(expected - 1.0))
        # Children of non-root nodes are every node at depth >= 2; the
        # internal (spawning) non-root nodes each have exactly m.
        child_total = max(0.0, expected - 1.0 - b0)
        spawns = child_total / non_root
        internal_frac = (child_total / m) / non_root if m > 0 else 0.0
        node_work = Work(NODE_NS, membytes=128)
        cohorts = (
            TaskCohort(
                label="uts-root",
                tasks=1,
                work=node_work,
                spawns=float(b0),
                blocking_awaits=1.0,
                # The whole tree is live while the root waits: eager
                # backends commit the calibrated live fraction here.
                live_tasks=max(1, round(0.7 * expected)),
            ),
            TaskCohort(
                label="uts-nodes",
                tasks=non_root,
                work=node_work,
                spawns=spawns,
                blocking_awaits=internal_frac,
                depth=max(1, max_depth),
                live_tasks=1,
            ),
        )
        return CohortPlan(
            workload="uts",
            cohorts=cohorts,
            result=round(expected),
            exact=False,
            note=(
                "mean-value plan over the expected geometric tree; "
                f"E[nodes] = {expected:.1f}"
            ),
        )
