"""Pyramids — space-time blocked 1-D stencil relaxation.

Recursive balanced, moderate grain (Table V: 246 µs average).  The
domain is advanced in time chunks; within a chunk the space dimension
is divided recursively down to leaf blocks, and each leaf task advances
its block ``K`` steps locally using a halo of width ``K`` (the classic
trapezoid/pyramid decomposition).  The arithmetic is real: the final
grid equals the sequential relaxation exactly.

Pyramids is the one benchmark where the paper's Standard version beats
HPX below ~14 cores (Fig. 2).  The mechanism we model: the stencil is
memory-bound and its wavefront access pattern loses temporal locality
under HPX's depth-first (LIFO) execution order, while the kernel's
breadth-first global queue happens to execute spatially adjacent blocks
back to back.  The benchmark therefore carries an
``hpx_locality_factor`` > 1 that the HPX runtime applies to its memory
traffic; at high core counts the shared-L3 pressure and bandwidth
saturation equalise both runtimes, reproducing the crossover.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.work import Work
from repro.simcore.rng import derive_rng

CELL_NS = 6.6  # per cell-update compute cost
BYTES_PER_CELL = 8


def stencil_step(grid: np.ndarray) -> np.ndarray:
    """One global relaxation step with clamped boundaries."""
    padded = np.concatenate((grid[:1], grid, grid[-1:]))
    return 0.25 * padded[:-2] + 0.5 * padded[1:-1] + 0.25 * padded[2:]


def advance_window(window: np.ndarray, k: int, clamp_left: bool, clamp_right: bool) -> np.ndarray:
    """Advance a local window *k* steps.

    Clamped sides sit on the physical domain boundary and keep their
    width; open sides shrink by one cell per step (the halo is consumed).
    """
    for _ in range(k):
        interior = 0.25 * window[:-2] + 0.5 * window[1:-1] + 0.25 * window[2:]
        parts = []
        if clamp_left:
            parts.append(np.array([0.75 * window[0] + 0.25 * window[1]]))
        parts.append(interior)
        if clamp_right:
            parts.append(np.array([0.25 * window[-2] + 0.75 * window[-1]]))
        window = np.concatenate(parts)
    return window


def _leaf_task(ctx: Any, cur: np.ndarray, nxt: np.ndarray, lo: int, hi: int, k: int):
    n = len(cur)
    wl = max(0, lo - k)
    wr = min(n, hi + k)
    clamp_left = lo - k < 0
    clamp_right = hi + k > n
    cells = k * (wr - wl)
    yield ctx.compute(
        Work(
            cpu_ns=round(cells * CELL_NS),
            membytes=2 * (wr - wl) * BYTES_PER_CELL * max(1, k // 8),
            working_set=2 * (wr - wl) * BYTES_PER_CELL,
        )
    )
    window = advance_window(cur[wl:wr].copy(), k, clamp_left, clamp_right)
    # After k steps the window covers [0 if clamp_left else lo, ...) in
    # global coordinates; locate our block inside it.
    start = lo if clamp_left else 0
    nxt[lo:hi] = window[start : start + (hi - lo)]
    return None


def _split_task(ctx: Any, cur: np.ndarray, nxt: np.ndarray, lo: int, hi: int, k: int, block: int):
    if hi - lo <= block:
        yield from _leaf_task(ctx, cur, nxt, lo, hi, k)
        return None
    mid = (lo + hi) // 2
    f1 = yield ctx.async_(_split_task, cur, nxt, lo, mid, k, block)
    f2 = yield ctx.async_(_split_task, cur, nxt, mid, hi, k, block)
    yield ctx.wait_all([f1, f2])
    return None


def _pyramids_root(ctx: Any, width: int, steps: int, chunk: int, block: int, seed: int):
    rng = derive_rng(seed, "pyramids")
    cur = rng.standard_normal(width)
    initial = cur.copy()
    nxt = np.empty_like(cur)
    done = 0
    while done < steps:
        k = min(chunk, steps - done)
        fut = yield ctx.async_(_split_task, cur, nxt, 0, width, k, block)
        yield ctx.wait(fut)
        cur, nxt = nxt, cur
        done += k
    return initial, cur


def pyramids_reference(initial: np.ndarray, steps: int) -> np.ndarray:
    """Sequential relaxation for verification."""
    grid = initial.copy()
    for _ in range(steps):
        grid = stencil_step(grid)
    return grid


class PyramidsBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="pyramids",
        structure="recursive-balanced",
        synchronization="none",
        paper_task_duration_us=246.0,
        paper_granularity="moderate",
        paper_scaling_std="to 20",
        paper_scaling_hpx="to 20",
        description="Space-time blocked 1-D stencil relaxation",
        hpx_locality_factor=1.45,
    )

    # 64ki cells, 96 steps in chunks of 16: 6 chunks x (127 tasks) ~ 760 tasks;
    # leaf tasks update 16*(4096+32) ~ 66k cells -> ~215 us + memory time.
    default_params = {"width": 1 << 16, "steps": 96, "chunk": 16, "block": 1 << 12}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _pyramids_root, (
            params["width"],
            params["steps"],
            params["chunk"],
            params["block"],
            params["seed"],
        )

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        initial, final = result
        reference = pyramids_reference(initial, params["steps"])
        return bool(np.allclose(final, reference, atol=1e-10))
