"""Strassen — recursive Strassen matrix multiplication.

Recursive balanced, fine grain (Table V: 107 µs average).  Multiplies
real ``numpy`` matrices: below the cutoff a task performs the classic
product; above it, the seven Strassen sub-products are spawned as
tasks and combined with real additions.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.work import Work
from repro.simcore.rng import derive_rng

# Cost model (per element counts; n is the block edge).
MUL_NS_PER_FLOP = 1.6  # leaf product: 2*n^3 flops
ADD_NS_PER_ELEM = 2.2  # combine additions per element
BYTES_PER_ELEM = 8


def _leaf_work(n: int) -> Work:
    flops = 2 * n * n * n
    return Work(
        cpu_ns=round(flops * MUL_NS_PER_FLOP),
        membytes=3 * n * n * BYTES_PER_ELEM,
        working_set=3 * n * n * BYTES_PER_ELEM,
    )


def _combine_work(n: int) -> Work:
    # 18 block additions of (n/2)^2 elements in the classic formulation.
    elems = 18 * (n // 2) * (n // 2)
    return Work(
        cpu_ns=round(elems * ADD_NS_PER_ELEM),
        membytes=elems * BYTES_PER_ELEM,
        working_set=3 * n * n * BYTES_PER_ELEM,
    )


def _strassen_task(ctx: Any, a: np.ndarray, b: np.ndarray, cutoff: int):
    n = a.shape[0]
    if n <= cutoff:
        yield ctx.compute(_leaf_work(n))
        return a @ b
    h = n // 2
    a11, a12, a21, a22 = a[:h, :h], a[:h, h:], a[h:, :h], a[h:, h:]
    b11, b12, b21, b22 = b[:h, :h], b[:h, h:], b[h:, :h], b[h:, h:]
    futures = []
    for left, right in (
        (a11 + a22, b11 + b22),  # M1
        (a21 + a22, b11),  # M2
        (a11, b12 - b22),  # M3
        (a22, b21 - b11),  # M4
        (a11 + a12, b22),  # M5
        (a21 - a11, b11 + b12),  # M6
        (a12 - a22, b21 + b22),  # M7
    ):
        fut = yield ctx.async_(_strassen_task, left, right, cutoff)
        futures.append(fut)
    m1, m2, m3, m4, m5, m6, m7 = (yield ctx.wait_all(futures))
    yield ctx.compute(_combine_work(n))
    c = np.empty((n, n), dtype=a.dtype)
    c[:h, :h] = m1 + m4 - m5 + m7
    c[:h, h:] = m3 + m5
    c[h:, :h] = m2 + m4
    c[h:, h:] = m1 - m2 + m3 + m6
    return c


def _strassen_root(ctx: Any, n: int, cutoff: int, seed: int):
    rng = derive_rng(seed, "strassen")
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    fut = yield ctx.async_(_strassen_task, a, b, cutoff)
    c = yield ctx.wait(fut)
    return a, b, c


class StrassenBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="strassen",
        structure="recursive-balanced",
        synchronization="none",
        paper_task_duration_us=107.0,
        paper_granularity="fine",
        paper_scaling_std="(some fail)",
        paper_scaling_hpx="to 8",
        description="Strassen matrix multiplication",
    )

    # 256x256 with 32 cutoff: 7^3 = 343 leaves, 400 tasks total.
    default_params = {"n": 256, "cutoff": 32}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _strassen_root, (params["n"], params["cutoff"], params["seed"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        a, b, c = result
        return bool(np.allclose(c, a @ b, atol=1e-6 * params["n"]))
