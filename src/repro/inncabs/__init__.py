"""The fourteen Inncabs benchmarks on the runtime-agnostic task API."""
