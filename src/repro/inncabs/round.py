"""Round — coarse-grained mutex ring.

Co-dependent with *two mutexes per task*, coarse grain (Table V:
9,671 µs average, 512 tasks — the coarsest benchmark of the suite).
Players sit in a ring, one mutex per seat; a task for player ``p`` in
round ``r`` locks seat ``p`` and its right neighbour (lowest-index
first to avoid deadlock), performs a long computation, exchanges
scores, and unlocks.  Rounds are joined barrier-style.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.work import Work

TASK_NS = 9_500_000  # ~9.5 ms of compute per task
TASK_MEMBYTES = 220_000


def _round_task(ctx: Any, shared: dict, round_idx: int, player: int, players: int):
    right = (player + 1) % players
    first, second = min(player, right), max(player, right)
    mutexes = shared["mutexes"]
    scores = shared["scores"]
    yield ctx.lock(mutexes[first])
    yield ctx.lock(mutexes[second])
    yield ctx.compute(Work(cpu_ns=TASK_NS, membytes=TASK_MEMBYTES))
    scores[player] += 2
    scores[right] += 1
    yield ctx.unlock(mutexes[second])
    yield ctx.unlock(mutexes[first])
    return None


def _round_root(ctx: Any, players: int, rounds: int):
    shared = {
        "mutexes": [ctx.new_mutex() for _ in range(players)],
        "scores": [0] * players,
    }
    for round_idx in range(rounds):
        futures = []
        for player in range(players):
            fut = yield ctx.async_(_round_task, shared, round_idx, player, players)
            futures.append(fut)
        yield ctx.wait_all(futures)
    return shared["scores"]


def round_reference(players: int, rounds: int) -> list[int]:
    scores = [0] * players
    for _ in range(rounds):
        for player in range(players):
            scores[player] += 2
            scores[(player + 1) % players] += 1
    return scores


class RoundBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="round",
        structure="co-dependent",
        synchronization="2 mutex/task",
        paper_task_duration_us=9671.0,
        paper_granularity="coarse",
        paper_scaling_std="to 20",
        paper_scaling_hpx="to 20",
        description="Coarse-grained mutex ring exchange",
    )

    # 32 players x 16 rounds = 512 tasks, exactly the paper's count.
    default_params = {"players": 32, "rounds": 16}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _round_root, (params["players"], params["rounds"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        return list(result) == round_reference(params["players"], params["rounds"])
