"""NQueens — count all placements of N queens.

Recursive unbalanced, fine grain (Table V: 28.1 µs average).  Spawns a
task per valid placement down to a depth cutoff; below it each task
counts its subtree sequentially with the classic bitmask search, and
its cost is proportional to the *real* number of nodes it visited.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.population import CohortPlan, TaskCohort
from repro.model.work import Work

KNOWN_SOLUTIONS = {4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724, 11: 2680, 12: 14200}

NODE_NS = 160.0  # sequential search cost per visited node
SPAWN_NODE_NS = 900  # work done in a spawning (upper-level) task


def _count_sequential(n: int, cols: int, diag1: int, diag2: int) -> tuple[int, int]:
    """(solutions, nodes visited) below this position — bitmask search."""
    if cols == (1 << n) - 1:
        return 1, 1
    solutions = 0
    nodes = 1
    free = ~(cols | diag1 | diag2) & ((1 << n) - 1)
    while free:
        bit = free & -free
        free ^= bit
        s, k = _count_sequential(
            n, cols | bit, ((diag1 | bit) << 1) & ((1 << n) - 1), (diag2 | bit) >> 1
        )
        solutions += s
        nodes += k
    return solutions, nodes


def _nqueens_task(ctx: Any, n: int, depth: int, cols: int, diag1: int, diag2: int, cutoff: int):
    if depth >= cutoff:
        solutions, nodes = _count_sequential(n, cols, diag1, diag2)
        yield ctx.compute(Work(cpu_ns=round(nodes * NODE_NS), membytes=0))
        return solutions
    yield ctx.compute(SPAWN_NODE_NS)
    mask = (1 << n) - 1
    free = ~(cols | diag1 | diag2) & mask
    futures = []
    while free:
        bit = free & -free
        free ^= bit
        fut = yield ctx.async_(
            _nqueens_task,
            n,
            depth + 1,
            cols | bit,
            ((diag1 | bit) << 1) & mask,
            (diag2 | bit) >> 1,
            cutoff,
        )
        futures.append(fut)
    if not futures:
        return 1 if cols == mask else 0
    counts = yield ctx.wait_all(futures)
    return sum(counts)


def _nqueens_root(ctx: Any, n: int, cutoff: int):
    fut = yield ctx.async_(_nqueens_task, n, 0, 0, 0, 0, cutoff)
    return (yield ctx.wait(fut))


class NQueensBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="nqueens",
        structure="recursive-unbalanced",
        synchronization="none",
        paper_task_duration_us=28.1,
        paper_granularity="fine",
        paper_scaling_std="fail",
        paper_scaling_hpx="to 20",
        description="Count all N-queens placements",
    )

    # n=12, spawn to depth 4: ~5,500 tasks, sequential subtrees below;
    # the spawned frontier exceeds the scaled thread budget under
    # std::async (paper: nqueens fails).
    default_params = {"n": 12, "cutoff": 4}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _nqueens_root, (params["n"], params["cutoff"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        expected = KNOWN_SOLUTIONS.get(params["n"])
        if expected is None:
            return isinstance(result, int) and result >= 0
        return result == expected

    def cohort_plan(self, params: Mapping[str, Any]) -> CohortPlan | None:
        """Two cohorts: the spawning upper tree, then the search leaves.

        The spawn tree is walked host-side to the cutoff (it is tiny —
        the exponential part lives below the cutoff, inside the leaves'
        sequential searches), so cohort population sizes match the
        exact engine's task counts bit-for-bit.  The tree is
        *unbalanced*: leaf costs vary with the real number of nodes
        each subtree search visits, and the cohort carries their mean —
        structural counters stay exact, time-like totals land within
        the documented mesoscale bounds.  ``n`` outside the known
        solution table has no plan (the plan's result must be exact).
        """
        n = int(params["n"])
        cutoff = int(params["cutoff"])
        if n not in KNOWN_SOLUTIONS:
            return None
        stats = _walk_spawn_tree(n, cutoff)
        # The root wrapper task spawns the depth-0 search task and
        # blocks on it; it rides in the spawner cohort (rates are
        # means, so the one computeless member just dilutes them).
        spawners = stats.internal + 1
        cohorts = [
            TaskCohort(
                label="nqueens-spawners",
                tasks=spawners,
                work=Work(round(stats.internal * SPAWN_NODE_NS / spawners)),
                spawns=(stats.children + 1) / spawners,
                # Depth-first joins: a task's first unfinished child
                # blocks it, the remaining wait_all members are ready.
                blocking_awaits=(stats.spawning + 1) / spawners,
                ready_awaits=(stats.children - stats.spawning) / spawners,
                depth=cutoff + 1,
                # Live figure for the whole descent (upper tree plus
                # the leaf frontier): eager backends commit it here.
                live_tasks=spawners + stats.leaves,
            )
        ]
        if stats.leaves:
            cohorts.append(
                TaskCohort(
                    label="nqueens-leaves",
                    tasks=stats.leaves,
                    work=Work(round(stats.leaf_ns / stats.leaves)),
                    depth=1,
                    # Leaves are admitted lazily as parents reach them;
                    # their live population is booked above.
                    live_tasks=1,
                )
            )
        return CohortPlan(
            workload="nqueens", cohorts=tuple(cohorts), result=KNOWN_SOLUTIONS[n]
        )


class _SpawnTreeStats:
    """Aggregates of the upper (spawning) nqueens tree, to the cutoff."""

    __slots__ = ("internal", "spawning", "children", "leaves", "leaf_ns")

    def __init__(self) -> None:
        self.internal = 0  # tasks above the cutoff (compute SPAWN_NODE_NS)
        self.spawning = 0  # internal tasks with at least one child
        self.children = 0  # spawn edges out of internal tasks
        self.leaves = 0  # cutoff tasks running the sequential search
        self.leaf_ns = 0  # summed per-leaf work, rounded like the exact path


def _walk_spawn_tree(n: int, cutoff: int) -> _SpawnTreeStats:
    """Enumerate the task tree exactly as ``_nqueens_task`` spawns it."""
    mask = (1 << n) - 1
    stats = _SpawnTreeStats()

    def walk(depth: int, cols: int, diag1: int, diag2: int) -> None:
        if depth >= cutoff:
            _solutions, nodes = _count_sequential(n, cols, diag1, diag2)
            stats.leaves += 1
            stats.leaf_ns += round(nodes * NODE_NS)
            return
        stats.internal += 1
        free = ~(cols | diag1 | diag2) & mask
        children = 0
        while free:
            bit = free & -free
            free ^= bit
            children += 1
            walk(depth + 1, cols | bit, ((diag1 | bit) << 1) & mask, (diag2 | bit) >> 1)
        if children:
            stats.spawning += 1
            stats.children += children

    walk(0, 0, 0, 0)
    return stats
