"""NQueens — count all placements of N queens.

Recursive unbalanced, fine grain (Table V: 28.1 µs average).  Spawns a
task per valid placement down to a depth cutoff; below it each task
counts its subtree sequentially with the classic bitmask search, and
its cost is proportional to the *real* number of nodes it visited.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.work import Work

KNOWN_SOLUTIONS = {4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724, 11: 2680, 12: 14200}

NODE_NS = 160.0  # sequential search cost per visited node
SPAWN_NODE_NS = 900  # work done in a spawning (upper-level) task


def _count_sequential(n: int, cols: int, diag1: int, diag2: int) -> tuple[int, int]:
    """(solutions, nodes visited) below this position — bitmask search."""
    if cols == (1 << n) - 1:
        return 1, 1
    solutions = 0
    nodes = 1
    free = ~(cols | diag1 | diag2) & ((1 << n) - 1)
    while free:
        bit = free & -free
        free ^= bit
        s, k = _count_sequential(
            n, cols | bit, ((diag1 | bit) << 1) & ((1 << n) - 1), (diag2 | bit) >> 1
        )
        solutions += s
        nodes += k
    return solutions, nodes


def _nqueens_task(ctx: Any, n: int, depth: int, cols: int, diag1: int, diag2: int, cutoff: int):
    if depth >= cutoff:
        solutions, nodes = _count_sequential(n, cols, diag1, diag2)
        yield ctx.compute(Work(cpu_ns=round(nodes * NODE_NS), membytes=0))
        return solutions
    yield ctx.compute(SPAWN_NODE_NS)
    mask = (1 << n) - 1
    free = ~(cols | diag1 | diag2) & mask
    futures = []
    while free:
        bit = free & -free
        free ^= bit
        fut = yield ctx.async_(
            _nqueens_task,
            n,
            depth + 1,
            cols | bit,
            ((diag1 | bit) << 1) & mask,
            (diag2 | bit) >> 1,
            cutoff,
        )
        futures.append(fut)
    if not futures:
        return 1 if cols == mask else 0
    counts = yield ctx.wait_all(futures)
    return sum(counts)


def _nqueens_root(ctx: Any, n: int, cutoff: int):
    fut = yield ctx.async_(_nqueens_task, n, 0, 0, 0, 0, cutoff)
    return (yield ctx.wait(fut))


class NQueensBenchmark(Benchmark):
    info = BenchmarkInfo(
        name="nqueens",
        structure="recursive-unbalanced",
        synchronization="none",
        paper_task_duration_us=28.1,
        paper_granularity="fine",
        paper_scaling_std="fail",
        paper_scaling_hpx="to 20",
        description="Count all N-queens placements",
    )

    # n=12, spawn to depth 4: ~5,500 tasks, sequential subtrees below;
    # the spawned frontier exceeds the scaled thread budget under
    # std::async (paper: nqueens fails).
    default_params = {"n": 12, "cutoff": 4}

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _nqueens_root, (params["n"], params["cutoff"])

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        expected = KNOWN_SOLUTIONS.get(params["n"])
        if expected is None:
            return isinstance(result, int) and result >= 0
        return result == expected
