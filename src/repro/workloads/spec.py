"""Frozen workload specification: one workload plus parameter overrides.

A :class:`WorkloadSpec` is the single currency for "what to run"
throughout the stack.  It has a canonical string spelling —

    fib
    taskbench:shape=stencil_1d,width=64,steps=32

— that round-trips through :meth:`WorkloadSpec.parse`, sorts its
parameters, and coerces values ``int`` → ``float`` → ``str`` exactly
like the CLI's ``--param`` option, so two spellings of the same
workload always compare (and hash, and cache) equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["WorkloadSpec", "as_workload_spec"]


def _coerce(value: str) -> Any:
    """``"8"`` -> 8, ``"0.5"`` -> 0.5, anything else stays a string."""
    try:
        return int(value)
    except ValueError:
        try:
            return float(value)
        except ValueError:
            return value


def _format_value(value: Any) -> str:
    """Canonical text for one parameter value (must survive re-parsing)."""
    if isinstance(value, bool):
        raise ValueError(f"workload parameters cannot be booleans: {value!r}")
    if isinstance(value, (int, float)):
        text = repr(value)
    elif isinstance(value, str):
        text = value
    else:
        raise ValueError(f"workload parameter values must be int/float/str, got {value!r}")
    if any(sep in text for sep in (",", "=", ":")) or text != str(_coerce(text)):
        raise ValueError(f"parameter value {value!r} has no canonical spelling")
    return text


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload by name, plus parameter overrides.

    ``params`` holds only the *overrides* — defaults are resolved by
    :meth:`validate` against the registered workload, so a spec stays
    stable across default recalibrations (and so cache keys only see
    what the caller pinned).
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"workload name must be a non-empty string, got {self.name!r}")
        if any(sep in self.name for sep in (",", "=", ":")):
            raise ValueError(f"workload name {self.name!r} contains reserved characters")
        object.__setattr__(self, "params", dict(self.params))

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "WorkloadSpec":
        """Parse the canonical spelling ``name[:key=val,...]``."""
        if not isinstance(text, str) or not text:
            raise ValueError(f"workload spec must be a non-empty string, got {text!r}")
        name, _, rest = text.partition(":")
        params: dict[str, Any] = {}
        if rest:
            for pair in rest.split(","):
                key, eq, value = pair.partition("=")
                if not eq or not key:
                    raise ValueError(f"workload spec {text!r}: expected key=value, got {pair!r}")
                params[key] = _coerce(value)
        return cls(name=name, params=params)

    # -- canonical form ----------------------------------------------------

    def canonical(self) -> str:
        """The canonical string spelling (sorted parameters)."""
        if not self.params:
            return self.name
        pairs = ",".join(f"{k}={_format_value(self.params[k])}" for k in sorted(self.params))
        return f"{self.name}:{pairs}"

    def __str__(self) -> str:
        return self.canonical()

    def _key(self) -> tuple:
        # repr keeps 2 and 2.0 distinct (dict equality would not), so
        # the eq/hash contract matches the canonical spelling.
        return (self.name, tuple(sorted((k, repr(v)) for k, v in self.params.items())))

    def __hash__(self) -> int:
        return hash(self._key())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, WorkloadSpec):
            return self._key() == other._key()
        return NotImplemented

    # -- resolution --------------------------------------------------------

    def validate(self, extra: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Resolve against the registered workload's defaults.

        Returns the fully-merged parameter dict (seed included); raises
        ``KeyError`` for an unknown workload and ``ValueError`` for
        unknown parameter names.  *extra* is overlaid on the spec's own
        params (the ``Session.run(params=...)`` escape hatch).
        """
        from repro.workloads.registry import get_workload

        merged = dict(self.params)
        if extra:
            merged.update(extra)
        return get_workload(self.name).benchmark.params_with_defaults(merged)

    def build(
        self, extra: Mapping[str, Any] | None = None
    ) -> tuple[Callable[..., Any], tuple, dict[str, Any]]:
        """Validate, then lower to ``(root_fn, args, resolved_params)``.

        ``root_fn(ctx, *args)`` is the application's main task on
        either runtime backend.
        """
        from repro.workloads.registry import get_workload

        resolved = self.validate(extra)
        root_fn, args = get_workload(self.name).benchmark.make_root(resolved)
        return root_fn, args, resolved

    # -- serialization -----------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        """JSON form: ``{"name": ..., "params": {...}}``."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Inverse of :meth:`to_json_dict`."""
        return cls(name=data["name"], params=dict(data.get("params", {})))


def as_workload_spec(workload: WorkloadSpec) -> WorkloadSpec:
    """Assert *workload* is a :class:`WorkloadSpec` and return it.

    The legacy bare-name string form was removed after a deprecation
    cycle; callers parse strings explicitly with
    :meth:`WorkloadSpec.parse` now.
    """
    if isinstance(workload, WorkloadSpec):
        return workload
    raise TypeError(
        f"expected a WorkloadSpec, got {type(workload).__name__}; "
        "parse string spellings with WorkloadSpec.parse(...)"
    )
