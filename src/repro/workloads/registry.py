"""The workload registry: every runnable workload, by name.

Both workload families register here — the fourteen Inncabs
applications (with their small/default/large presets) and the Task
Bench dependency-graph generator — so discovery, validation, preset
resolution and error messages are uniform across ``Session``,
campaigns, the serve layer and the CLI.

``repro.inncabs.suite.available_benchmarks`` deliberately stays
Inncabs-only (the paper's Table V surface); this registry is the
superset layered on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.inncabs.base import Benchmark

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.counters.providers import CounterProvider

__all__ = [
    "WorkloadEntry",
    "available_workloads",
    "get_workload",
    "register_workload",
    "workload_preset_params",
]


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload: a benchmark plus its preset table."""

    name: str
    family: str  # "inncabs" | "taskbench" | third-party
    benchmark: Benchmark
    #: Preset name -> parameter overrides ("default" is implicit and empty).
    presets: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    description: str = ""
    #: Counter providers installed into the registry of any session
    #: running this workload (the app-counter hook; see
    #: :mod:`repro.counters.providers`).
    counter_providers: tuple["CounterProvider", ...] = ()


_WORKLOADS: dict[str, WorkloadEntry] = {}
_LOADED = False


def register_workload(entry: WorkloadEntry) -> None:
    """Add *entry* to the registry; duplicate names are an error."""
    if entry.name in _WORKLOADS:
        raise ValueError(f"workload {entry.name!r} already registered")
    _WORKLOADS[entry.name] = entry


def _ensure_loaded() -> None:
    """Populate the registry on first use (import cycles forbid eager)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from repro.fmm.workload import FMM_COUNTER_PROVIDER, FMM_PRESETS, FmmBenchmark
    from repro.inncabs.presets import PRESETS
    from repro.inncabs.suite import available_benchmarks, get_benchmark
    from repro.taskbench.workload import TASKBENCH_PRESETS, TaskBenchBenchmark

    for name in available_benchmarks():
        bench = get_benchmark(name)
        register_workload(
            WorkloadEntry(
                name=name,
                family="inncabs",
                benchmark=bench,
                presets=PRESETS.get(name, {}),
                description=bench.info.description,
            )
        )
    taskbench = TaskBenchBenchmark()
    register_workload(
        WorkloadEntry(
            name=taskbench.info.name,
            family="taskbench",
            benchmark=taskbench,
            presets=TASKBENCH_PRESETS,
            description=taskbench.info.description,
        )
    )
    fmm = FmmBenchmark()
    register_workload(
        WorkloadEntry(
            name=fmm.info.name,
            family="miniapp",
            benchmark=fmm,
            presets=FMM_PRESETS,
            description=fmm.info.description,
            counter_providers=(FMM_COUNTER_PROVIDER,),
        )
    )


def available_workloads() -> list[str]:
    """Names of every registered workload (alphabetical)."""
    _ensure_loaded()
    return sorted(_WORKLOADS)


def get_workload(name: str) -> WorkloadEntry:
    """Look a workload up by name; ``KeyError`` lists valid names on miss."""
    _ensure_loaded()
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        ) from None


def workload_preset_params(name: str, preset: str) -> dict[str, Any]:
    """Parameter overrides for *name* under *preset*.

    ``default`` is always the empty override; raises ``KeyError`` for
    unknown workloads or presets (listing the valid choices).
    """
    entry = get_workload(name)
    if preset == "default":
        return {}
    try:
        return dict(entry.presets[preset])
    except KeyError:
        known = ", ".join(["default", *sorted(entry.presets)])
        raise KeyError(f"unknown preset {preset!r} for {name}; choose from: {known}") from None
