"""Unified workload discovery and parametrization.

One API for every workload family the reproduction can run: the
fourteen Inncabs applications and the parameterized Task Bench
dependency-graph generator both register into the same registry, and a
frozen :class:`WorkloadSpec` names one workload plus its parameter
overrides.  ``Session.run``, campaign cells, the serve layer and the
CLI all accept a :class:`WorkloadSpec` (or its canonical string
spelling ``name[:key=val,...]``) instead of bare benchmark-name
strings.
"""

from repro.workloads.registry import (
    WorkloadEntry,
    available_workloads,
    get_workload,
    register_workload,
    workload_preset_params,
)
from repro.workloads.spec import WorkloadSpec, as_workload_spec

__all__ = [
    "WorkloadEntry",
    "WorkloadSpec",
    "as_workload_spec",
    "available_workloads",
    "get_workload",
    "register_workload",
    "workload_preset_params",
]
