"""gprof-style flat-profile aggregation — compatibility shim.

The aggregation moved to :mod:`repro.profiler.report` (the streaming
:class:`~repro.profiler.builder.ProfileBuilder` and this post-mortem
path now share one busy-interval accumulator, and events are replayed
in the stable ``(time_ns, tid, kind-rank)`` total order).  This module
re-exports the public names so existing imports keep working.
"""

from __future__ import annotations

from repro.profiler.report import FunctionProfile, build_profile, render_profile

__all__ = ["FunctionProfile", "build_profile", "render_profile"]
