"""gprof-style aggregation over a task trace.

Reconstructs per-task busy intervals (activate -> suspend/terminate)
and aggregates them by task body, producing the flat profile a
post-mortem tool would print after the run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.recorder import TaskEvent, TraceRecorder


@dataclass
class FunctionProfile:
    """Aggregate for one task body (the post-mortem 'function' row)."""

    name: str
    tasks: int = 0
    activations: int = 0
    busy_ns: int = 0

    @property
    def mean_task_ns(self) -> float:
        return self.busy_ns / self.tasks if self.tasks else 0.0


def build_profile(trace: TraceRecorder | list[TaskEvent]) -> dict[str, FunctionProfile]:
    """Flat profile: {task body name: aggregate}.

    Busy time is the sum of activate->(suspend|terminate) intervals —
    the same quantity the ``/threads/time/*`` counters measure live,
    but reconstructed after the fact from the event stream.
    """
    events = trace.events if isinstance(trace, TraceRecorder) else trace
    profiles: dict[str, FunctionProfile] = {}
    active_since: dict[int, int] = {}
    seen_tasks: dict[str, set[int]] = {}

    for event in sorted(events, key=lambda e: (e.time_ns, e.tid)):
        profile = profiles.setdefault(event.description, FunctionProfile(event.description))
        seen = seen_tasks.setdefault(event.description, set())
        if event.kind == "activate":
            active_since[event.tid] = event.time_ns
            profile.activations += 1
            if event.tid not in seen:
                seen.add(event.tid)
                profile.tasks += 1
        elif event.kind in ("suspend", "terminate"):
            start = active_since.pop(event.tid, None)
            if start is not None:
                profile.busy_ns += event.time_ns - start
    return profiles


def render_profile(profiles: dict[str, FunctionProfile]) -> str:
    """Flat-profile text, busiest first."""
    rows = sorted(profiles.values(), key=lambda p: -p.busy_ns)
    lines = [
        f"{'task body':30s} {'tasks':>8s} {'activations':>12s} {'busy ms':>10s} {'mean us':>9s}"
    ]
    for p in rows:
        lines.append(
            f"{p.name:30s} {p.tasks:8d} {p.activations:12d} "
            f"{p.busy_ns / 1e6:10.3f} {p.mean_task_ns / 1e3:9.2f}"
        )
    return "\n".join(lines)
