"""Chrome-trace (catapult) export.

Converts a recorded event stream into the Trace Event Format understood
by ``chrome://tracing`` / Perfetto: complete events per task activation
on a per-worker timeline.
"""

from __future__ import annotations

import json
from typing import Any

from repro.trace.recorder import TaskEvent, TraceRecorder


def to_chrome_trace(trace: TraceRecorder | list[TaskEvent]) -> str:
    """JSON string in Chrome Trace Event Format (X complete events)."""
    events = trace.events if isinstance(trace, TraceRecorder) else trace
    out: list[dict[str, Any]] = []
    active: dict[int, TaskEvent] = {}
    for event in sorted(events, key=lambda e: (e.time_ns, e.tid)):
        if event.kind == "activate":
            active[event.tid] = event
        elif event.kind in ("suspend", "terminate"):
            start = active.pop(event.tid, None)
            if start is None:
                continue
            out.append(
                {
                    "name": event.description,
                    "cat": "task",
                    "ph": "X",
                    "ts": start.time_ns / 1e3,  # microseconds
                    "dur": (event.time_ns - start.time_ns) / 1e3,
                    "pid": 0,
                    "tid": start.worker if start.worker is not None else -1,
                    "args": {"task": event.tid},
                }
            )
    return json.dumps({"traceEvents": out, "displayTimeUnit": "ms"})
