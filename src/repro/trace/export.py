"""Chrome-trace (catapult) export.

Converts a recorded event stream into the Trace Event Format understood
by ``chrome://tracing`` / Perfetto: complete events per task activation
on a per-worker timeline.  A telemetry frame can be folded in as
counter (``"ph": "C"``) events, putting the sampled performance
counters on the same timeline as the tasks that produced them.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.profiler.events import TaskEvent, TraceRecorder, event_sort_key


def _task_events(events: Iterable[TaskEvent]) -> list[dict[str, Any]]:
    out: list[dict[str, Any]] = []
    active: dict[int, TaskEvent] = {}
    for event in sorted(events, key=event_sort_key):
        if event.kind == "activate":
            active[event.tid] = event
        elif event.kind in ("suspend", "terminate"):
            start = active.pop(event.tid, None)
            if start is None:
                continue
            out.append(
                {
                    "name": event.description,
                    "cat": "task",
                    "ph": "X",
                    "ts": start.time_ns / 1e3,  # microseconds
                    "dur": (event.time_ns - start.time_ns) / 1e3,
                    "pid": 0,
                    "tid": start.worker if start.worker is not None else -1,
                    "args": {"task": event.tid},
                }
            )
    return out


def _counter_events(telemetry: Any) -> list[dict[str, Any]]:
    """Telemetry samples as Chrome counter ("C") events.

    One counter track per counter name, sampled at the simulated
    timestamps the pipeline recorded.
    """
    out: list[dict[str, Any]] = []
    for sample in telemetry:
        out.append(
            {
                "name": sample.name,
                "cat": "counter",
                "ph": "C",
                "ts": sample.timestamp_ns / 1e3,
                "pid": 0,
                "args": {"value": sample.value},
            }
        )
    return out


def to_chrome_trace(
    trace: TraceRecorder | list[TaskEvent] | None = None,
    *,
    telemetry: Any = None,
) -> str:
    """JSON string in Chrome Trace Event Format.

    ``trace`` contributes "X" complete events (one per task
    activation); ``telemetry`` — a
    :class:`~repro.telemetry.frame.TelemetryFrame` or any iterable of
    :class:`~repro.telemetry.sample.Sample` — contributes "C" counter
    events.  Either side may be omitted.
    """
    out: list[dict[str, Any]] = []
    if trace is not None:
        events = trace.events if isinstance(trace, TraceRecorder) else trace
        out.extend(_task_events(events))
    if telemetry is not None:
        out.extend(_counter_events(telemetry))
    return json.dumps({"traceEvents": out, "displayTimeUnit": "ms"})
