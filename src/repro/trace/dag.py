"""Task-DAG extraction and work/span analysis.

From a recorded trace, reconstruct the computation DAG — spawn edges
(parent → child, from ``create`` events) and join edges (producer →
waiter, from ``depend`` events) — and compute the classic work/span
numbers of task-parallel performance analysis:

- **work** `T1`: total task execution time;
- **span** `T∞`: the critical path — the longest dependency chain;
- **average parallelism** `T1/T∞`: the speedup ceiling no scheduler can
  beat (Brent's bound).

Task-level granularity is used (each node weighted by the task's total
busy time), which slightly over-approximates the span of tasks that
interleave spawning with computing — exact for fork/join trees whose
tasks compute before spawning or after joining.

This module is the *networkx oracle* for the profiler: the streaming
:mod:`repro.profiler.analysis` implementation (stdlib-only, usable at
runtime — networkx is a test-only dependency) must produce identical
work/span numbers, and ``tests/profiler`` cross-checks the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.profiler.events import TaskEvent, TraceRecorder, event_sort_key


@dataclass(frozen=True)
class WorkSpan:
    """Work/span summary of one run's task DAG."""

    work_ns: int
    span_ns: int
    tasks: int
    edges: int

    @property
    def average_parallelism(self) -> float:
        return self.work_ns / self.span_ns if self.span_ns else 0.0


def _task_busy_ns(events: list[TaskEvent]) -> dict[int, int]:
    """Per-task busy time from activate->(suspend|terminate) intervals."""
    busy: dict[int, int] = {}
    active_since: dict[int, int] = {}
    for event in sorted(events, key=event_sort_key):
        if event.kind == "activate":
            active_since[event.tid] = event.time_ns
        elif event.kind in ("suspend", "terminate"):
            start = active_since.pop(event.tid, None)
            if start is not None:
                busy[event.tid] = busy.get(event.tid, 0) + event.time_ns - start
    return busy


def build_task_dag(trace: TraceRecorder | list[TaskEvent]) -> "nx.DiGraph":
    """The computation DAG in standard fork/join form.

    Each task contributes two nodes — ``(tid, "s")`` (its spawn phase,
    carrying the task's busy time) and ``(tid, "e")`` (its join phase,
    weight 0) — with an internal s→e edge.  Spawn edges run
    parent-start → child-start; join edges run producer-end →
    waiter-end.  This is the classic phase splitting that keeps
    fork/join dependencies acyclic at task granularity.
    """
    events = trace.events if isinstance(trace, TraceRecorder) else trace
    busy = _task_busy_ns(events)
    graph = nx.DiGraph()

    def ensure(tid: int) -> None:
        if (tid, "s") not in graph:
            graph.add_node((tid, "s"), busy_ns=busy.get(tid, 0), tid=tid)
            graph.add_node((tid, "e"), busy_ns=0, tid=tid)
            graph.add_edge((tid, "s"), (tid, "e"), kind="internal")

    for event in events:
        if event.kind == "create":
            ensure(event.tid)
            if event.related is not None:
                ensure(event.related)
                graph.add_edge((event.related, "s"), (event.tid, "s"), kind="spawn")
        elif event.kind == "depend" and event.related is not None:
            ensure(event.tid)
            ensure(event.related)
            graph.add_edge((event.related, "e"), (event.tid, "e"), kind="join")
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("trace produced a cyclic dependency graph")
    return graph


def work_span(trace: TraceRecorder | list[TaskEvent]) -> WorkSpan:
    """Work, span and average parallelism of the recorded computation."""
    graph = build_task_dag(trace)
    work = sum(data["busy_ns"] for _n, data in graph.nodes(data=True))
    span = 0
    if graph.number_of_nodes():
        lengths: dict[tuple[int, str], int] = {}
        for node in nx.topological_sort(graph):
            own = graph.nodes[node]["busy_ns"]
            best_pred = max((lengths[p] for p in graph.predecessors(node)), default=0)
            lengths[node] = best_pred + own
        span = max(lengths.values())
    tasks = len({data["tid"] for _n, data in graph.nodes(data=True)})
    external_edges = sum(1 for *_e, data in graph.edges(data=True) if data["kind"] != "internal")
    return WorkSpan(work_ns=work, span_ns=span, tasks=tasks, edges=external_edges)
