"""Task-event recording — compatibility shim.

The event model and recorder moved to :mod:`repro.profiler.events`
when the trace layer grew into the causal profiler; this module
re-exports them so existing imports keep working.  New code should
import from :mod:`repro.profiler` directly.
"""

from __future__ import annotations

from repro.profiler.events import (
    EVENT_KINDS,
    TRACE_EVENT_NS,
    TaskEvent,
    TraceRecorder,
    event_sort_key,
)

__all__ = [
    "EVENT_KINDS",
    "TRACE_EVENT_NS",
    "TaskEvent",
    "TraceRecorder",
    "event_sort_key",
]
