"""Task-event recording.

Attaches to the HPX runtime's trace hook and stores one event per task
life-cycle transition.  Like the real post-mortem tools, recording has
a cost: each event charges a small instrumentation overhead to the
runtime (tracing perturbs; the in-situ counters are the cheap path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Per-event recording cost charged to the runtime while tracing
#: (buffer write + timestamp; post-mortem tools pay at least this).
TRACE_EVENT_NS = 35

EVENT_KINDS = ("create", "activate", "suspend", "resume", "terminate", "depend")


@dataclass(frozen=True)
class TaskEvent:
    """One recorded life-cycle transition.

    ``related`` carries structural context: the parent tid on
    ``create`` events, the producer tid on ``depend`` (join) events,
    None otherwise.
    """

    time_ns: int
    kind: str  # one of EVENT_KINDS
    tid: int
    description: str  # task body name
    worker: int | None  # executing worker, None for create/depend events
    related: int | None = None


class TraceRecorder:
    """Collects the full event stream of one run."""

    def __init__(self, runtime: Any) -> None:
        self.runtime = runtime
        self.events: list[TaskEvent] = []
        self._attached = False

    # -- life cycle ----------------------------------------------------

    def attach(self) -> None:
        """Start recording (replaces any existing trace hook)."""
        if self._attached:
            return
        self._attached = True
        self.runtime.trace = self._record
        self.runtime.add_instrumentation(TRACE_EVENT_NS)

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        self.runtime.trace = None
        self.runtime.add_instrumentation(-TRACE_EVENT_NS)

    def __enter__(self) -> "TraceRecorder":
        self.attach()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # -- recording -------------------------------------------------------

    def _record(self, time_ns: int, kind: str, task: Any, worker: int | None) -> None:
        if kind == "depend":
            # The 4th hook argument is the producer tid for join edges.
            related: int | None = worker
            worker = None
        elif kind == "create":
            related = task.parent_tid
        else:
            related = None
        self.events.append(
            TaskEvent(
                time_ns=time_ns,
                kind=kind,
                tid=task.tid,
                description=task.description,
                worker=worker,
                related=related,
            )
        )

    # -- queries ------------------------------------------------------------

    def events_of_kind(self, kind: str) -> list[TaskEvent]:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}")
        return [e for e in self.events if e.kind == kind]

    def task_count(self) -> int:
        return len({e.tid for e in self.events})
