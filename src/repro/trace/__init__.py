"""Post-mortem tracing and profiling.

The paper contrasts the HPX counter framework with *post-mortem* tools
(HPCToolkit, TAU): those collect full event streams and aggregate after
the run, which is expensive, fragile at high thread counts, and useless
for runtime adaptation.  This package implements exactly that style of
measurement *inside* the simulation — a per-task event recorder with a
gprof-like aggregator and a Chrome-trace exporter — so the two
approaches can be compared on equal footing (see
``tests/trace/test_trace.py``: the trace sees the same totals the
counters report, but only after the run and at a much higher event
cost).

Most of this package now lives in :mod:`repro.profiler` — the trace
layer grew into the causal profiling subsystem — and these modules are
compatibility shims re-exporting the moved names.  Only the networkx
work/span oracle (:mod:`repro.trace.dag`, cross-checked against the
stdlib implementation in :mod:`repro.profiler.analysis`) and the
Chrome-trace exporter remain here in full.
"""

from repro.profiler.events import TaskEvent, TraceRecorder
from repro.profiler.report import FunctionProfile, build_profile
from repro.trace.dag import WorkSpan, build_task_dag, work_span
from repro.trace.export import to_chrome_trace

__all__ = [
    "FunctionProfile",
    "TaskEvent",
    "TraceRecorder",
    "WorkSpan",
    "build_profile",
    "build_task_dag",
    "to_chrome_trace",
    "work_span",
]
