"""Declarative platform layer: machine specs, resources, presets.

The paper's figures are all products of one node (Table III's 2×10-core
Ivy Bridge).  This package frees that axis: a validated, declarative
:class:`PlatformSpec` describes any simulated node (sockets with
per-socket core count/frequency/cache/bandwidth, NUMA distances,
interconnect factor, exposed hardware events), a single
:class:`ResourceModel` owns every piece of contention/latency math, and
a preset registry plus TOML/JSON file loading make platforms sweepable
inputs — ``Session(platform=...)``, ``repro run --platform``, campaign
cells keyed by platform.
"""

from repro.platform.io import load_platform_file, platform_to_toml, save_platform_file
from repro.platform.presets import (
    DEFAULT_PLATFORM,
    default_platform,
    get_platform,
    platform_names,
    resolve_platform,
)
from repro.platform.resource import (
    Core,
    HardwareCounters,
    MemoryController,
    MemoryTrafficStats,
    ResourceModel,
    SegmentTicket,
)
from repro.platform.spec import PlatformError, PlatformSpec, SocketSpec

__all__ = [
    "DEFAULT_PLATFORM",
    "Core",
    "HardwareCounters",
    "MemoryController",
    "MemoryTrafficStats",
    "PlatformError",
    "PlatformSpec",
    "ResourceModel",
    "SegmentTicket",
    "SocketSpec",
    "default_platform",
    "get_platform",
    "load_platform_file",
    "platform_names",
    "platform_to_toml",
    "resolve_platform",
    "save_platform_file",
]
