"""Validated, declarative description of a simulated node.

A :class:`PlatformSpec` is the single source of truth for the hardware
a simulation runs on: per-socket core counts, frequencies, cache sizes
and memory-controller bandwidths, the NUMA distance matrix, the global
interconnect factor, and the hardware events the platform's counter
model exposes.  Specs are frozen, hashable, and round-trip losslessly
through JSON and TOML, which is what lets campaign cache keys be
content-addressed over them.

Unlike the legacy single-shape ``MachineSpec`` (two identical sockets),
sockets here are described individually, so uneven shapes — a 1-socket
desktop, an asymmetric big.LITTLE-style pair — are first-class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Mapping, Sequence

#: Hardware events every platform may expose (the counter model).
#: Names match :mod:`repro.papi.events`.
KNOWN_PAPI_EVENTS: tuple[str, ...] = (
    "OFFCORE_REQUESTS:ALL_DATA_RD",
    "OFFCORE_REQUESTS:DEMAND_CODE_RD",
    "OFFCORE_REQUESTS:DEMAND_RFO",
    "PAPI_TOT_CYC",
    "PAPI_TOT_INS",
)


class PlatformError(ValueError):
    """A platform description failed validation."""


#: In-band cost of evaluating one counter through the (simulated)
#: counter API, on the paper's Table III node.  Platforms scale this
#: with their single-thread speed via :func:`scaled_query_cost_ns`.
DEFAULT_COUNTER_QUERY_COST_NS = 800

#: Single-thread throughput (GHz x IPC) of the reference node the
#: 800 ns query cost was calibrated on.
_REFERENCE_QUERY_THROUGHPUT = 2.5 * 1.6


def scaled_query_cost_ns(freq_ghz: float, ipc: float) -> int:
    """Per-counter query cost scaled to a platform's single-thread speed.

    The counter API walk is serial scalar code, so its cost shrinks
    with clock x IPC relative to the reference Ivy Bridge node (where
    it is exactly :data:`DEFAULT_COUNTER_QUERY_COST_NS`).
    """
    return round(DEFAULT_COUNTER_QUERY_COST_NS * _REFERENCE_QUERY_THROUGHPUT / (freq_ghz * ipc))


@dataclass(frozen=True)
class SocketSpec:
    """One socket: cores, clock, shared cache, memory controller."""

    cores: int
    freq_ghz: float = 2.5
    l3_bytes: int = 25 * 1024 * 1024
    peak_bw: float = 42e9  # bytes/s the socket's controller sustains
    per_core_bw: float = 7.5e9  # bytes/s a single core can draw

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise PlatformError(f"socket needs at least one core, got {self.cores}")
        if self.freq_ghz <= 0:
            raise PlatformError(f"freq_ghz must be positive, got {self.freq_ghz}")
        if self.l3_bytes <= 0:
            raise PlatformError(f"l3_bytes must be positive, got {self.l3_bytes}")
        if self.peak_bw <= 0 or self.per_core_bw <= 0:
            raise PlatformError("socket bandwidths must be positive")

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "cores": self.cores,
            "freq_ghz": self.freq_ghz,
            "l3_bytes": self.l3_bytes,
            "peak_bw": self.peak_bw,
            "per_core_bw": self.per_core_bw,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SocketSpec":
        _check_keys("socket", data, required=("cores",), optional=tuple(_SOCKET_OPTIONAL))
        kwargs: dict[str, Any] = {"cores": int(data["cores"])}
        for key in _SOCKET_OPTIONAL:
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)


_SOCKET_OPTIONAL = ("freq_ghz", "l3_bytes", "peak_bw", "per_core_bw")

_PLATFORM_REQUIRED = ("name", "sockets")
_PLATFORM_OPTIONAL = (
    "cross_socket_factor",
    "numa_distance",
    "ram_bytes",
    "ipc",
    "l3_pressure_alpha",
    "l3_max_factor",
    "counter_query_cost_ns",
    "papi_events",
)


def _check_keys(
    what: str,
    data: Mapping[str, Any],
    *,
    required: tuple[str, ...],
    optional: tuple[str, ...],
) -> None:
    """Schema validation: every required key present, no unknown keys."""
    missing = [key for key in required if key not in data]
    if missing:
        raise PlatformError(f"{what} spec is missing required key(s): {', '.join(missing)}")
    unknown = sorted(set(data) - set(required) - set(optional))
    if unknown:
        raise PlatformError(
            f"{what} spec has unknown key(s): {', '.join(unknown)}; "
            f"known: {', '.join(required + optional)}"
        )


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of the simulated node (any socket shape)."""

    name: str
    sockets: tuple[SocketSpec, ...]
    cross_socket_factor: float = 1.6  # default interconnect service-time factor
    #: Optional NUMA distance matrix (relative service-time factors,
    #: hwloc ``distances``-style); ``None`` derives a uniform matrix
    #: from ``cross_socket_factor``.
    numa_distance: tuple[tuple[float, ...], ...] | None = None
    ram_bytes: int = 62 * 1024**3
    ipc: float = 1.6  # retired instructions per cycle (counter model)
    l3_pressure_alpha: float = 0.35  # extra-traffic slope once L3 overflows
    l3_max_factor: float = 2.5  # cap on the L3 overflow inflation
    #: In-band cost (ns) of evaluating one counter through the counter
    #: API from a periodic query task; scales counter-overhead
    #: experiments with the platform's single-thread speed.
    counter_query_cost_ns: int = DEFAULT_COUNTER_QUERY_COST_NS
    #: Hardware events the platform's counter model exposes.
    papi_events: tuple[str, ...] = KNOWN_PAPI_EVENTS

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("platform needs a non-empty name")
        if not isinstance(self.sockets, tuple):
            object.__setattr__(self, "sockets", tuple(self.sockets))
        if not self.sockets:
            raise PlatformError(f"platform {self.name!r} needs at least one socket")
        for sock in self.sockets:
            if not isinstance(sock, SocketSpec):
                raise PlatformError(f"platform {self.name!r}: sockets must be SocketSpec")
        if self.cross_socket_factor < 1.0:
            raise PlatformError(
                f"platform {self.name!r}: cross_socket_factor must be >= 1, "
                f"got {self.cross_socket_factor}"
            )
        if self.ram_bytes <= 0:
            raise PlatformError(f"platform {self.name!r}: ram_bytes must be positive")
        if self.ipc <= 0:
            raise PlatformError(f"platform {self.name!r}: ipc must be positive")
        if self.l3_pressure_alpha < 0 or self.l3_max_factor < 1.0:
            raise PlatformError(
                f"platform {self.name!r}: l3_pressure_alpha must be >= 0 and "
                "l3_max_factor >= 1"
            )
        if self.counter_query_cost_ns < 1:
            raise PlatformError(
                f"platform {self.name!r}: counter_query_cost_ns must be >= 1, "
                f"got {self.counter_query_cost_ns}"
            )
        if self.numa_distance is not None:
            object.__setattr__(
                self, "numa_distance", tuple(tuple(row) for row in self.numa_distance)
            )
            self._validate_numa()
        unknown = sorted(set(self.papi_events) - set(KNOWN_PAPI_EVENTS))
        if unknown:
            raise PlatformError(
                f"platform {self.name!r}: unknown papi event(s): {', '.join(unknown)}; "
                f"known: {', '.join(KNOWN_PAPI_EVENTS)}"
            )
        if not isinstance(self.papi_events, tuple):
            object.__setattr__(self, "papi_events", tuple(self.papi_events))

    def _validate_numa(self) -> None:
        matrix = self.numa_distance
        assert matrix is not None
        n = len(self.sockets)
        if len(matrix) != n or any(len(row) != n for row in matrix):
            raise PlatformError(f"platform {self.name!r}: numa_distance must be a {n}x{n} matrix")
        for i, row in enumerate(matrix):
            for j, value in enumerate(row):
                if value < 1.0:
                    raise PlatformError(
                        f"platform {self.name!r}: numa_distance[{i}][{j}] must be >= 1"
                    )
                if i == j and value != 1.0:
                    raise PlatformError(
                        f"platform {self.name!r}: numa_distance diagonal must be 1.0"
                    )

    # -- geometry ----------------------------------------------------------

    @cached_property
    def _socket_starts(self) -> tuple[int, ...]:
        """First global core index of each socket."""
        starts = []
        offset = 0
        for sock in self.sockets:
            starts.append(offset)
            offset += sock.cores
        return tuple(starts)

    @property
    def num_sockets(self) -> int:
        return len(self.sockets)

    @cached_property
    def total_cores(self) -> int:
        return sum(sock.cores for sock in self.sockets)

    @property
    def homogeneous(self) -> bool:
        """True when every socket has the same shape."""
        return all(sock == self.sockets[0] for sock in self.sockets[1:])

    def socket_of(self, core_index: int) -> int:
        """Socket owning global core *core_index* (IndexError if out of range)."""
        if not 0 <= core_index < self.total_cores:
            raise IndexError(f"core {core_index} out of range")
        socket = 0
        for start in self._socket_starts[1:]:
            if core_index < start:
                break
            socket += 1
        return socket

    def core_local(self, core_index: int) -> tuple[int, int]:
        """(socket, local core index) of global core *core_index*."""
        socket = self.socket_of(core_index)
        return socket, core_index - self._socket_starts[socket]

    def core_range(self, socket: int) -> range:
        """Global core indices belonging to *socket*."""
        start = self._socket_starts[socket]
        return range(start, start + self.sockets[socket].cores)

    def socket_spec_of(self, core_index: int) -> SocketSpec:
        return self.sockets[self.socket_of(core_index)]

    # -- interconnect ------------------------------------------------------

    def numa_factor(self, src: int, dst: int) -> float:
        """Relative service-time factor for traffic from socket *src*
        to memory on socket *dst*."""
        if self.numa_distance is not None:
            return self.numa_distance[src][dst]
        return 1.0 if src == dst else self.cross_socket_factor

    def remote_factor(self, socket: int) -> float:
        """Mean service-time factor for *socket*'s off-socket traffic
        (the single number the segment model's ``cross_socket_fraction``
        is scaled by)."""
        others = [self.numa_factor(socket, dst) for dst in range(self.num_sockets) if dst != socket]
        if not others:
            return self.cross_socket_factor
        return sum(others) / len(others)

    # -- (de)serialization -------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        """Lossless canonical encoding (also the cache-key payload)."""
        return {
            "name": self.name,
            "sockets": [sock.to_json_dict() for sock in self.sockets],
            "cross_socket_factor": self.cross_socket_factor,
            "numa_distance": (
                [list(row) for row in self.numa_distance]
                if self.numa_distance is not None
                else None
            ),
            "ram_bytes": self.ram_bytes,
            "ipc": self.ipc,
            "l3_pressure_alpha": self.l3_pressure_alpha,
            "l3_max_factor": self.l3_max_factor,
            "counter_query_cost_ns": self.counter_query_cost_ns,
            "papi_events": list(self.papi_events),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        _check_keys("platform", data, required=_PLATFORM_REQUIRED, optional=_PLATFORM_OPTIONAL)
        sockets_data = data["sockets"]
        if not isinstance(sockets_data, Sequence) or isinstance(sockets_data, (str, bytes)):
            raise PlatformError("platform 'sockets' must be a list of socket tables")
        kwargs: dict[str, Any] = {
            "name": data["name"],
            "sockets": tuple(SocketSpec.from_json_dict(sock) for sock in sockets_data),
        }
        for key in _PLATFORM_OPTIONAL:
            if key not in data or data[key] is None:
                continue
            value = data[key]
            if key == "numa_distance":
                value = tuple(tuple(float(v) for v in row) for row in value)
            elif key == "papi_events":
                value = tuple(value)
            kwargs[key] = value
        return cls(**kwargs)

    def describe(self) -> str:
        """Multi-line summary used by ``repro platform show``."""
        lines = [
            f"platform {self.name}: {self.num_sockets} socket(s), {self.total_cores} cores",
            f"  ram {self.ram_bytes / 1024**3:.0f} GiB | ipc {self.ipc} | "
            f"interconnect x{self.cross_socket_factor}",
        ]
        for s, sock in enumerate(self.sockets):
            lines.append(
                f"  socket#{s}: {sock.cores} cores @ {sock.freq_ghz} GHz | "
                f"L3 {sock.l3_bytes / 1024**2:.0f} MB | "
                f"bw {sock.peak_bw / 1e9:.0f} GB/s (per-core {sock.per_core_bw / 1e9:.1f})"
            )
        if self.numa_distance is not None:
            lines.append("  numa distances:")
            for row in self.numa_distance:
                lines.append("    " + "  ".join(f"{v:4.1f}" for v in row))
        return "\n".join(lines)
