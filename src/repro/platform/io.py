"""Platform files: TOML/JSON loading, validation, and TOML emission.

A platform file is the on-disk form of a :class:`PlatformSpec`::

    name = "mynode-2x12"
    cross_socket_factor = 1.8
    ram_bytes = 137438953472

    [[sockets]]
    cores = 12
    freq_ghz = 2.9

    [[sockets]]
    cores = 12
    freq_ghz = 2.9

JSON uses the same keys (``PlatformSpec.to_json_dict``).  Loading goes
through the same schema validation either way: unknown keys and missing
required keys raise :class:`~repro.platform.spec.PlatformError` naming
the offender, not a bare ``TypeError`` deep inside a constructor.

TOML emission (:func:`platform_to_toml`) is a deliberately minimal
writer covering exactly the platform schema — the stdlib has a TOML
reader (3.11+) but no writer, and the container may not have tomli-w.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.platform.spec import PlatformError, PlatformSpec

try:  # stdlib from 3.11; gate so 3.10 still imports (JSON keeps working)
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]


def load_platform_file(path: str | Path) -> PlatformSpec:
    """Load and validate a ``.toml`` or ``.json`` platform file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise PlatformError(f"cannot read platform file {path}: {exc}") from exc
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise PlatformError(f"invalid JSON in platform file {path}: {exc}") from exc
    elif suffix == ".toml":
        if tomllib is None:
            raise PlatformError(
                f"cannot load {path}: TOML platform files need Python >= 3.11 "
                "(tomllib); use the JSON form on this interpreter"
            )
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise PlatformError(f"invalid TOML in platform file {path}: {exc}") from exc
    else:
        raise PlatformError(f"platform file {path} must end in .toml or .json, got {path.suffix!r}")
    if not isinstance(data, Mapping):
        raise PlatformError(f"platform file {path} must contain a table/object at top level")
    return PlatformSpec.from_json_dict(data)


def save_platform_file(spec: PlatformSpec, path: str | Path) -> Path:
    """Write *spec* to a ``.toml`` or ``.json`` file (by suffix)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        text = json.dumps(spec.to_json_dict(), indent=2, sort_keys=True) + "\n"
    elif suffix == ".toml":
        text = platform_to_toml(spec)
    else:
        raise PlatformError(f"platform file {path} must end in .toml or .json, got {path.suffix!r}")
    path.write_text(text, encoding="utf-8")
    return path


# -- minimal TOML emission -------------------------------------------------


def _toml_value(value: Any) -> str:
    """TOML literal for the value types the platform schema uses."""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr round-trips floats exactly and is valid TOML (inf/nan
        # never appear: validation rejects non-finite spec fields).
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # JSON string escaping is valid TOML
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise PlatformError(f"cannot emit TOML for value {value!r}")


def platform_to_toml(spec: PlatformSpec) -> str:
    """Render *spec* as a TOML document (lossless round-trip)."""
    data = spec.to_json_dict()
    sockets = data.pop("sockets")
    lines = []
    for key, value in data.items():
        if value is None:
            continue  # optional field at its "absent" value
        lines.append(f"{key} = {_toml_value(value)}")
    for socket in sockets:
        lines.append("")
        lines.append("[[sockets]]")
        for key, value in socket.items():
            lines.append(f"{key} = {_toml_value(value)}")
    return "\n".join(lines) + "\n"
