"""The unified resource model: every contention/latency formula.

Historically the node's math was split between ``simcore.machine``
(L3 pressure, counter booking) and ``simcore.memory`` (bandwidth
arbitration).  :class:`ResourceModel` owns all of it now, parameterized
by a :class:`~repro.platform.spec.PlatformSpec`, so a single class
answers "how long does this segment take and what does it do to the
hardware counters" for any socket shape.

The math is intentionally identical to the pre-platform implementation
when evaluated on the default ``ivybridge-2x10`` spec — the committed
golden stream fixtures pin that down bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.work import Work
from repro.platform.spec import PlatformSpec


@dataclass(slots=True)
class MemoryTrafficStats:
    """Cumulative memory traffic bookkeeping for one socket."""

    bytes_total: int = 0
    bytes_cross_socket: int = 0
    segments: int = 0


class MemoryController:
    """Bandwidth arbitration for one socket.

    Parameters
    ----------
    socket_id:
        Index of the owning socket.
    peak_bw:
        Socket peak memory bandwidth in bytes per second.
    per_core_bw:
        Maximum bandwidth a single core can draw, bytes per second.
    cross_socket_factor:
        Multiplier (>= 1) applied to the service time of traffic that
        crosses the interconnect to a remote socket's memory.
    """

    __slots__ = (
        "socket_id",
        "peak_bw",
        "per_core_bw",
        "cross_socket_factor",
        "active_streams",
        "stats",
    )

    def __init__(
        self,
        socket_id: int,
        *,
        peak_bw: float,
        per_core_bw: float,
        cross_socket_factor: float = 1.6,
    ) -> None:
        if peak_bw <= 0 or per_core_bw <= 0:
            raise ValueError("bandwidths must be positive")
        self.socket_id = socket_id
        self.peak_bw = float(peak_bw)
        self.per_core_bw = float(per_core_bw)
        self.cross_socket_factor = float(cross_socket_factor)
        self.active_streams = 0
        self.stats = MemoryTrafficStats()

    def effective_bandwidth(self, streams: int | None = None) -> float:
        """Bandwidth one stream obtains with *streams* concurrent streams."""
        n = self.active_streams if streams is None else streams
        n = max(1, n)
        return min(self.per_core_bw, self.peak_bw / n)

    def service_time_ns(self, nbytes: int, *, cross_socket_fraction: float = 0.0) -> int:
        """Nanoseconds needed to move *nbytes* under current contention."""
        if nbytes <= 0:
            return 0
        if cross_socket_fraction == 0.0:
            # Hot path: socket-local traffic (the common case).  Matches
            # the general expression exactly: local == float(nbytes),
            # remote == 0.0, and bw is the same min().
            bw = self.peak_bw / (self.active_streams + 1)
            if bw > self.per_core_bw:
                bw = self.per_core_bw
            return round(nbytes / bw * 1e9)
        if not 0.0 <= cross_socket_fraction <= 1.0:
            raise ValueError("cross_socket_fraction must be in [0, 1]")
        bw = self.effective_bandwidth(self.active_streams + 1)
        local = nbytes * (1.0 - cross_socket_fraction)
        remote = nbytes * cross_socket_fraction * self.cross_socket_factor
        return round((local + remote) / bw * 1e9)

    def stream_started(self, nbytes: int, *, cross_socket_fraction: float = 0.0) -> None:
        """Register a memory-consuming segment beginning on this socket."""
        self.active_streams += 1
        stats = self.stats
        stats.bytes_total += nbytes
        if cross_socket_fraction:
            stats.bytes_cross_socket += round(nbytes * cross_socket_fraction)
        stats.segments += 1

    def stream_finished(self) -> None:
        """Register a memory-consuming segment ending."""
        if self.active_streams <= 0:
            raise RuntimeError("stream_finished without matching stream_started")
        self.active_streams -= 1


@dataclass
class HardwareCounters:
    """Monotonic per-core hardware event counts (the PAPI substrate)."""

    cycles: int = 0
    instructions: int = 0
    offcore_all_data_rd: int = 0
    offcore_demand_code_rd: int = 0
    offcore_demand_rfo: int = 0

    def offcore_total(self) -> int:
        return (self.offcore_all_data_rd + self.offcore_demand_code_rd + self.offcore_demand_rfo)


@dataclass
class Core:
    """One physical core."""

    index: int
    socket: int
    hw: HardwareCounters = field(default_factory=HardwareCounters)
    busy_ns: int = 0  # cumulative time spent executing segments


@dataclass(frozen=True, slots=True)
class PopulationCharge:
    """Mean per-member charge for a steady task population on one socket.

    Produced by :meth:`ResourceModel.population_segment`; consumed by
    the cohort engine to size cohort wall time and by
    :meth:`ResourceModel.population_book` to book hardware counters.
    """

    socket: int
    duration_ns: int
    membytes_effective: int
    pressure: float


class SegmentTicket:
    """Handle returned by ``segment_begin``; pass back to ``segment_end``
    when the segment's end event fires.

    Plain ``__slots__`` object (one per compute segment — hot path);
    treat instances as immutable."""

    __slots__ = ("core_index", "socket", "duration_ns", "membytes_effective", "uses_memory")

    def __init__(
        self,
        core_index: int,
        socket: int,
        duration_ns: int,
        membytes_effective: int,
        uses_memory: bool,
    ) -> None:
        self.core_index = core_index
        self.socket = socket
        self.duration_ns = duration_ns
        self.membytes_effective = membytes_effective
        self.uses_memory = uses_memory


class ResourceModel:
    """All contention/latency math for one node, any socket shape.

    Owns the per-socket memory controllers, the shared-L3 pressure
    state, and the hardware-counter booking rules.  One instance backs
    one :class:`repro.simcore.machine.Machine`.
    """

    def __init__(self, platform: PlatformSpec) -> None:
        self.platform = platform
        self.controllers = [
            MemoryController(
                s,
                peak_bw=sock.peak_bw,
                per_core_bw=sock.per_core_bw,
                cross_socket_factor=platform.remote_factor(s),
            )
            for s, sock in enumerate(platform.sockets)
        ]
        # Sum of the working sets of segments currently active per socket,
        # for the shared-L3 pressure model.
        self.active_ws = [0] * platform.num_sockets
        # Specs are frozen: cache the per-socket constants the hot path
        # reads on every segment.
        self._l3_bytes = [float(sock.l3_bytes) for sock in platform.sockets]
        self._freq_ghz = [sock.freq_ghz for sock in platform.sockets]
        self._l3_alpha = platform.l3_pressure_alpha
        self._l3_max = platform.l3_max_factor
        self._ipc = platform.ipc

    # -- queries ---------------------------------------------------------

    def l3_pressure_factor(self, socket: int, extra_ws: int) -> float:
        """Traffic inflation once concurrent working sets overflow the L3."""
        ws = self.active_ws[socket] + extra_ws
        overflow = ws / self._l3_bytes[socket] - 1.0
        if overflow <= 0:
            return 1.0
        return min(self._l3_max, 1.0 + self._l3_alpha * overflow)

    def total_offcore_bytes(self) -> int:
        return sum(c.stats.bytes_total for c in self.controllers)

    # -- segment lifecycle -----------------------------------------------

    def segment_begin(
        self,
        core: Core,
        work: Work,
        *,
        cross_socket_fraction: float = 0.0,
        speed_factor: float = 1.0,
    ) -> SegmentTicket:
        """Start executing *work* on *core*.

        Returns a ticket carrying the segment duration under current
        contention.  *speed_factor* scales CPU time (>1 means slower;
        used by the kernel model for time-slicing dilation).
        """
        socket = core.socket
        controller = self.controllers[socket]
        working_set = work.membytes if work.working_set is None else work.working_set

        # Inline l3_pressure_factor (hot path: one call per segment).
        ws = self.active_ws[socket] + working_set
        overflow = ws / self._l3_bytes[socket] - 1.0
        if overflow <= 0:
            pressure = 1.0
        else:
            pressure = min(self._l3_max, 1.0 + self._l3_alpha * overflow)
        membytes = round(work.membytes * pressure)
        mem_ns = controller.service_time_ns(membytes, cross_socket_fraction=cross_socket_fraction)
        cpu_ns = round(work.cpu_ns * speed_factor)
        duration = cpu_ns + mem_ns

        uses_memory = membytes > 0
        if uses_memory:
            controller.stream_started(membytes, cross_socket_fraction=cross_socket_fraction)
        self.active_ws[socket] += working_set

        # Hardware counter increments are booked at segment start; the
        # simulated PAPI layer only ever observes them after the segment
        # completes, so eager booking is unobservable and cheaper.
        freq = self._freq_ghz[socket]
        hw = core.hw
        if membytes:
            lines_work = work.scaled_traffic(pressure)
            data_rd, code_rd, rfo = lines_work.offcore_requests()
            hw.offcore_all_data_rd += data_rd
            hw.offcore_demand_code_rd += code_rd
            hw.offcore_demand_rfo += rfo
        hw.cycles += round(duration * freq)
        hw.instructions += round(work.cpu_ns * freq * self._ipc)
        core.busy_ns += duration

        return SegmentTicket(
            core_index=core.index,
            socket=socket,
            duration_ns=duration,
            membytes_effective=membytes,
            uses_memory=uses_memory,
        )

    def segment_end(self, ticket: SegmentTicket, work: Work) -> None:
        """Finish the segment identified by *ticket*."""
        if ticket.uses_memory:
            self.controllers[ticket.socket].stream_finished()
        self.active_ws[ticket.socket] -= work.effective_working_set
        if self.active_ws[ticket.socket] < 0:
            raise RuntimeError("working-set accounting went negative")

    # -- population (mesoscale) charging ---------------------------------

    def population_segment(self, socket: int, work: Work, *, concurrency: int) -> PopulationCharge:
        """Mean-value charge for one member of a steady population.

        Models the steady state the exact engine converges to when
        *concurrency* identical segments run continuously on *socket*:
        every member sees the other ``concurrency - 1`` working sets in
        the L3 and shares the socket bandwidth ``concurrency`` ways.
        This is the fluid limit of :meth:`segment_begin`'s instantaneous
        formulas — identical math, evaluated at the population's mean
        operating point instead of per event.
        """
        n = max(1, concurrency)
        working_set = work.effective_working_set
        ws = working_set * n
        overflow = ws / self._l3_bytes[socket] - 1.0
        if overflow <= 0:
            pressure = 1.0
        else:
            pressure = min(self._l3_max, 1.0 + self._l3_alpha * overflow)
        membytes = round(work.membytes * pressure)
        controller = self.controllers[socket]
        bw = min(controller.per_core_bw, controller.peak_bw / n)
        mem_ns = round(membytes / bw * 1e9) if membytes > 0 else 0
        return PopulationCharge(
            socket=socket,
            duration_ns=work.cpu_ns + mem_ns,
            membytes_effective=membytes,
            pressure=pressure,
        )

    def population_book(self, core: Core, work: Work, charge: PopulationCharge, tasks: int) -> None:
        """Book *tasks* population members' worth of counters on *core*.

        The per-member increments are the same integers
        :meth:`segment_begin` would book at the charge's operating
        point, multiplied by the member count — so cohort hardware
        counters are exact aggregates of the modeled per-member charge.
        """
        if tasks <= 0:
            return
        socket = core.socket
        membytes = charge.membytes_effective
        if membytes:
            stats = self.controllers[socket].stats
            stats.bytes_total += membytes * tasks
            stats.segments += tasks
        freq = self._freq_ghz[socket]
        hw = core.hw
        if membytes:
            lines_work = work.scaled_traffic(charge.pressure)
            data_rd, code_rd, rfo = lines_work.offcore_requests()
            hw.offcore_all_data_rd += data_rd * tasks
            hw.offcore_demand_code_rd += code_rd * tasks
            hw.offcore_demand_rfo += rfo * tasks
        hw.cycles += round(charge.duration_ns * freq) * tasks
        hw.instructions += round(work.cpu_ns * freq * self._ipc) * tasks
        core.busy_ns += charge.duration_ns * tasks
