"""Built-in platform presets and name/path resolution.

``ivybridge-2x10`` is the paper's Table III node and the default
everywhere; the other presets exist so the platform axis is actually
sweepable out of the box:

- ``desktop-1x8`` — a single-socket 8-core desktop part: higher clock,
  smaller L3, one memory controller (no cross-socket traffic at all);
- ``epyc-2x64`` — a 2×64-core server node: many more cores per
  controller, so the bandwidth wall arrives at a much lower core
  *fraction*; explicit NUMA distance matrix;
- ``grace-1x72`` — a large single-socket part with a big shared cache
  and very high memory bandwidth;
- ``hybrid-4p8e`` — an asymmetric two-socket shape (4 fast cores + 8
  slow cores) exercising uneven topologies end to end.

``resolve_platform`` is the front door: it accepts a preset name, a
path to a TOML/JSON platform file, an already-built ``PlatformSpec``,
or a legacy ``MachineSpec``-shaped object exposing ``to_platform()``.
"""

from __future__ import annotations

import os
from typing import Any

from repro.platform.spec import PlatformError, PlatformSpec, SocketSpec, scaled_query_cost_ns

#: Name of the paper's Table III node — the default platform.
DEFAULT_PLATFORM = "ivybridge-2x10"

GiB = 1024**3
MiB = 1024**2


def _ivybridge_2x10() -> PlatformSpec:
    """The paper's dual-socket Ivy Bridge E5-2670v2 node (Table III)."""
    socket = SocketSpec(cores=10, freq_ghz=2.5, l3_bytes=25 * MiB, peak_bw=42e9, per_core_bw=7.5e9)
    return PlatformSpec(
        name="ivybridge-2x10",
        sockets=(socket, socket),
        cross_socket_factor=1.6,
        ram_bytes=62 * GiB,
        ipc=1.6,
        l3_pressure_alpha=0.35,
        l3_max_factor=2.5,
    )


def _desktop_1x8() -> PlatformSpec:
    """A single-socket 8-core desktop part: fast cores, one controller."""
    return PlatformSpec(
        name="desktop-1x8",
        sockets=(
            SocketSpec(cores=8, freq_ghz=3.6, l3_bytes=16 * MiB, peak_bw=38e9, per_core_bw=12e9),
        ),
        cross_socket_factor=1.0,
        ram_bytes=32 * GiB,
        ipc=2.2,
        l3_pressure_alpha=0.45,
        l3_max_factor=2.5,
        counter_query_cost_ns=scaled_query_cost_ns(3.6, 2.2),
    )


def _epyc_2x64() -> PlatformSpec:
    """A dual-socket 64-core-per-socket Epyc-like server node."""
    socket = SocketSpec(
        cores=64, freq_ghz=2.25, l3_bytes=256 * MiB, peak_bw=190e9, per_core_bw=22e9
    )
    return PlatformSpec(
        name="epyc-2x64",
        sockets=(socket, socket),
        cross_socket_factor=2.0,
        numa_distance=((1.0, 2.0), (2.0, 1.0)),
        ram_bytes=512 * GiB,
        ipc=2.0,
        l3_pressure_alpha=0.30,
        l3_max_factor=3.0,
        counter_query_cost_ns=scaled_query_cost_ns(2.25, 2.0),
    )


def _grace_1x72() -> PlatformSpec:
    """A large single-socket node: many cores behind one huge cache."""
    return PlatformSpec(
        name="grace-1x72",
        sockets=(
            SocketSpec(cores=72, freq_ghz=3.1, l3_bytes=114 * MiB, peak_bw=450e9, per_core_bw=35e9),
        ),
        cross_socket_factor=1.0,
        ram_bytes=480 * GiB,
        ipc=2.4,
        l3_pressure_alpha=0.25,
        l3_max_factor=2.0,
        counter_query_cost_ns=scaled_query_cost_ns(3.1, 2.4),
    )


def _hybrid_4p8e() -> PlatformSpec:
    """An asymmetric shape: 4 fast performance cores + 8 efficiency cores."""
    return PlatformSpec(
        name="hybrid-4p8e",
        sockets=(
            SocketSpec(cores=4, freq_ghz=3.8, l3_bytes=12 * MiB, peak_bw=40e9, per_core_bw=14e9),
            SocketSpec(cores=8, freq_ghz=2.4, l3_bytes=8 * MiB, peak_bw=30e9, per_core_bw=8e9),
        ),
        cross_socket_factor=1.3,
        ram_bytes=16 * GiB,
        ipc=1.8,
        l3_pressure_alpha=0.5,
        l3_max_factor=2.5,
        # Query tasks run on whichever core picks them up; scale by the
        # efficiency cores (the conservative bound on a hybrid part).
        counter_query_cost_ns=scaled_query_cost_ns(2.4, 1.8),
    )


_PRESETS = {
    "ivybridge-2x10": _ivybridge_2x10,
    "desktop-1x8": _desktop_1x8,
    "epyc-2x64": _epyc_2x64,
    "grace-1x72": _grace_1x72,
    "hybrid-4p8e": _hybrid_4p8e,
}


def platform_names() -> tuple[str, ...]:
    """All preset names, default first, the rest sorted."""
    rest = sorted(name for name in _PRESETS if name != DEFAULT_PLATFORM)
    return (DEFAULT_PLATFORM, *rest)


def get_platform(name: str) -> PlatformSpec:
    """The preset named *name* (PlatformError on miss)."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise PlatformError(
            f"unknown platform {name!r}; presets: {', '.join(platform_names())}"
        ) from None
    return factory()


def default_platform() -> PlatformSpec:
    """The paper's node — the platform every default path runs on."""
    return get_platform(DEFAULT_PLATFORM)


def resolve_platform(platform: Any | None) -> PlatformSpec:
    """Normalize any accepted platform designator to a ``PlatformSpec``.

    Accepts ``None`` (the default platform), a ``PlatformSpec``, a
    legacy spec object exposing ``to_platform()`` (``MachineSpec``), a
    preset name, or a path to a ``.toml``/``.json`` platform file.
    """
    if platform is None:
        return default_platform()
    if isinstance(platform, PlatformSpec):
        return platform
    to_platform = getattr(platform, "to_platform", None)
    if callable(to_platform):
        spec = to_platform()
        if not isinstance(spec, PlatformSpec):
            raise PlatformError(f"{platform!r}.to_platform() did not return a PlatformSpec")
        return spec
    if isinstance(platform, str):
        if platform in _PRESETS:
            return get_platform(platform)
        if platform.endswith((".toml", ".json")) or os.path.exists(platform):
            from repro.platform.io import load_platform_file

            return load_platform_file(platform)
        raise PlatformError(
            f"unknown platform {platform!r}; presets: {', '.join(platform_names())} "
            "(or pass a path to a .toml/.json platform file)"
        )
    raise PlatformError(f"cannot resolve platform from {platform!r}")
