"""The asyncio run server.

One process owns: an ``asyncio.start_server`` accept loop parsing HTTP
with :mod:`repro.serve.protocol`, a bounded :class:`RunQueue` guarded
by per-tenant :class:`TenantQuotas`, N worker tasks draining the queue
into a ``ProcessPoolExecutor`` through the campaign cell path
(:func:`repro.campaign.engine.execute_cell` — the same function
``repro campaign --jobs`` fans out), and a shared
:class:`~repro.campaign.cache.ResultCache` consulted at submit time
and written at completion.  Because keys are campaign cell keys, the
server's cache and campaign caches interchange.

Endpoints::

    POST /runs                  submit; 202 queued / 200 cache hit /
                                429 + Retry-After on admission refusal
    GET  /runs/{id}[?wait=S]    status + result (optionally long-poll)
    GET  /runs/{id}/telemetry   the run's sample stream, chunked JSONL
    GET  /healthz               liveness
    GET  /stats                 self-introspection, counter-name grammar

The server watches itself with the paper's own idiom: ``/stats`` is a
``{counter-name: value}`` dict over the ``/serve{instance}/counter``
grammar (queue depth, cache hit rate, per-tenant admission counts).
"""

from __future__ import annotations

import asyncio
import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Awaitable, Callable

from repro.campaign.cache import ResultCache
from repro.campaign.engine import execute_cell
from repro.serve import protocol
from repro.serve.protocol import HttpError, HttpRequest
from repro.serve.queue import BadRequest, QueueFull, RunQueue, RunRecord, RunRequest, RunState
from repro.serve.quotas import DEFAULT_TENANT, QuotaConfig, TenantQuotas
from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.sinks import JsonLinesSink, replay_samples

#: An async callable executing one run and returning the persisted
#: result dict (:func:`repro.campaign.artifact.run_result_to_dict`
#: shape).  The default runs the campaign cell path in a process pool;
#: tests inject inline runners.
Runner = Callable[[RunRequest], Awaitable[dict[str, Any]]]

#: Longest ``?wait=`` / telemetry long-poll the server will hold.
MAX_WAIT_SECONDS = 300.0


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` needs to stand up a server."""

    host: str = "127.0.0.1"
    port: int = 8765  # 0 = ephemeral (the bound port is reported)
    workers: int = 2
    max_queue: int = 256
    quota: QuotaConfig = QuotaConfig()
    cache_dir: Path | None = None  # None + no_cache=False -> default dir
    no_cache: bool = False
    max_records: int = 10_000  # finished-run retention

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")

    def build_cache(self) -> ResultCache | None:
        if self.no_cache:
            return None
        if self.cache_dir is not None:
            return ResultCache(Path(self.cache_dir))
        return ResultCache.default()


class RunServer:
    """The service: accept loop + queue + worker pool + cache."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        *,
        cache: ResultCache | None = None,
        runner: Runner | None = None,
        quotas: TenantQuotas | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServerConfig()
        self.cache = cache if cache is not None else self.config.build_cache()
        self.quotas = quotas or TenantQuotas(self.config.quota)
        self.queue = RunQueue(self.config.max_queue)
        self.records: dict[str, RunRecord] = {}
        self._clock = clock
        self._runner = runner
        self._pool: ProcessPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._worker_tasks: list[asyncio.Task[None]] = []
        self._seq = 0
        self._busy = 0
        self._started_at = clock()
        # Admission/outcome counters (cache hit/miss live on the cache).
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected_queue = 0
        self.rejected_quota = 0
        # Exponential moving average of run duration, seeding the
        # Retry-After estimate before the first completion.
        self._ema_run_seconds = 0.05

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        assert self._server is not None and self._server.sockets, "server not started"
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> "RunServer":
        """Bind, spawn the worker tasks, and start accepting."""
        if self._runner is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
            self._runner = self._pool_runner
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._worker_tasks = [
            asyncio.ensure_future(self._worker_loop()) for _ in range(self.config.workers)
        ]
        self._started_at = self._clock()
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel workers, shut the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._worker_tasks = []
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- execution -----------------------------------------------------

    async def _pool_runner(self, request: RunRequest) -> dict[str, Any]:
        spec, cell = request.to_cell()
        loop = asyncio.get_running_loop()
        assert self._pool is not None
        return await loop.run_in_executor(self._pool, execute_cell, spec, cell)

    async def _worker_loop(self) -> None:
        assert self._runner is not None
        while True:
            record = await self.queue.get()
            record.state = RunState.RUNNING
            record.started_at = self._clock()
            self._busy += 1
            try:
                result = await self._runner(record.request)
                record.result = result
                record.state = RunState.DONE
                self.completed += 1
                if self.cache is not None:
                    self.cache.store(record.key, result)
            except asyncio.CancelledError:
                record.state = RunState.FAILED
                record.error = "server shut down before the run finished"
                record.done.set()
                raise
            except Exception as exc:
                record.state = RunState.FAILED
                record.error = f"{type(exc).__name__}: {exc}"
                self.failed += 1
            finally:
                self._busy -= 1
                record.finished_at = self._clock()
                if record.started_at is not None and record.finished_at is not None:
                    duration = max(record.finished_at - record.started_at, 1e-6)
                    self._ema_run_seconds = 0.8 * self._ema_run_seconds + 0.2 * duration
                record.done.set()
                self.queue.task_done()

    def _retry_after_queue(self) -> float:
        """Seconds until the queue has likely drained one slot."""
        backlog = self.queue.depth + self._busy
        estimate = backlog * self._ema_run_seconds / max(self.config.workers, 1)
        return max(0.1, estimate)

    # -- record bookkeeping --------------------------------------------

    def _new_record(self, tenant: str, request: RunRequest, key: str) -> RunRecord:
        self._seq += 1
        record = RunRecord(
            id=f"r-{self._seq:08d}",
            tenant=tenant,
            request=request,
            key=key,
            submitted_at=self._clock(),
        )
        self.records[record.id] = record
        self._evict_finished()
        return record

    def _evict_finished(self) -> None:
        overflow = len(self.records) - self.config.max_records
        if overflow <= 0:
            return
        for run_id in [rid for rid, rec in self.records.items() if rec.finished][:overflow]:
            del self.records[run_id]

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await protocol.read_request(reader)
                if request is None:
                    return
                await self._dispatch(request, writer)
            except HttpError as exc:
                writer.write(protocol.error_response(exc))
            except Exception as exc:  # never kill the accept loop
                writer.write(protocol.json_response(500, {"error": f"{type(exc).__name__}: {exc}"}))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: HttpRequest, writer: asyncio.StreamWriter) -> None:
        parts = [p for p in request.path.split("/") if p]
        if request.method == "POST" and parts == ["runs"]:
            writer.write(self._submit(request))
        elif request.method == "GET" and len(parts) == 2 and parts[0] == "runs":
            writer.write(await self._status(request, parts[1]))
        elif (
            request.method == "GET"
            and len(parts) == 3
            and parts[0] == "runs"
            and parts[2] == "telemetry"
        ):
            await self._stream_telemetry(request, parts[1], writer)
        elif request.method == "GET" and parts == ["healthz"]:
            writer.write(
                protocol.json_response(
                    200, {"status": "ok", "uptime_seconds": self._clock() - self._started_at}
                )
            )
        elif request.method == "GET" and parts == ["stats"]:
            writer.write(protocol.json_response(200, self.stats()))
        elif parts and parts[0] in ("runs", "healthz", "stats"):
            raise HttpError(405, f"{request.method} not supported on /{'/'.join(parts)}")
        else:
            raise HttpError(404, f"no route for {request.path!r}")

    # -- endpoints -----------------------------------------------------

    def _submit(self, request: HttpRequest) -> bytes:
        tenant = request.headers.get("x-repro-tenant", DEFAULT_TENANT)
        retry_after = self.quotas.admit(tenant)
        if retry_after > 0.0:
            self.rejected_quota += 1
            raise HttpError(
                429,
                f"tenant {tenant!r} is over quota "
                f"({self.quotas.config.rate:g} runs/s, burst {self.quotas.config.burst:g})",
                headers={"Retry-After": str(math.ceil(retry_after))},
            )
        try:
            run_request = RunRequest.from_json(request.json())
            key = run_request.cache_key()
        except BadRequest as exc:
            raise HttpError(400, str(exc)) from exc

        cached = self.cache.load(key) if self.cache is not None else None
        record = self._new_record(tenant, run_request, key)
        self.submitted += 1
        if cached is not None:
            record.cached = True
            record.result = cached
            record.state = RunState.DONE
            record.started_at = record.finished_at = self._clock()
            record.done.set()
            return protocol.json_response(
                200, {"id": record.id, "state": record.state.value, "cached": True}
            )
        try:
            self.queue.submit(record)
        except QueueFull as exc:
            # The record never entered the queue: fail it so a later
            # status poll explains what happened, and refuse admission.
            del self.records[record.id]
            self.submitted -= 1
            self.rejected_queue += 1
            raise HttpError(
                429,
                str(exc),
                headers={"Retry-After": str(math.ceil(self._retry_after_queue()))},
            ) from exc
        return protocol.json_response(
            202,
            {
                "id": record.id,
                "state": record.state.value,
                "cached": False,
                "queue_depth": self.queue.depth,
            },
        )

    def _record_or_404(self, run_id: str) -> RunRecord:
        record = self.records.get(run_id)
        if record is None:
            raise HttpError(404, f"unknown run {run_id!r}")
        return record

    @staticmethod
    def _wait_seconds(request: HttpRequest) -> float:
        raw = request.query.get("wait")
        if raw is None:
            return 0.0
        try:
            seconds = float(raw)
        except ValueError as exc:
            raise HttpError(400, f"wait must be a number of seconds, got {raw!r}") from exc
        return min(max(seconds, 0.0), MAX_WAIT_SECONDS)

    async def _status(self, request: HttpRequest, run_id: str) -> bytes:
        record = self._record_or_404(run_id)
        wait = self._wait_seconds(request)
        if wait > 0.0 and not record.finished:
            try:
                await asyncio.wait_for(record.done.wait(), timeout=wait)
            except asyncio.TimeoutError:
                pass  # report the current (unfinished) state
        include_result = request.query.get("result", "1") not in ("0", "false", "no")
        return protocol.json_response(200, record.status_json(include_result=include_result))

    async def _stream_telemetry(
        self, request: HttpRequest, run_id: str, writer: asyncio.StreamWriter
    ) -> None:
        record = self._record_or_404(run_id)
        wait = self._wait_seconds(request) or 60.0
        if not record.finished:
            try:
                await asyncio.wait_for(record.done.wait(), timeout=wait)
            except asyncio.TimeoutError:
                raise HttpError(408, f"run {run_id} still {record.state.value} after {wait:g}s")
        if record.state is RunState.FAILED:
            raise HttpError(500, f"run {run_id} failed: {record.error}")
        assert record.result is not None
        frame = TelemetryFrame.from_rows(record.result.get("telemetry", []))
        writer.write(protocol.chunked_head(200, headers={"X-Repro-Run-Id": run_id}))
        sink = JsonLinesSink(_ChunkStream(writer))  # borrowed stream: not closed
        replay_samples(frame, sink)
        await writer.drain()
        writer.write(protocol.last_chunk())

    # -- introspection -------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """``/serve{instance}/counter`` self-observation snapshot."""
        from repro.counters.providers import provider_identity

        counters: dict[str, float] = {
            "/serve{locality#0/providers}/available": float(len(provider_identity())),
            "/serve{locality#0/queue}/depth": float(self.queue.depth),
            "/serve{locality#0/queue}/capacity": float(self.config.max_queue),
            "/serve{locality#0/workers}/total": float(self.config.workers),
            "/serve{locality#0/workers}/busy": float(self._busy),
            "/serve{locality#0/runs}/submitted": float(self.submitted),
            "/serve{locality#0/runs}/completed": float(self.completed),
            "/serve{locality#0/runs}/failed": float(self.failed),
            "/serve{locality#0/runs}/rejected-queue-full": float(self.rejected_queue),
            "/serve{locality#0/runs}/rejected-quota": float(self.rejected_quota),
            "/serve{locality#0/server}/uptime-seconds": self._clock() - self._started_at,
            "/serve{locality#0/server}/mean-run-seconds": self._ema_run_seconds,
        }
        if self.cache is not None:
            lookups = self.cache.hits + self.cache.misses
            counters["/serve{locality#0/cache}/hits"] = float(self.cache.hits)
            counters["/serve{locality#0/cache}/misses"] = float(self.cache.misses)
            counters["/serve{locality#0/cache}/stores"] = float(self.cache.stores)
            counters["/serve{locality#0/cache}/hit-rate"] = (
                self.cache.hits / lookups if lookups else 0.0
            )
        for tenant in self.quotas.tenants():
            stats = self.quotas.stats[tenant]
            counters[f"/serve{{locality#0/tenant#{tenant}}}/submitted"] = float(stats.submitted)
            counters[f"/serve{{locality#0/tenant#{tenant}}}/rejected"] = float(stats.rejected)
        return {"counters": counters}


class _ChunkStream:
    """File-like adapter: each ``write`` becomes one HTTP chunk.

    Lets the existing :class:`JsonLinesSink` stream straight onto the
    wire — the sink treats this as a borrowed, already-open stream.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer

    def write(self, text: str) -> None:
        self._writer.write(protocol.chunk(text.encode("utf-8")))

    def flush(self) -> None:
        """Chunks are flushed by the connection handler's drain."""


async def serve_forever(config: ServerConfig, *, ready: Callable[[RunServer], None] | None = None):
    """Start a server and serve until cancelled (the CLI entry point).

    *ready* is called with the started server (the CLI prints the bound
    address from it; tests use it to capture the port).  SIGTERM/SIGINT
    shut down gracefully — without this the process-pool workers would
    outlive the server as orphans.
    """
    import signal

    server = RunServer(config)
    await server.start()
    if ready is not None:
        ready(server)
    loop = asyncio.get_running_loop()
    interrupted = asyncio.Event()
    hooked: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, interrupted.set)
            hooked.append(sig)
        except (NotImplementedError, RuntimeError):  # non-main thread / platform
            pass
    try:
        accept = asyncio.ensure_future(server.serve_forever())
        stop = asyncio.ensure_future(interrupted.wait())
        await asyncio.wait([accept, stop], return_when=asyncio.FIRST_COMPLETED)
        for task in (accept, stop):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
    finally:
        for sig in hooked:
            loop.remove_signal_handler(sig)
        await server.stop()
