"""Minimal asyncio HTTP client for the run server.

Connection-per-request (matching the server's ``Connection: close``
discipline), stdlib-only.  Used by the serve tests, the CI end-to-end
smoke, and the ``benchmarks/bench_serve.py`` load harness — hundreds
of these clients run concurrently inside one event loop.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.serve.protocol import decode_chunked


@dataclass
class HttpReply:
    """One parsed response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)  # keys lower-cased
    body: bytes = b""

    def json(self) -> Any:
        return json.loads(self.body) if self.body else None

    @property
    def retry_after(self) -> float | None:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    body: bytes | None = None,
    headers: Mapping[str, str] | None = None,
) -> HttpReply:
    """Issue one request; the response body is fully read (chunked
    transfer is reassembled) before returning."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        lines = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}", "Connection: close"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if body is not None:
            lines.append(f"Content-Length: {len(body)}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + (body or b""))
        await writer.drain()

        head = await reader.readuntil(b"\r\n\r\n")
        status_line, _, header_block = head.decode("latin-1").partition("\r\n")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ValueError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        reply_headers: dict[str, str] = {}
        for line in header_block.strip().split("\r\n"):
            if not line:
                continue
            name, _, value = line.partition(":")
            reply_headers[name.strip().lower()] = value.strip()

        if "content-length" in reply_headers:
            payload = await reader.readexactly(int(reply_headers["content-length"]))
        else:
            payload = await reader.read()  # Connection: close delimits
        if reply_headers.get("transfer-encoding", "").lower() == "chunked":
            payload = decode_chunked(payload)
        return HttpReply(status=status, headers=reply_headers, body=payload)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


class ServeError(Exception):
    """A non-success response where success was required."""

    def __init__(self, reply: HttpReply, what: str):
        try:
            detail = reply.json().get("error", "")
        except Exception:
            detail = reply.body.decode("utf-8", "replace")
        super().__init__(f"{what}: HTTP {reply.status}: {detail}")
        self.reply = reply


class ServeClient:
    """Typed front door to one run server."""

    def __init__(self, host: str, port: int, *, tenant: str | None = None):
        self.host = host
        self.port = port
        self.tenant = tenant

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        return headers

    async def submit_raw(self, request: Mapping[str, Any]) -> HttpReply:
        """POST /runs without interpreting the status (429s included)."""
        body = json.dumps(dict(request)).encode()
        return await http_request(
            self.host, self.port, "POST", "/runs", body=body, headers=self._headers()
        )

    async def submit(self, benchmark: str, **fields: Any) -> dict[str, Any]:
        """Submit one run; returns the accepted-submission JSON.

        Raises :class:`ServeError` on any non-2xx (incl. 429) — load
        clients that want to back off use :meth:`submit_raw`.
        """
        reply = await self.submit_raw({"benchmark": benchmark, **fields})
        if reply.status not in (200, 202):
            raise ServeError(reply, f"submit {benchmark}")
        return reply.json()

    async def status(self, run_id: str, *, wait: float | None = None) -> dict[str, Any]:
        path = f"/runs/{run_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        reply = await http_request(self.host, self.port, "GET", path, headers=self._headers())
        if reply.status != 200:
            raise ServeError(reply, f"status {run_id}")
        return reply.json()

    async def result(self, run_id: str, *, timeout: float = 120.0) -> dict[str, Any]:
        """Long-poll until the run finishes; returns the final status."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise TimeoutError(f"run {run_id} did not finish within {timeout:g}s")
            status = await self.status(run_id, wait=min(remaining, 30.0))
            if status["state"] in ("done", "failed"):
                return status

    async def telemetry(self, run_id: str, *, wait: float = 60.0) -> str:
        """The run's full JSONL telemetry stream as text."""
        path = f"/runs/{run_id}/telemetry?wait={wait:g}"
        reply = await http_request(self.host, self.port, "GET", path, headers=self._headers())
        if reply.status != 200:
            raise ServeError(reply, f"telemetry {run_id}")
        return reply.body.decode("utf-8")

    async def healthz(self) -> dict[str, Any]:
        reply = await http_request(self.host, self.port, "GET", "/healthz")
        if reply.status != 200:
            raise ServeError(reply, "healthz")
        return reply.json()

    async def stats(self) -> dict[str, Any]:
        reply = await http_request(self.host, self.port, "GET", "/stats")
        if reply.status != 200:
            raise ServeError(reply, "stats")
        return reply.json()
