"""The run server: simulation-as-a-service over HTTP.

``repro serve`` turns the one-call :class:`repro.api.Session` facade
into long-lived, traffic-serving infrastructure: an asyncio HTTP
service multiplexing many concurrent clients over one shared,
content-addressed result cache.  The moving parts:

- :mod:`repro.serve.protocol` — a hand-rolled HTTP/1.1 layer over
  ``asyncio`` streams (no dependencies beyond the stdlib);
- :mod:`repro.serve.quotas` — per-tenant token-bucket admission;
- :mod:`repro.serve.queue` — the run request model, campaign-identical
  cache keys, and the bounded admission-controlled queue;
- :mod:`repro.serve.server` — the service itself: routes, the worker
  pool executing runs through the campaign cell path in a
  ``ProcessPoolExecutor``, chunked JSONL telemetry streaming, and
  ``/stats`` introspection in the paper's counter-name grammar;
- :mod:`repro.serve.client` — a minimal asyncio client used by the
  tests, the CI smoke, and ``benchmarks/bench_serve.py``.
"""

from repro.serve.client import HttpReply, ServeClient, http_request
from repro.serve.protocol import HttpError, HttpRequest
from repro.serve.queue import QueueFull, RunQueue, RunRecord, RunRequest, RunState
from repro.serve.quotas import QuotaConfig, TenantQuotas, TokenBucket
from repro.serve.server import RunServer, ServerConfig, serve_forever

__all__ = [
    "HttpError",
    "HttpReply",
    "HttpRequest",
    "QueueFull",
    "QuotaConfig",
    "RunQueue",
    "RunRecord",
    "RunRequest",
    "RunServer",
    "RunState",
    "ServeClient",
    "ServerConfig",
    "TenantQuotas",
    "TokenBucket",
    "http_request",
    "serve_forever",
]
