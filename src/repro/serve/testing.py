"""Spawn a real ``repro serve`` process and talk to it.

Shared by the serve test-suite's subprocess test, the CI ``serve-smoke``
job, and ``benchmarks/bench_serve.py`` — anything that wants the
genuine article (own process, own pool) rather than an in-loop
:class:`~repro.serve.server.RunServer`.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from contextlib import contextmanager, suppress
from dataclasses import dataclass
from typing import Any, Iterator

_BANNER = re.compile(r"serving on ([\d.]+):(\d+)")


@dataclass
class SpawnedServer:
    """Handle on a live ``repro serve`` subprocess."""

    host: str
    port: int
    process: subprocess.Popen


def _read_banner(process: subprocess.Popen, timeout: float) -> tuple[str, int]:
    """Wait for the 'serving on HOST:PORT' announcement line."""
    assert process.stdout is not None
    fd = process.stdout.fileno()
    os.set_blocking(fd, False)
    deadline = time.monotonic() + timeout
    buffer = b""
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"repro serve exited with {process.returncode} before announcing: "
                f"{buffer.decode('utf-8', 'replace')!r}"
            )
        try:
            chunk = os.read(fd, 4096)
        except BlockingIOError:
            chunk = b""
        if chunk:
            buffer += chunk
            match = _BANNER.search(buffer.decode("utf-8", "replace"))
            if match:
                return match.group(1), int(match.group(2))
        else:
            time.sleep(0.02)
    raise TimeoutError(f"repro serve did not announce within {timeout:g}s: {buffer!r}")


@contextmanager
def spawn_server(
    *,
    workers: int = 2,
    max_queue: int = 256,
    cache_dir: str | os.PathLike[str] | None = None,
    no_cache: bool = False,
    quota_rate: float | None = None,
    quota_burst: float | None = None,
    timeout: float = 60.0,
    env: dict[str, str] | None = None,
) -> Iterator[SpawnedServer]:
    """Start ``repro serve --port 0`` and yield its address.

    The server's stderr passes through (visible in test/CI logs); the
    process is terminated on exit from the ``with`` block.
    """
    cmd: list[Any] = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--workers",
        str(workers),
        "--max-queue",
        str(max_queue),
    ]
    if cache_dir is not None:
        cmd += ["--cache-dir", os.fspath(cache_dir)]
    if no_cache:
        cmd.append("--no-cache")
    if quota_rate is not None:
        cmd += ["--quota-rate", str(quota_rate)]
    if quota_burst is not None:
        cmd += ["--quota-burst", str(quota_burst)]
    full_env = dict(os.environ)
    # Make the spawned interpreter see the same source tree whether or
    # not the package is pip-installed.
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    full_env["PYTHONPATH"] = src + os.pathsep + full_env.get("PYTHONPATH", "")
    full_env.update(env or {})
    # Own session: the server and its process-pool workers form one
    # process group we can reap wholesale on exit.
    process = subprocess.Popen(cmd, stdout=subprocess.PIPE, env=full_env, start_new_session=True)
    try:
        host, port = _read_banner(process, timeout)
        yield SpawnedServer(host=host, port=port, process=process)
    finally:
        process.terminate()  # the server shuts its pool down on SIGTERM
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
        if hasattr(os, "killpg"):
            # Backstop: nothing from the group may outlive the context —
            # a straggler would hold inherited pipes (and CI jobs) open.
            with suppress(ProcessLookupError, PermissionError):
                os.killpg(process.pid, signal.SIGKILL)
