"""Minimal HTTP/1.1 wire protocol over asyncio streams.

The run server deliberately avoids web frameworks and even the stdlib
``http.server`` thread model: requests are parsed straight off an
``asyncio.StreamReader`` and responses are written as bytes, which is
all a JSON-over-HTTP service needs and keeps the whole wire layer
auditable in one screen.  Responses close the connection (the load
profile is many short-lived clients, not few chatty ones); streaming
endpoints use ``Transfer-Encoding: chunked``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

#: Reason phrases for the status codes the server actually emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies beyond this are rejected with 413.
MAX_BODY_BYTES = 1 << 20
#: Request line + headers beyond this are rejected with 400.
MAX_HEADER_BYTES = 1 << 16


class HttpError(Exception):
    """A protocol-level failure that maps onto an HTTP error response."""

    def __init__(self, status: int, message: str, headers: Mapping[str, str] | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)  # keys lower-cased
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON; raises :class:`HttpError` 400."""
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


async def read_request(reader: Any) -> HttpRequest | None:
    """Parse one request off *reader*; None on a cleanly closed peer."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteReadError (EOF), LimitOverrun, reset
        if isinstance(exc, asyncio.IncompleteReadError) and not exc.partial:
            return None
        if isinstance(exc, asyncio.LimitOverrunError):
            raise HttpError(400, "request head too large") from exc
        raise HttpError(400, "malformed request head") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 can't fail
        raise HttpError(400, "undecodable request head") from exc
    request_line, _, header_block = text.partition("\r\n")
    parts = request_line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "invalid Content-Length") from exc
        if length < 0:
            raise HttpError(400, "invalid Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body larger than {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpError(400, "chunked request bodies are not supported")
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query={k: v for k, v in parse_qsl(split.query)},
        headers=headers,
        body=body,
    )


def _head(status: int, headers: Mapping[str, str]) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    headers: Mapping[str, str] | None = None,
) -> bytes:
    """A complete ``Connection: close`` response as bytes."""
    all_headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close",
        **(headers or {}),
    }
    return _head(status, all_headers) + body


def json_response(status: int, payload: Any, *, headers: Mapping[str, str] | None = None) -> bytes:
    body = (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode()
    return response(status, body, headers=headers)


def error_response(exc: HttpError) -> bytes:
    return json_response(exc.status, {"error": exc.message}, headers=exc.headers)


def chunked_head(
    status: int = 200,
    *,
    content_type: str = "application/jsonl",
    headers: Mapping[str, str] | None = None,
) -> bytes:
    """Response head opening a chunked-transfer stream."""
    all_headers = {
        "Content-Type": content_type,
        "Transfer-Encoding": "chunked",
        "Connection": "close",
        **(headers or {}),
    }
    return _head(status, all_headers)


def chunk(data: bytes) -> bytes:
    """One chunked-transfer frame (empty *data* would terminate: use
    :func:`last_chunk` for that instead)."""
    return f"{len(data):x}\r\n".encode() + data + b"\r\n"


def last_chunk() -> bytes:
    return b"0\r\n\r\n"


def decode_chunked(payload: bytes) -> bytes:
    """Reassemble a chunked-transfer body (the client side)."""
    out = bytearray()
    view = payload
    while True:
        size_line, sep, rest = view.partition(b"\r\n")
        if not sep:
            raise ValueError("truncated chunked body (missing size line)")
        try:
            size = int(size_line.split(b";")[0], 16)
        except ValueError as exc:
            raise ValueError(f"bad chunk size {size_line!r}") from exc
        if size == 0:
            return bytes(out)
        if len(rest) < size + 2:
            raise ValueError("truncated chunked body (short chunk)")
        out += rest[:size]
        if rest[size : size + 2] != b"\r\n":
            raise ValueError("bad chunk terminator")
        view = rest[size + 2 :]
