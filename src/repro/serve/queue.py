"""Run requests, run records, and the admission-controlled queue.

A :class:`RunRequest` is the JSON body of ``POST /runs`` validated into
the exact shape of one campaign cell: it lowers to a single-cell
:class:`~repro.campaign.spec.CampaignSpec` plus its
:class:`~repro.campaign.spec.Cell`, and its cache key *is*
:func:`repro.campaign.spec.cell_cache_key` over that pair.  That makes
the server's shared :class:`~repro.campaign.cache.ResultCache`
interchangeable with campaign caches: a run executed by the server is
a cache hit for ``repro campaign`` and vice versa.

:class:`RunQueue` is a bounded FIFO whose overflow raises
:class:`QueueFull` — the server maps that onto ``429`` with a
``Retry-After`` estimated from recent run durations.
"""

from __future__ import annotations

import asyncio
import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.campaign.spec import CampaignSpec, Cell, cell_cache_key
from repro.platform.presets import resolve_platform
from repro.platform.spec import PlatformSpec
from repro.workloads import WorkloadSpec, available_workloads, get_workload

#: Root seed applied when a request does not pin one (the paper default
#: used by campaigns, so unseeded server runs hit campaign cells).
DEFAULT_SEED = 20160523

_PRESETS = ("small", "default", "large", "paper")
_RUNTIMES = ("hpx", "std")


class RunState(str, enum.Enum):
    """Lifecycle of one submitted run."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class BadRequest(ValueError):
    """Request body failed validation; the message is client-facing."""


@dataclass(frozen=True)
class RunRequest:
    """Validated form of a ``POST /runs`` body."""

    benchmark: str
    runtime: str = "hpx"
    cores: int = 1
    preset: str = "default"
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = DEFAULT_SEED
    platform: str | None = None  # preset name (files stay server-side)
    collect_counters: bool = True

    @classmethod
    def from_json(cls, obj: Any) -> "RunRequest":
        if not isinstance(obj, dict):
            raise BadRequest("request body must be a JSON object")
        unknown = set(obj) - {
            "benchmark",
            "workload",
            "runtime",
            "cores",
            "preset",
            "params",
            "seed",
            "platform",
            "collect_counters",
            "mode",
        }
        if unknown:
            raise BadRequest(f"unknown fields: {', '.join(sorted(unknown))}")
        params = obj.get("params", {})
        if not isinstance(params, dict):
            raise BadRequest("params must be a JSON object")
        mode = obj.get("mode")
        if mode is not None:
            # Execution mode travels as a workload param so it reaches
            # the cell cache key; the top-level field is sugar.
            from repro.exec.modes import resolve_mode

            try:
                params = {**params, "mode": resolve_mode(mode).value}
            except (ValueError, TypeError) as exc:
                raise BadRequest(f"bad mode: {exc}") from exc
        benchmark, params = cls._resolve_workload(obj, params)
        runtime = obj.get("runtime", "hpx")
        if runtime not in _RUNTIMES:
            raise BadRequest(f"unknown runtime {runtime!r}; expected one of {_RUNTIMES}")
        cores = obj.get("cores", 1)
        if not isinstance(cores, int) or isinstance(cores, bool) or cores < 1:
            raise BadRequest(f"cores must be a positive integer, got {cores!r}")
        preset = obj.get("preset", "default")
        if preset not in _PRESETS:
            raise BadRequest(f"unknown preset {preset!r}; expected one of {_PRESETS}")
        seed = obj.get("seed", DEFAULT_SEED)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise BadRequest(f"seed must be an integer, got {seed!r}")
        platform = obj.get("platform")
        if platform is not None:
            from repro.platform.presets import platform_names

            # Preset names only: clients must not reach server-side
            # platform files through this field.
            if not isinstance(platform, str) or platform not in platform_names():
                known = ", ".join(platform_names())
                raise BadRequest(f"unknown platform {platform!r}; presets: {known}")
        collect = obj.get("collect_counters", True)
        if not isinstance(collect, bool):
            raise BadRequest("collect_counters must be a boolean")
        return cls(
            benchmark=benchmark,
            runtime=runtime,
            cores=cores,
            preset=preset,
            params=dict(params),
            seed=seed,
            platform=platform,
            collect_counters=collect,
        )

    @staticmethod
    def _resolve_workload(obj: Mapping[str, Any], params: dict) -> tuple[str, dict]:
        """Resolve ``workload``/``benchmark`` to ``(name, merged params)``.

        ``workload`` accepts the canonical string spelling
        (``"taskbench:shape=fft"``) or the JSON object form
        (``{"name": ..., "params": {...}}``); ``benchmark`` is the
        legacy bare-name field.  Either way the name is validated
        against the workload registry — the error lists every
        registered workload — and the request's ``params`` overlay the
        spec's embedded ones.
        """
        workload = obj.get("workload")
        benchmark = obj.get("benchmark")
        if workload is not None and benchmark is not None:
            raise BadRequest("pass either 'workload' or 'benchmark', not both")
        if workload is not None:
            try:
                if isinstance(workload, str):
                    spec = WorkloadSpec.parse(workload)
                elif isinstance(workload, dict):
                    if not set(workload) <= {"name", "params"}:
                        raise ValueError("workload object allows only 'name' and 'params'")
                    spec = WorkloadSpec.from_json_dict(workload)
                else:
                    raise ValueError("workload must be a string or an object")
            except (ValueError, KeyError, TypeError) as exc:
                raise BadRequest(f"bad workload: {exc}") from exc
            benchmark = spec.name
            params = {**spec.params, **params}
        if not isinstance(benchmark, str) or benchmark not in available_workloads():
            known = ", ".join(available_workloads())
            raise BadRequest(f"unknown workload {benchmark!r}; expected one of: {known}")
        try:
            get_workload(benchmark).benchmark.params_with_defaults(params)
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        return benchmark, dict(params)

    def resolve_platform(self) -> PlatformSpec:
        try:
            return resolve_platform(self.platform)
        except Exception as exc:
            raise BadRequest(f"cannot resolve platform {self.platform!r}: {exc}") from exc

    def to_cell(self) -> tuple[CampaignSpec, Cell]:
        """Lower to the single-cell campaign this run is equivalent to."""
        spec = CampaignSpec(
            benchmarks=(self.benchmark,),
            runtimes=(self.runtime,),
            core_counts=(self.cores,),
            samples=1,
            seed=self.seed,
            preset=self.preset,
            params=dict(self.params),
            platform=self.resolve_platform(),
            collect_counters=self.collect_counters,
        )
        return spec, next(spec.cells())

    def cache_key(self) -> str:
        """Content-addressed key — identical to the campaign cell's."""
        spec, cell = self.to_cell()
        return cell_cache_key(spec, cell)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "runtime": self.runtime,
            "cores": self.cores,
            "preset": self.preset,
            "params": dict(self.params),
            "seed": self.seed,
            "platform": self.platform,
            "collect_counters": self.collect_counters,
        }


@dataclass
class RunRecord:
    """Server-side state of one submitted run."""

    id: str
    tenant: str
    request: RunRequest
    key: str
    state: RunState = RunState.QUEUED
    cached: bool = False
    result: dict[str, Any] | None = None
    error: str | None = None
    submitted_at: float = 0.0  # server-clock seconds (time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def finished(self) -> bool:
        return self.state in (RunState.DONE, RunState.FAILED)

    def status_json(self, *, include_result: bool = True) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state.value,
            "cached": self.cached,
            "key": self.key,
            "request": self.request.to_json_dict(),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.started_at is not None and self.finished_at is not None:
            out["run_seconds"] = self.finished_at - self.started_at
        if include_result and self.result is not None:
            out["result"] = self.result
        return out


class QueueFull(Exception):
    """Admission refused: the bounded queue is at capacity."""

    def __init__(self, depth: int, capacity: int):
        super().__init__(f"run queue full ({depth}/{capacity})")
        self.depth = depth
        self.capacity = capacity


class RunQueue:
    """Bounded FIFO of queued :class:`RunRecord`\\ s.

    Unlike ``asyncio.Queue(maxsize=...)``, ``submit`` never blocks —
    over-capacity submission is an *error* (admission control), not
    back-pressure, because the client is on the other side of an HTTP
    request that should fail fast with 429.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: asyncio.Queue[RunRecord] = asyncio.Queue()

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    def submit(self, record: RunRecord) -> None:
        if self.depth >= self.capacity:
            raise QueueFull(self.depth, self.capacity)
        self._queue.put_nowait(record)

    async def get(self) -> RunRecord:
        return await self._queue.get()

    def task_done(self) -> None:
        self._queue.task_done()
