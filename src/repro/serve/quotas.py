"""Per-tenant admission quotas: classic token buckets.

Tenancy is declared by the ``X-Repro-Tenant`` request header; every
tenant gets an independent bucket refilled at ``rate`` runs/second up
to ``burst`` tokens.  A submit costs one token; an empty bucket yields
the number of seconds until the next token, which the server surfaces
as a ``Retry-After`` header on the 429 response.

The clock is injectable so tests can drive refill deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

#: Tenant assumed when a request carries no ``X-Repro-Tenant`` header.
DEFAULT_TENANT = "anonymous"


@dataclass(frozen=True)
class QuotaConfig:
    """Token-bucket shape applied to every tenant."""

    rate: float = 50.0  # tokens (runs) per second
    burst: float = 100.0  # bucket capacity

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"quota rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"quota burst must be >= 1, got {self.burst}")


class TokenBucket:
    """One tenant's bucket; starts full."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock")

    def __init__(self, rate: float, burst: float, *, clock: Callable[[], float] = time.monotonic):
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._clock = clock
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> float:
        """Take *n* tokens if available.

        Returns 0.0 on success, otherwise the seconds until *n* tokens
        will have accumulated (the ``Retry-After`` hint).
        """
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate


@dataclass
class TenantStats:
    """Per-tenant admission bookkeeping surfaced by ``/stats``."""

    submitted: int = 0
    rejected: int = 0


class TenantQuotas:
    """Bucket-per-tenant admission control."""

    def __init__(
        self, config: QuotaConfig | None = None, *, clock: Callable[[], float] = time.monotonic
    ):
        self.config = config or QuotaConfig()
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.stats: dict[str, TenantStats] = {}

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.config.rate, self.config.burst, clock=self._clock
            )
        return bucket

    def admit(self, tenant: str) -> float:
        """Charge one run to *tenant*; 0.0 if admitted, else retry-after
        seconds (and the rejection is counted)."""
        stats = self.stats.setdefault(tenant, TenantStats())
        retry_after = self.bucket(tenant).try_acquire()
        if retry_after > 0.0:
            stats.rejected += 1
        else:
            stats.submitted += 1
        return retry_after

    def tenants(self) -> list[str]:
        return sorted(self.stats)
