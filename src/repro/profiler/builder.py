"""The streaming profile builder: trace hook in, task DAG out.

:class:`ProfileBuilder` subscribes to the runtime's ProbeBus trace hook
(composing with any other subscriber, e.g. a plain
:class:`~repro.profiler.events.TraceRecorder`) and maintains — while
the run executes — everything the analysis layer needs:

- the task DAG structure (spawn edges from ``create`` events, join
  edges from ``depend`` events), mirroring the node/edge universe of
  the legacy networkx extraction exactly;
- per-task and per-body busy aggregates through the shared
  busy-interval accumulator (one aggregation path with the flat
  profile);
- the ±1 interval deltas behind the time-resolved parallelism profile;
- optionally the raw event list (``keep_events=True``) for
  Chrome-trace export.

Like tracing, profiling perturbs: attaching charges
:data:`~repro.profiler.events.TRACE_EVENT_NS` per event to the
runtime, so a profiled run is *not* bit-identical to an unprofiled one
— what-if replays therefore profile too, keeping baseline and replay
under identical instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.profiler.analysis import (
    DagAnalysis,
    ParallelismPoint,
    analyze_dag,
    parallelism_points,
)
from repro.profiler.events import TRACE_EVENT_NS, TaskEvent
from repro.profiler.report import (
    ParallelismSummary,
    RunProfile,
    _FlatAccumulator,
)
from repro.profiler.whatif import WhatIfResult, WhatIfSpec


@dataclass(frozen=True)
class ProfileConfig:
    """How :meth:`repro.api.Session.run` should profile a run.

    ``profile=True`` is shorthand for the defaults; ``what_if`` lists
    causal experiments to replay after the profiled run; and
    ``keep_events`` retains the raw event stream on the resulting
    :class:`~repro.profiler.report.RunProfile` (needed for Chrome-trace
    export, costs memory proportional to the event count).
    """

    what_if: tuple[WhatIfSpec, ...] = ()
    keep_events: bool = False

    @classmethod
    def coerce(cls, value: "ProfileConfig | bool | None") -> "ProfileConfig | None":
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        return value


class ProfileBuilder:
    """Incremental task-DAG and profile state for one run."""

    def __init__(self, runtime: Any, *, keep_events: bool = False) -> None:
        self.runtime = runtime
        self._acc = _FlatAccumulator()
        self._dag_tids: set[int] = set()
        self._spawns: set[tuple[int, int]] = set()
        self._joins: set[tuple[int, int]] = set()
        self._descriptions: dict[int, str] = {}
        self._events: list[TaskEvent] | None = [] if keep_events else None
        self._event_count = 0
        self._attached = False
        self._analysis_cache: tuple[int, DagAnalysis] | None = None

    # -- life cycle ------------------------------------------------------

    def attach(self) -> None:
        """Subscribe to the trace hook and start charging the event cost."""
        if self._attached:
            return
        self._attached = True
        self.runtime.probes.subscribe_trace(self._on_event)
        self.runtime.add_instrumentation(TRACE_EVENT_NS)

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        self.runtime.probes.unsubscribe_trace(self._on_event)
        self.runtime.add_instrumentation(-TRACE_EVENT_NS)

    def __enter__(self) -> "ProfileBuilder":
        self.attach()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # -- the trace hook --------------------------------------------------

    def _on_event(self, time_ns: int, kind: str, task: Any, aux: int | None) -> None:
        tid = task.tid
        self._event_count += 1
        if kind == "create":
            self._descriptions[tid] = task.description
            self._dag_tids.add(tid)
            parent = task.parent_tid
            if parent is not None:
                self._dag_tids.add(parent)
                self._spawns.add((parent, tid))
        elif kind == "depend":
            # aux is the producer tid for join edges.
            self._descriptions.setdefault(tid, task.description)
            if aux is not None:
                self._dag_tids.add(tid)
                self._dag_tids.add(aux)
                self._joins.add((aux, tid))
        else:
            self._descriptions.setdefault(tid, task.description)
        self._acc.feed(time_ns, kind, tid, task.description)
        if self._events is not None:
            if kind == "depend":
                worker: int | None = None
                related: int | None = aux
            elif kind == "create":
                worker, related = aux, task.parent_tid
            else:
                worker, related = aux, None
            self._events.append(
                TaskEvent(
                    time_ns=time_ns,
                    kind=kind,
                    tid=tid,
                    description=task.description,
                    worker=worker,
                    related=related,
                )
            )

    # -- live views (the /profiler counters read these) ------------------

    @property
    def event_count(self) -> int:
        return self._event_count

    @property
    def work_ns(self) -> int:
        """Total busy time closed so far, across all profiled tasks."""
        return self._acc.total_busy_ns

    @property
    def active_count(self) -> int:
        """Task bodies busy right now — instantaneous logical parallelism."""
        return self._acc.active_count

    def body_busy_ns(self, body: str) -> int:
        profile = self._acc.profiles.get(body)
        return profile.busy_ns if profile is not None else 0

    def body_names(self) -> tuple[str, ...]:
        return tuple(self._acc.profiles)

    # -- analysis --------------------------------------------------------

    def analysis(self) -> DagAnalysis:
        """Work/span/critical-path of the DAG built so far (cached)."""
        cached = self._analysis_cache
        if cached is not None and cached[0] == self._event_count:
            return cached[1]
        result = self._analyze(scale=None)
        self._analysis_cache = (self._event_count, result)
        return result

    def scaled_analysis(self, body: str, factor: float) -> DagAnalysis:
        """The DAG re-analysed with *body* weights scaled (what-if)."""
        return self._analyze(scale=(body, factor))

    def _analyze(self, *, scale: tuple[str, float] | None) -> DagAnalysis:
        return analyze_dag(
            tids=self._dag_tids,
            busy=self._acc.task_busy,
            description=self._descriptions,
            spawns=self._spawns,
            joins=self._joins,
            scale=scale,
        )

    def parallelism(self) -> tuple[ParallelismPoint, ...]:
        return parallelism_points(self._acc.deltas)

    # -- the report ------------------------------------------------------

    def finalize(
        self,
        *,
        workload: str,
        runtime: str,
        cores: int,
        makespan_ns: int,
        what_if: tuple[WhatIfResult, ...] = (),
    ) -> RunProfile:
        """Freeze the builder state into the post-run report."""
        analysis = self.analysis()
        points = self.parallelism()
        mean = self._acc.total_busy_ns / makespan_ns if makespan_ns else 0.0
        peak = max((p.active for p in points), default=0)
        flat = tuple(
            sorted(self._acc.profiles.values(), key=lambda p: (-p.busy_ns, p.name))
        )
        return RunProfile(
            workload=workload,
            runtime=runtime,
            cores=cores,
            makespan_ns=makespan_ns,
            work_ns=analysis.work_ns,
            span_ns=analysis.span_ns,
            tasks=analysis.tasks,
            edges=analysis.edges,
            flat=flat,
            critical_path=analysis.critical_path,
            critical_body_ns=analysis.critical_body_ns,
            parallelism=ParallelismSummary(mean=mean, peak=peak, points=points),
            what_if=what_if,
            trace_events=self._event_count,
            events=tuple(self._events) if self._events is not None else None,
        )
