"""Work/span, critical-path and parallelism analysis of the task DAG.

Pure-stdlib reimplementation of the classic fork/join analysis the
legacy :mod:`repro.trace.dag` module performs with networkx (which is a
test-only dependency): each task contributes an ``s`` (spawn-phase)
node carrying its busy time and a zero-weight ``e`` (join-phase) node,
spawn edges run parent-s → child-s, join edges producer-e → waiter-e.
On that DAG:

- **work** ``T1`` is the total task busy time;
- **span** ``T∞`` is the longest weighted path — the critical path;
- **average parallelism** ``T1/T∞`` is Brent's speedup ceiling.

Task-level granularity slightly over-approximates the span of tasks
that interleave spawning with computing (exact for fork/join trees that
compute before spawning or after joining) — see ``docs/profiler.md``.

All tie-breaks are deterministic: the critical path prefers the
predecessor with the smallest node id among equals, and the path end is
the smallest node id among maxima, so equal traces always analyse to
the identical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Iterable, Mapping, Sequence


@dataclass(frozen=True)
class CriticalStep:
    """One task on the critical path, with its contributed busy time."""

    tid: int
    description: str
    busy_ns: int


@dataclass(frozen=True)
class ParallelismPoint:
    """One change point of the time-resolved parallelism profile."""

    time_ns: int
    active: int


@dataclass(frozen=True)
class DagAnalysis:
    """Work/span summary plus the extracted critical path."""

    work_ns: int
    span_ns: int
    tasks: int
    edges: int
    critical_path: tuple[CriticalStep, ...]
    #: Per-body attribution of the critical path, busiest first.
    critical_body_ns: tuple[tuple[str, int], ...]

    @property
    def average_parallelism(self) -> float:
        return self.work_ns / self.span_ns if self.span_ns else 0.0

    @property
    def critical_busy_ns(self) -> int:
        return sum(step.busy_ns for step in self.critical_path)


def analyze_dag(
    *,
    tids: Collection[int],
    busy: Mapping[int, int],
    description: Mapping[int, str],
    spawns: Collection[tuple[int, int]],
    joins: Collection[tuple[int, int]],
    scale: tuple[str, float] | None = None,
) -> DagAnalysis:
    """Analyse the phase-split task DAG.

    ``scale=(body, factor)`` re-weights every task of that body by
    *factor* before the longest-path computation — the virtual-speedup
    half of a what-if experiment.  ``factor=1.0`` reproduces the
    baseline analysis exactly (integer weights are untouched).
    """
    body = factor = None
    if scale is not None:
        body, factor = scale

    def weight(tid: int) -> int:
        w = busy.get(tid, 0)
        if factor is not None and description.get(tid) == body:
            w = int(round(w * factor))
        return w

    if not tids:
        return DagAnalysis(
            work_ns=0, span_ns=0, tasks=0, edges=0, critical_path=(), critical_body_ns=()
        )

    # Node encoding: s(tid) = 2*tid, e(tid) = 2*tid+1.
    preds: dict[int, list[int]] = {}
    succs: dict[int, list[int]] = {}
    nodes: list[int] = []
    for tid in tids:
        s, e = 2 * tid, 2 * tid + 1
        nodes.append(s)
        nodes.append(e)
        preds.setdefault(s, [])
        preds.setdefault(e, []).append(s)  # internal s -> e edge
        succs.setdefault(s, []).append(e)
        succs.setdefault(e, [])
    for parent, child in spawns:
        preds[2 * child].append(2 * parent)
        succs[2 * parent].append(2 * child)
    for producer, waiter in joins:
        preds[2 * waiter + 1].append(2 * producer + 1)
        succs[2 * producer + 1].append(2 * waiter + 1)

    order = _topological_order(nodes, preds, succs)

    dist: dict[int, int] = {}
    best_pred: dict[int, int | None] = {}
    for node in order:
        own = weight(node // 2) if node % 2 == 0 else 0
        best: int | None = None
        best_dist = 0
        for p in preds[node]:
            d = dist[p]
            if best is None or d > best_dist or (d == best_dist and p < best):
                best, best_dist = p, d
        dist[node] = best_dist + own
        best_pred[node] = best

    end: int | None = None
    span = 0
    for node in order:
        d = dist[node]
        if end is None or d > span or (d == span and node < end):
            end, span = node, d

    chain: list[int] = []
    node = end
    while node is not None:
        if node % 2 == 0:
            chain.append(node // 2)
        node = best_pred[node]
    chain.reverse()

    steps = tuple(
        CriticalStep(tid=tid, description=description.get(tid, "?"), busy_ns=weight(tid))
        for tid in chain
    )
    by_body: dict[str, int] = {}
    for step in steps:
        by_body[step.description] = by_body.get(step.description, 0) + step.busy_ns

    return DagAnalysis(
        work_ns=sum(weight(tid) for tid in tids),
        span_ns=span,
        tasks=len(tids),
        edges=len(spawns) + len(joins),
        critical_path=steps,
        critical_body_ns=tuple(sorted(by_body.items(), key=lambda kv: (-kv[1], kv[0]))),
    )


def _topological_order(
    nodes: Sequence[int],
    preds: Mapping[int, list[int]],
    succs: Mapping[int, list[int]],
) -> list[int]:
    """Kahn's algorithm; raises on cycles (a corrupt trace)."""
    indegree = {node: len(preds[node]) for node in nodes}
    ready = sorted(node for node in nodes if indegree[node] == 0)
    order: list[int] = []
    head = 0
    while head < len(ready):
        node = ready[head]
        head += 1
        order.append(node)
        for succ in succs[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(nodes):
        raise ValueError("trace produced a cyclic dependency graph")
    return order


def parallelism_points(deltas: Iterable[tuple[int, int]]) -> tuple[ParallelismPoint, ...]:
    """Collapse raw ±1 interval deltas into profile change points.

    *deltas* come from the interval accumulator in event order (one
    ``+1`` per busy-interval open, one ``-1`` per close); simultaneous
    deltas merge into a single point carrying the settled count.
    """
    points: list[ParallelismPoint] = []
    active = 0
    last_time: int | None = None
    for time_ns, delta in deltas:
        active += delta
        if last_time == time_ns:
            points[-1] = ParallelismPoint(time_ns=time_ns, active=active)
        else:
            points.append(ParallelismPoint(time_ns=time_ns, active=active))
            last_time = time_ns
    return tuple(points)
