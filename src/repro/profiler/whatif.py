"""Causal what-if experiments: "speed up task body X by N%".

TASKPROF-style virtual speedups, in two halves:

- **prediction** — re-weight the recorded task DAG (every task of the
  chosen body scaled by ``1 - pct/100``) and push baseline makespan
  through Brent's bound ``T_P ≈ (W - S)/P + S``;
- **validation** — actually rewrite the work costs through
  :meth:`~repro.exec.interp.EffectInterpreter.set_compute_rewriter`
  and replay the run through the exact DES engine.

The 0 % experiment is the built-in soundness check: the rewriter
returns the identical :class:`~repro.model.work.Work` objects
(``scaled(1.0)`` is ``self``), so the replay is bit-identical to the
baseline and the predicted delta is exactly zero.  What-if replays are
exact-mode only — cohort runs collapse task populations and have no
per-task DAG to rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Collection


@dataclass(frozen=True)
class WhatIfSpec:
    """One requested experiment: speed *body* up by *speedup_pct* percent."""

    body: str
    speedup_pct: float

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("what-if experiment needs a task body name")
        if not 0.0 <= self.speedup_pct <= 100.0:
            raise ValueError(
                f"what-if speedup must be between 0 and 100 percent, got {self.speedup_pct}"
            )

    @property
    def factor(self) -> float:
        """Cost multiplier applied to the body's work (1.0 at 0 %)."""
        return 1.0 - self.speedup_pct / 100.0


def parse_what_if(text: str) -> WhatIfSpec:
    """Parse the CLI spelling ``body=NAME,speedup=PCT``."""
    fields: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad what-if field {part!r}; expected body=NAME,speedup=PCT")
        key, value = part.split("=", 1)
        fields[key.strip()] = value.strip()
    unknown = set(fields) - {"body", "speedup"}
    if unknown:
        raise ValueError(f"unknown what-if field(s) {', '.join(sorted(unknown))!s}")
    if "body" not in fields or "speedup" not in fields:
        raise ValueError(f"what-if spec {text!r} must provide both body= and speedup=")
    try:
        pct = float(fields["speedup"])
    except ValueError:
        raise ValueError(f"what-if speedup {fields['speedup']!r} is not a number") from None
    return WhatIfSpec(body=fields["body"], speedup_pct=pct)


def resolve_body(name: str, bodies: Collection[str]) -> str:
    """Resolve a user-spelled body name: exact, else unique substring."""
    if name in bodies:
        return name
    matches = sorted(b for b in bodies if name in b)
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise ValueError(
            f"unknown task body {name!r}; profiled bodies: {', '.join(sorted(bodies))}"
        )
    raise ValueError(f"ambiguous task body {name!r}; matches: {', '.join(matches)}")


class BodyRewriter:
    """The work rewriter for one experiment (counts its rewrites)."""

    __slots__ = ("body", "factor", "rewritten")

    def __init__(self, body: str, factor: float) -> None:
        self.body = body
        self.factor = factor
        self.rewritten = 0

    def __call__(self, task: Any, work: Any) -> Any:
        if task.description != self.body:
            return work
        self.rewritten += 1
        return work.scaled(self.factor)


def predict_makespan_ns(
    *,
    baseline_makespan_ns: int,
    cores: int,
    base_work_ns: int,
    base_span_ns: int,
    scaled_work_ns: int,
    scaled_span_ns: int,
) -> int:
    """Brent-bound prediction of the rewritten run's makespan.

    Both runs are modelled as ``T_P ≈ (W - S)/P + S`` and the baseline
    makespan is scaled by the ratio — runtime overheads (which the DAG
    does not see) are assumed to scale with the modelled time.  With
    unchanged weights the ratio is exactly 1.
    """
    base = max(base_work_ns - base_span_ns, 0) / cores + base_span_ns
    scaled = max(scaled_work_ns - scaled_span_ns, 0) / cores + scaled_span_ns
    if base <= 0:
        return baseline_makespan_ns
    return round(baseline_makespan_ns * scaled / base)


@dataclass(frozen=True)
class WhatIfResult:
    """One validated experiment: prediction vs the replayed DES run."""

    body: str
    speedup_pct: float
    baseline_makespan_ns: int
    predicted_makespan_ns: int
    replayed_makespan_ns: int
    rewritten_computes: int
    scaled_work_ns: int
    scaled_span_ns: int

    @property
    def predicted_speedup(self) -> float:
        if not self.predicted_makespan_ns:
            return 0.0
        return self.baseline_makespan_ns / self.predicted_makespan_ns

    @property
    def realized_speedup(self) -> float:
        if not self.replayed_makespan_ns:
            return 0.0
        return self.baseline_makespan_ns / self.replayed_makespan_ns

    @property
    def prediction_error(self) -> float:
        """Signed relative error of the prediction vs the replay."""
        if not self.replayed_makespan_ns:
            return 0.0
        return (
            self.predicted_makespan_ns - self.replayed_makespan_ns
        ) / self.replayed_makespan_ns

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "body": self.body,
            "speedup_pct": self.speedup_pct,
            "baseline_makespan_ns": self.baseline_makespan_ns,
            "predicted_makespan_ns": self.predicted_makespan_ns,
            "replayed_makespan_ns": self.replayed_makespan_ns,
            "rewritten_computes": self.rewritten_computes,
            "scaled_work_ns": self.scaled_work_ns,
            "scaled_span_ns": self.scaled_span_ns,
            "predicted_speedup": round(self.predicted_speedup, 6),
            "realized_speedup": round(self.realized_speedup, 6),
            "prediction_error": round(self.prediction_error, 6),
        }

    def render(self) -> str:
        return (
            f"{self.body} -{self.speedup_pct:g}%: "
            f"predicted {self.predicted_makespan_ns / 1e6:.3f} ms "
            f"({self.predicted_speedup:.3f}x), "
            f"replayed {self.replayed_makespan_ns / 1e6:.3f} ms "
            f"({self.realized_speedup:.3f}x), "
            f"error {100.0 * self.prediction_error:+.2f}% "
            f"[{self.rewritten_computes} computes rewritten]"
        )
