"""The ``/profiler/...`` derived counters (provider ``builtin.profiler``).

Surfaces the causal profiler's state in the paper's own counter
grammar, so telemetry sinks, periodic queries, campaign artifacts and
``repro counters query`` consume profiling data exactly like any other
counter:

- ``/profiler{locality#0/total}/work-ns`` — cumulative busy time of
  all profiled task bodies (monotonic; ``@BODY`` restricts to one
  body, e.g. ``/profiler{locality#0/total}/work-ns@_fib_task``);
- ``/profiler{locality#0/total}/critical-path-ns`` — current span T∞
  of the task DAG built so far (``@BODY`` gives that body's on-path
  attribution);
- ``/profiler{locality#0/total}/work-span-ratio`` — T1/T∞, Brent's
  average parallelism;
- ``/profiler{locality#0/total}/logical-parallelism`` — instantaneous
  number of simultaneously busy task bodies.

Per-body addressing uses ``@parameters`` rather than instances because
instances are discovered before the run starts, when no body has
executed yet.  A parameterized counter reads 0 until its body appears.
The counters only exist when a :class:`~repro.profiler.builder.
ProfileBuilder` is attached to the run (``Session.run(profile=...)``);
the builder itself carries the per-event instrumentation charge, so
these derived counters add none.

``critical-path-ns`` and ``work-span-ratio`` re-analyse the DAG on
read (cached per trace event count) — cheap at query rates, not meant
for per-event sampling.
"""

from __future__ import annotations

from repro.counters.base import (
    CounterEnvironment,
    CounterInfo,
    MonotonicCounter,
    PerformanceCounter,
    RawCounter,
)
from repro.counters.names import CounterName
from repro.counters.registry import CounterRegistry, CounterTypeEntry
from repro.counters.types import CounterType

__all__ = ["register_profiler_counters"]


def _total_only(env: CounterEnvironment) -> list[tuple[str, int | None]]:
    return [("total", None)]


def _check_total(name: CounterName) -> None:
    if name.instance_name != "total":
        raise ValueError(
            f"unknown instance {name.instance_name!r} in {name}; "
            f"/profiler counters only exist on the total instance "
            f"(address bodies with @BODY parameters)"
        )


def register_profiler_counters(registry: CounterRegistry) -> None:
    """Register the ``/profiler/...`` counter types."""

    def work_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        _check_total(name)
        profiler = env.require("profiler")
        body = name.parameters or ""
        if body:
            return MonotonicCounter(name, info, env, lambda: profiler.body_busy_ns(body))
        return MonotonicCounter(name, info, env, lambda: profiler.work_ns)

    def critical_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        _check_total(name)
        profiler = env.require("profiler")
        body = name.parameters or ""
        if body:

            def on_path() -> int:
                return dict(profiler.analysis().critical_body_ns).get(body, 0)

            return RawCounter(name, info, env, on_path)
        return RawCounter(name, info, env, lambda: profiler.analysis().span_ns)

    def ratio_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        _check_total(name)
        profiler = env.require("profiler")
        return RawCounter(name, info, env, lambda: profiler.analysis().average_parallelism)

    def parallelism_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        _check_total(name)
        profiler = env.require("profiler")
        return RawCounter(name, info, env, lambda: profiler.active_count)

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/profiler/work-ns",
                counter_type=CounterType.MONOTONICALLY_INCREASING,
                help_text="Cumulative profiled busy time T1 (@BODY for one task body)",
                unit="ns",
            ),
            factory=work_factory,
            instances=_total_only,
        )
    )
    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/profiler/critical-path-ns",
                counter_type=CounterType.RAW,
                help_text="Span T∞ of the task DAG built so far "
                "(@BODY for that body's on-path busy time)",
                unit="ns",
            ),
            factory=critical_factory,
            instances=_total_only,
        )
    )
    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/profiler/work-span-ratio",
                counter_type=CounterType.RAW,
                help_text="Average parallelism T1/T∞ (Brent's speedup ceiling)",
            ),
            factory=ratio_factory,
            instances=_total_only,
        )
    )
    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/profiler/logical-parallelism",
                counter_type=CounterType.RAW,
                help_text="Instantaneous number of simultaneously busy task bodies",
            ),
            factory=parallelism_factory,
            instances=_total_only,
        )
    )
