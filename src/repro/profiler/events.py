"""The task-event model shared by the profiler and the legacy trace.

One :class:`TaskEvent` per task life-cycle transition, delivered by the
ProbeBus trace hook.  Recording has a cost — each event charges
:data:`TRACE_EVENT_NS` of instrumentation to the runtime (tracing
perturbs; the in-situ counters are the cheap path), exactly like the
post-mortem tools the paper contrasts the counter framework with.

Busy-interval semantics (shared by every consumer in this package):
only ``activate`` opens a busy interval and ``suspend``/``terminate``
close it.  ``resume`` marks a task being re-staged onto a run queue —
execution resumes at the *next* ``activate`` — so it never opens an
interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Per-event recording cost charged to the runtime while tracing
#: (buffer write + timestamp; post-mortem tools pay at least this).
TRACE_EVENT_NS = 35

EVENT_KINDS = ("create", "activate", "suspend", "resume", "terminate", "depend")

#: Total-order rank for events sharing ``(time_ns, tid)``.  Interval
#: *closers* sort before *openers* so that a task which suspends and
#: re-activates at the same instant keeps both intervals (an
#: alphabetical kind sort would order ``activate`` before ``suspend``
#: and silently drop the busy time accumulated before the tie).
#: Structural events sit in between, matching emission order.
_KIND_RANK = {
    "suspend": 0,
    "terminate": 1,
    "depend": 2,
    "create": 3,
    "activate": 4,
    "resume": 5,
}


@dataclass(frozen=True)
class TaskEvent:
    """One recorded life-cycle transition.

    ``related`` carries structural context: the parent tid on
    ``create`` events, the producer tid on ``depend`` (join) events,
    None otherwise.
    """

    time_ns: int
    kind: str  # one of EVENT_KINDS
    tid: int
    description: str  # task body name
    worker: int | None  # executing worker, None for create/depend events
    related: int | None = None


def event_sort_key(event: TaskEvent) -> tuple[int, int, int]:
    """The stable total sort key ``(time_ns, tid, kind-rank)``.

    Events are emitted in time order, so sorting by this key preserves
    the emission order everywhere it is semantically meaningful while
    making ties at the same ``(time_ns, tid)`` deterministic regardless
    of how the event list was assembled or concatenated.
    """
    return (event.time_ns, event.tid, _KIND_RANK[event.kind])


class TraceRecorder:
    """Collects the full event stream of one run.

    Attaches through :meth:`~repro.exec.probes.ProbeBus.subscribe_trace`
    so it composes with other trace consumers (e.g. a live
    :class:`~repro.profiler.builder.ProfileBuilder` on the same run).
    """

    def __init__(self, runtime: Any) -> None:
        self.runtime = runtime
        self.events: list[TaskEvent] = []
        self._attached = False

    # -- life cycle ----------------------------------------------------

    def attach(self) -> None:
        """Start recording (and start charging the per-event cost)."""
        if self._attached:
            return
        self._attached = True
        probes = getattr(self.runtime, "probes", None)
        if probes is not None:
            probes.subscribe_trace(self._record)
        else:
            self.runtime.trace = self._record
        self.runtime.add_instrumentation(TRACE_EVENT_NS)

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        probes = getattr(self.runtime, "probes", None)
        if probes is not None:
            probes.unsubscribe_trace(self._record)
        else:
            self.runtime.trace = None
        self.runtime.add_instrumentation(-TRACE_EVENT_NS)

    def __enter__(self) -> "TraceRecorder":
        self.attach()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # -- recording -------------------------------------------------------

    def _record(self, time_ns: int, kind: str, task: Any, worker: int | None) -> None:
        if kind == "depend":
            # The 4th hook argument is the producer tid for join edges.
            related: int | None = worker
            worker = None
        elif kind == "create":
            related = task.parent_tid
        else:
            related = None
        self.events.append(
            TaskEvent(
                time_ns=time_ns,
                kind=kind,
                tid=task.tid,
                description=task.description,
                worker=worker,
                related=related,
            )
        )

    # -- queries ------------------------------------------------------------

    def events_of_kind(self, kind: str) -> list[TaskEvent]:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}")
        return [e for e in self.events if e.kind == kind]

    def task_count(self) -> int:
        return len({e.tid for e in self.events})
