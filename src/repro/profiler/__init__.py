"""Causal profiling on the ProbeBus (the TASKPROF direction).

The paper's counters answer *how efficiently did the run execute*; this
package answers *where the parallelism went*.  It upgrades the passive
:mod:`repro.trace` recorder into a streaming profiling subsystem in the
style of Yoga & Nagarakatte's TASKPROF ("A Fast Causal Profiler for
Task Parallel Programs"):

- :class:`ProfileBuilder` subscribes to the ProbeBus trace hook and
  incrementally maintains the task DAG, per-body busy aggregates and a
  time-resolved parallelism profile while the run executes;
- :mod:`repro.profiler.analysis` extracts work/span, the critical path
  (with per-body attribution) and logical parallelism from the builder
  state, with no dependency beyond the standard library;
- :mod:`repro.profiler.whatif` implements causal what-if experiments —
  "speed up task body X by N%" — predicted from the DAG via Brent's
  bound and validated by rewriting work costs and replaying the run
  through the exact DES engine;
- :mod:`repro.profiler.counters` surfaces the results in the paper's
  counter grammar (``/profiler{locality#0/total}/critical-path-ns``
  etc.) so telemetry sinks, campaigns and ``repro counters query`` get
  them for free;
- :class:`RunProfile` is the post-run report attached to
  :attr:`repro.experiments.runner.RunResult.profile` and rendered by
  ``repro profile``.

The old :mod:`repro.trace` modules remain as thin re-export shims.
"""

from repro.profiler.analysis import CriticalStep, DagAnalysis, ParallelismPoint
from repro.profiler.builder import ProfileBuilder, ProfileConfig
from repro.profiler.events import EVENT_KINDS, TRACE_EVENT_NS, TaskEvent, TraceRecorder
from repro.profiler.report import FunctionProfile, RunProfile, build_profile, render_profile
from repro.profiler.whatif import WhatIfResult, WhatIfSpec, parse_what_if

__all__ = [
    "CriticalStep",
    "DagAnalysis",
    "EVENT_KINDS",
    "FunctionProfile",
    "ParallelismPoint",
    "ProfileBuilder",
    "ProfileConfig",
    "RunProfile",
    "TRACE_EVENT_NS",
    "TaskEvent",
    "TraceRecorder",
    "WhatIfResult",
    "WhatIfSpec",
    "build_profile",
    "parse_what_if",
    "render_profile",
]
