"""Flat-profile aggregation and the post-run profile report.

:class:`_FlatAccumulator` is the *single* busy-interval engine of the
profiler: the streaming :class:`~repro.profiler.builder.ProfileBuilder`
feeds it live from the trace hook, and the post-mortem
:func:`build_profile` (the legacy ``repro.trace.profile`` entry point)
replays a recorded event list through the identical transitions — one
aggregation path, two call sites.

:class:`RunProfile` is the immutable end product: flat profile,
critical path, parallelism summary and any what-if experiments, as
attached to :attr:`repro.experiments.runner.RunResult.profile` and
printed by ``repro profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.profiler.analysis import CriticalStep, ParallelismPoint
from repro.profiler.events import TaskEvent, event_sort_key
from repro.profiler.whatif import WhatIfResult


@dataclass
class FunctionProfile:
    """Aggregate for one task body (the post-mortem 'function' row)."""

    name: str
    tasks: int = 0
    activations: int = 0
    busy_ns: int = 0

    @property
    def mean_task_ns(self) -> float:
        return self.busy_ns / self.tasks if self.tasks else 0.0


class _FlatAccumulator:
    """Busy-interval state machine shared by live and post-mortem paths.

    Only ``activate`` opens an interval; ``suspend``/``terminate``
    close it (``resume`` is queue re-staging, not execution).  An
    ``activate`` on an already-open task restarts its interval, and a
    close without an open interval is ignored — both defensive
    behaviours inherited from the original aggregator.
    """

    __slots__ = ("profiles", "task_busy", "total_busy_ns", "deltas", "_active", "_activated")

    def __init__(self) -> None:
        self.profiles: dict[str, FunctionProfile] = {}
        self.task_busy: dict[int, int] = {}
        self.total_busy_ns = 0
        #: (time_ns, ±1) per interval open/close, in event order.
        self.deltas: list[tuple[int, int]] = []
        self._active: dict[int, int] = {}
        self._activated: set[int] = set()

    @property
    def active_count(self) -> int:
        """Tasks currently inside a busy interval (logical parallelism *now*)."""
        return len(self._active)

    def feed(self, time_ns: int, kind: str, tid: int, description: str) -> None:
        profile = self.profiles.setdefault(description, FunctionProfile(description))
        if kind == "activate":
            if tid not in self._active:
                self.deltas.append((time_ns, 1))
            self._active[tid] = time_ns
            profile.activations += 1
            if tid not in self._activated:
                self._activated.add(tid)
                profile.tasks += 1
        elif kind == "suspend" or kind == "terminate":
            start = self._active.pop(tid, None)
            if start is not None:
                busy = time_ns - start
                profile.busy_ns += busy
                self.task_busy[tid] = self.task_busy.get(tid, 0) + busy
                self.total_busy_ns += busy
                self.deltas.append((time_ns, -1))


def build_profile(trace: Any) -> dict[str, FunctionProfile]:
    """Flat profile: {task body name: aggregate}.

    Busy time is the sum of activate->(suspend|terminate) intervals —
    the same quantity the ``/threads/time/*`` counters measure live,
    but reconstructed after the fact from the event stream.  Events are
    replayed in the stable total order of
    :func:`~repro.profiler.events.event_sort_key`, so ties at the same
    ``(time_ns, tid)`` aggregate deterministically.
    """
    events: Iterable[TaskEvent] = trace.events if hasattr(trace, "events") else trace
    acc = _FlatAccumulator()
    for event in sorted(events, key=event_sort_key):
        acc.feed(event.time_ns, event.kind, event.tid, event.description)
    return acc.profiles


def render_profile(profiles: dict[str, FunctionProfile]) -> str:
    """Flat-profile text, busiest first."""
    rows = sorted(profiles.values(), key=lambda p: (-p.busy_ns, p.name))
    lines = [
        f"{'task body':30s} {'tasks':>8s} {'activations':>12s} {'busy ms':>10s} {'mean us':>9s}"
    ]
    for p in rows:
        lines.append(
            f"{p.name:30s} {p.tasks:8d} {p.activations:12d} "
            f"{p.busy_ns / 1e6:10.3f} {p.mean_task_ns / 1e3:9.2f}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ParallelismSummary:
    """Time-resolved logical parallelism of one run.

    ``mean`` is the time-weighted average number of simultaneously busy
    task bodies over the makespan; ``peak`` the maximum; ``points`` the
    change-point series (the waterfall the Chrome-trace export draws).
    """

    mean: float
    peak: int
    points: tuple[ParallelismPoint, ...] = ()


@dataclass(frozen=True)
class RunProfile:
    """The causal-profile report of one exact-mode run."""

    workload: str
    runtime: str
    cores: int
    makespan_ns: int
    work_ns: int
    span_ns: int
    tasks: int
    edges: int
    flat: tuple[FunctionProfile, ...]
    critical_path: tuple[CriticalStep, ...]
    critical_body_ns: tuple[tuple[str, int], ...]
    parallelism: ParallelismSummary
    what_if: tuple[WhatIfResult, ...] = ()
    trace_events: int = 0
    #: Raw event stream, only when profiling ran with ``keep_events``
    #: (feeds the Chrome-trace export; excluded from the JSON form).
    events: tuple[TaskEvent, ...] | None = field(default=None, repr=False, compare=False)

    @property
    def average_parallelism(self) -> float:
        """Brent's speedup ceiling T1/T∞."""
        return self.work_ns / self.span_ns if self.span_ns else 0.0

    @property
    def work_span_ratio(self) -> float:
        return self.average_parallelism

    def body_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.flat)

    # -- serialization ---------------------------------------------------

    def to_json_dict(self, *, include_series: bool = False) -> dict[str, Any]:
        """Deterministic plain-dict form (campaign artifacts, ``--json``)."""
        out: dict[str, Any] = {
            "workload": self.workload,
            "runtime": self.runtime,
            "cores": self.cores,
            "makespan_ns": self.makespan_ns,
            "work_ns": self.work_ns,
            "span_ns": self.span_ns,
            "tasks": self.tasks,
            "edges": self.edges,
            "trace_events": self.trace_events,
            "average_parallelism": round(self.average_parallelism, 6),
            "parallelism": {
                "mean": round(self.parallelism.mean, 6),
                "peak": self.parallelism.peak,
            },
            "flat": [
                {
                    "name": p.name,
                    "tasks": p.tasks,
                    "activations": p.activations,
                    "busy_ns": p.busy_ns,
                }
                for p in self.flat
            ],
            "critical_path": [
                {"tid": s.tid, "body": s.description, "busy_ns": s.busy_ns}
                for s in self.critical_path
            ],
            "critical_body_ns": [[body, ns] for body, ns in self.critical_body_ns],
            "what_if": [w.to_json_dict() for w in self.what_if],
        }
        if include_series:
            out["parallelism"]["points"] = [
                [p.time_ns, p.active] for p in self.parallelism.points
            ]
        return out

    # -- rendering -------------------------------------------------------

    def render(self, *, top: int = 10) -> str:
        """Human-readable report (the ``repro profile`` output)."""
        lines = [
            f"profile: {self.workload} · {self.runtime} · {self.cores} cores",
            (
                f"makespan {self.makespan_ns / 1e6:.3f} ms   "
                f"work {self.work_ns / 1e6:.3f} ms   "
                f"span {self.span_ns / 1e6:.3f} ms   "
                f"parallelism {self.average_parallelism:.2f} "
                f"(mean active {self.parallelism.mean:.2f}, peak {self.parallelism.peak})"
            ),
            f"tasks {self.tasks}   edges {self.edges}   trace events {self.trace_events}",
            "",
            f"flat profile (top {min(top, len(self.flat))} of {len(self.flat)} bodies):",
            render_profile({p.name: p for p in self.flat[:top]}),
            "",
            f"critical path ({len(self.critical_path)} steps, "
            f"{sum(s.busy_ns for s in self.critical_path) / 1e6:.3f} ms):",
            _render_critical(self.critical_body_ns, self.span_ns),
        ]
        if self.what_if:
            lines.append("")
            lines.append("what-if experiments:")
            for w in self.what_if:
                lines.append("  " + w.render())
        return "\n".join(lines)


def _render_critical(critical_body_ns: Sequence[tuple[str, int]], span_ns: int) -> str:
    header = f"{'task body':30s} {'on-path ms':>11s} {'% of span':>10s}"
    rows = [header]
    for body, ns in critical_body_ns:
        pct = 100.0 * ns / span_ns if span_ns else 0.0
        rows.append(f"{body:30s} {ns / 1e6:11.3f} {pct:10.1f}")
    return "\n".join(rows)
