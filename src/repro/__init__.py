"""repro — reproduction of "Using Intrinsic Performance Counters to Assess
Efficiency in Task-based Parallel Applications" (Grubel, Kaiser, Huck, Cook,
2016).

The package provides:

- :mod:`repro.simcore` — a discrete-event simulation of a dual-socket
  multicore node (the paper's Ivy Bridge test platform).
- :mod:`repro.runtime` — an HPX-style task runtime: lightweight tasks,
  per-worker queues, work stealing, futures and launch policies.
- :mod:`repro.kernel` — the ``std::async`` baseline: one OS thread per
  task, a time-sliced kernel scheduler and per-thread memory accounting.
- :mod:`repro.counters` — the paper's contribution: an HPX-style
  performance-counter framework (name grammar, discovery, evaluate /
  reset, periodic query).
- :mod:`repro.telemetry` — the streaming sample pipeline every counter
  reading flows through: record model, bounded buffering, pluggable
  sinks (CSV, JSON lines, Chrome trace).
- :mod:`repro.papi` — simulated hardware event counters (offcore
  requests, cycles, instructions) fed by the machine model.
- :mod:`repro.inncabs` — all fourteen Inncabs benchmarks written against
  a runtime-agnostic task API.
- :mod:`repro.workloads` — the unified workload registry and the frozen
  :class:`~repro.workloads.WorkloadSpec` every layer accepts.
- :mod:`repro.taskbench` — parameterized dependency-graph workloads
  (Task Bench shapes) and the METG(eps) sweep driver.
- :mod:`repro.tools` — models of the TAU and HPCToolkit external tools
  used for Table I.
- :mod:`repro.apex` — an APEX-style introspection / adaptation layer.
- :mod:`repro.experiments` — the strong-scaling harness and the
  generators for every table and figure in the paper.

Quickstart::

    from repro import Session, WorkloadSpec
    session = Session(runtime="hpx", cores=4)
    result = session.run(WorkloadSpec.parse("fib"))
    print(result.exec_time_us)
"""

from repro._version import __version__
from repro.api import Session, TelemetryConfig
from repro.experiments.runner import RunResult
from repro.inncabs.suite import available_benchmarks, get_benchmark
from repro.workloads import WorkloadSpec, available_workloads, get_workload

__all__ = [
    "__version__",
    "Session",
    "TelemetryConfig",
    "RunResult",
    "WorkloadSpec",
    "available_benchmarks",
    "available_workloads",
    "get_benchmark",
    "get_workload",
]
