"""The APEX policy engine.

Periodically samples a set of performance counters and runs user
policies over the sample.  Policies return decisions (or ``None``);
every fired decision is recorded with its simulated timestamp, so
adaptation behaviour is fully inspectable after a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.counters.manager import ActiveCounters
from repro.counters.registry import CounterRegistry


@dataclass(frozen=True)
class PolicyDecision:
    """One action taken by a policy."""

    action: str
    value: Any = None


@dataclass
class PolicyRule:
    """A named policy: ``fn(sample, time_ns) -> PolicyDecision | None``.

    *sample* maps counter names to values for the current period
    (counters are reset each period, so rate-like counters read
    per-period values).
    """

    name: str
    fn: Callable[[dict[str, float], int], PolicyDecision | None]


@dataclass
class FiredDecision:
    time_ns: int
    rule: str
    decision: PolicyDecision


class PolicyEngine:
    """Sample counters on a period; apply policies on each sample."""

    def __init__(
        self,
        *,
        engine: Any,
        runtime: Any,
        registry: CounterRegistry,
        counter_specs: Sequence[str],
        period_ns: int,
        rules: Sequence[PolicyRule] = (),
    ) -> None:
        if period_ns <= 0:
            raise ValueError("period_ns must be positive")
        self.engine = engine
        self.runtime = runtime
        self.active = ActiveCounters(registry, counter_specs)
        self.period_ns = period_ns
        self.rules: list[PolicyRule] = list(rules)
        self.history: list[FiredDecision] = []
        self.samples: list[dict[str, float]] = []
        self._running = False

    def add_rule(self, rule: PolicyRule) -> None:
        self.rules.append(rule)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.active.start()
        self.active.reset_active_counters()
        self.engine.schedule(self.period_ns, self._tick)

    def stop(self) -> None:
        self._running = False
        self.active.stop()

    def _tick(self) -> None:
        if not self._running:
            return
        if self.runtime.stats.live_tasks == 0:
            self.stop()
            return
        sample = self.active.evaluate_dict(reset=True)
        self.samples.append(sample)
        for rule in self.rules:
            decision = rule.fn(sample, self.engine.now)
            if decision is not None:
                self.history.append(
                    FiredDecision(time_ns=self.engine.now, rule=rule.name, decision=decision)
                )
        self.engine.schedule(self.period_ns, self._tick)
