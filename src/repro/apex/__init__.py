"""APEX-style introspection and runtime adaptation (Section VII).

APEX "takes advantage of the HPX performance counter framework to
gather arbitrary knowledge about the system and uses the information to
make runtime-adaptive decisions based on user defined policies".  The
paper names this as the purpose the counter framework paves the way
for; this package demonstrates it:

- :class:`~repro.apex.policy.PolicyEngine` samples a set of counters on
  a simulated period and fires user policies on each sample;
- :class:`~repro.apex.throttle.ConcurrencyThrottlePolicy` uses the
  idle-rate and task-duration counters to shrink or grow the number of
  active workers — the paper's "throttling the number of cores used to
  save energy" example.
"""

from repro.apex.policy import PolicyDecision, PolicyEngine, PolicyRule
from repro.apex.throttle import ConcurrencyThrottlePolicy

__all__ = [
    "ConcurrencyThrottlePolicy",
    "PolicyDecision",
    "PolicyEngine",
    "PolicyRule",
]
