"""Counter-driven concurrency throttling.

The paper (Sections V-C and VII) motivates hardware/software counters
"to ascertain information that can be used for decision making such as
throttling the number of cores used to save energy".  This policy does
exactly that: when workers sit idle (idle-rate above the upper bound)
it parks one; when the pool saturates (idle-rate below the lower
bound) it unparks one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apex.policy import PolicyDecision, PolicyRule

IDLE_RATE_COUNTER = "/threads{locality#0/total}/idle-rate"


@dataclass
class ConcurrencyThrottlePolicy:
    """Hysteresis controller over the idle-rate counter.

    idle-rate is in HPX's 0.01 % units (10000 = fully idle).
    """

    runtime: object
    upper_idle: float = 3000.0  # >30% idle: shed a worker
    lower_idle: float = 500.0  # <5% idle: grow back
    min_workers: int = 1

    def rule(self) -> PolicyRule:
        return PolicyRule(name="concurrency-throttle", fn=self._decide)

    def _decide(self, sample: dict[str, float], _now: int) -> PolicyDecision | None:
        idle = sample.get(IDLE_RATE_COUNTER)
        if idle is None:
            raise KeyError(f"throttle policy needs {IDLE_RATE_COUNTER} in its counter set")
        active = self.runtime.active_workers
        if idle > self.upper_idle and active > self.min_workers:
            self.runtime.set_active_workers(active - 1)
            return PolicyDecision(action="park-worker", value=active - 1)
        if idle < self.lower_idle and active < self.runtime.num_workers:
            self.runtime.set_active_workers(active + 1)
            return PolicyDecision(action="unpark-worker", value=active + 1)
        return None
