"""Periodic counter querying — the in-band sampling driver.

Reproduces ``--hpx:print-counter <name> --hpx:print-counter-interval
<ms>``: the named counters are sampled on a fixed simulated interval.
Since the telemetry refactor this class is a thin *cadence driver*: it
owns only the timer chain and the in-band query task; evaluation,
record conversion, buffering and export belong to the
:class:`~repro.telemetry.pipeline.TelemetryPipeline` it drives.

Queries can run *in-band*: each sample executes as an HPX task that
consumes scheduler time proportional to the number of counters queried,
perturbing the application exactly like a real self-monitoring run.
The per-counter cost is a property of the node
(:attr:`repro.platform.spec.PlatformSpec.counter_query_cost_ns`), so
counter-overhead experiments scale with the platform being simulated.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.counters.manager import ActiveCounters
from repro.counters.types import CounterValue
from repro.platform.spec import DEFAULT_COUNTER_QUERY_COST_NS

#: Per-counter in-band query cost on the reference (Table III) node.
#: Kept for backwards compatibility; the live value comes from the
#: platform spec of the runtime being queried.
QUERY_COST_PER_COUNTER_NS = DEFAULT_COUNTER_QUERY_COST_NS

Sink = Callable[[list[CounterValue]], None]


def _validate_sink(sink: Any) -> Sink | None:
    """Check *sink* is callable with one positional argument.

    Raises a clear ``TypeError`` at construction instead of a confusing
    failure at the first sample, long into a simulated run.
    """
    if sink is None:
        return None
    if not callable(sink):
        raise TypeError(
            f"sink must be callable with one argument (the list of CounterValue "
            f"rows), got {type(sink).__name__}: {sink!r}"
        )
    try:
        signature = inspect.signature(sink)
    except (TypeError, ValueError):  # C callables without introspection
        return sink
    try:
        signature.bind([])
    except TypeError:
        raise TypeError(
            f"sink {sink!r} must accept one positional argument "
            "(the list of CounterValue rows); its signature is "
            f"{signature}"
        ) from None
    return sink


class PeriodicQuery:
    """Sample a counter set every *interval_ns*.

    The first argument is either an :class:`ActiveCounters` set (the
    historical form) or a
    :class:`~repro.telemetry.pipeline.TelemetryPipeline`, in which case
    every sample is recorded through the pipeline (frame + sinks) as
    well as kept on :attr:`samples`.

    With ``in_band=True`` (default) each sample is executed as a task on
    the runtime; with ``in_band=False`` sampling is free (an external
    observer).  The query stops itself when the application quiesces
    (no live tasks) so the event queue can drain.
    """

    def __init__(
        self,
        active: Any,
        *,
        engine: Any,
        runtime: Any = None,
        interval_ns: int,
        sink: Sink | None = None,
        in_band: bool = True,
        reset_each_sample: bool = False,
        cost_per_counter_ns: int | None = None,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        # A TelemetryPipeline exposes the resolved counter set plus
        # sample recording; a bare ActiveCounters is driven directly.
        if isinstance(active, ActiveCounters):
            self.pipeline = None
            self.active = active
        elif hasattr(active, "sample") and isinstance(
            getattr(active, "active", None), ActiveCounters
        ):
            self.pipeline = active
            self.active = active.active
        else:
            raise TypeError(
                "PeriodicQuery needs an ActiveCounters set or a TelemetryPipeline, "
                f"got {type(active).__name__}"
            )
        self.engine = engine
        self.runtime = runtime
        self.interval_ns = interval_ns
        self.samples: list[list[CounterValue]] = []
        self.sink = _validate_sink(sink)
        self.in_band = in_band
        self.reset_each_sample = reset_each_sample
        if cost_per_counter_ns is None:
            # The per-counter query cost is platform-derived: faster
            # single-thread nodes walk the counter API proportionally
            # faster (DEFAULT on the paper's Table III node).
            platform = getattr(getattr(runtime, "machine", None), "platform", None)
            cost_per_counter_ns = getattr(
                platform, "counter_query_cost_ns", DEFAULT_COUNTER_QUERY_COST_NS
            )
        if cost_per_counter_ns < 1:
            raise ValueError("cost_per_counter_ns must be >= 1")
        self.cost_per_counter_ns = cost_per_counter_ns
        self._running = False
        # Sampling epoch: bumped on every start().  Ticks and in-band
        # query tasks carry the epoch they were armed under, so a tick
        # that raced with stop() (or a stop/start cycle) is discarded
        # instead of re-arming a second sampling chain.
        self._epoch = 0
        self._timer: Any = None  # Timer handle of the armed tick
        if in_band and runtime is None:
            raise ValueError("in-band queries need a runtime")

    # -- control ------------------------------------------------------------

    def start(self) -> None:
        """Begin sampling (first sample after one interval)."""
        if self._running:
            return
        self._running = True
        self._epoch += 1
        self.active.start()
        self._timer = self.engine.schedule(self.interval_ns, self._tick, self._epoch)

    def stop(self) -> None:
        """Stop sampling.  Idempotent: a second stop (or a stale in-band
        query finishing after an explicit stop) is a no-op, so counter
        instrumentation is only unregistered once."""
        if not self._running:
            return
        self._running = False
        timer, self._timer = self._timer, None
        if timer is not None and timer.active:
            timer.cancel()
        self.active.stop()

    # -- internals -----------------------------------------------------------

    def _app_live(self) -> bool:
        return self.runtime is None or self.runtime.stats.live_tasks > 0

    def _arm(self) -> None:
        self._timer = self.engine.schedule(self.interval_ns, self._tick, self._epoch)

    def _tick(self, epoch: int) -> None:
        self._timer = None
        if not self._running or epoch != self._epoch:
            return  # stale tick: stop() raced with this event
        if not self._app_live():
            self.stop()
            return
        if self.in_band:
            self.runtime.submit(self._query_task, epoch)
        else:
            self._record()
            self._arm()

    def _query_task(self, ctx: Any, epoch: int) -> Any:
        """The in-band query: an HPX task costing time per counter."""
        cost = self.cost_per_counter_ns * len(self.active)
        yield ctx.compute(cost)
        if not self._running or epoch != self._epoch:
            return None  # stopped while the query task was in flight
        self._record()
        if self._app_live():
            self._arm()
        else:
            self.stop()
        return None

    def _record(self) -> None:
        if self.pipeline is not None:
            values = self.pipeline.sample(reset=self.reset_each_sample)
        else:
            values = self.active.evaluate_active_counters(reset=self.reset_each_sample)
        self.samples.append(values)
        if self.sink is not None:
            self.sink(values)
