"""Periodic counter querying — the command-line convenience layer.

Reproduces ``--hpx:print-counter <name> --hpx:print-counter-interval
<ms>``: the named counters are sampled on a fixed simulated interval
and the rows handed to a sink (print, CSV file, list, ...).

Queries can run *in-band*: each sample executes as an HPX task that
consumes scheduler time proportional to the number of counters queried,
perturbing the application exactly like a real self-monitoring run.
This is what the counter-overhead experiment measures.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.counters.manager import ActiveCounters
from repro.counters.types import CounterValue

# Cost of evaluating one counter through the (simulated) counter API
# from an in-band query task.
QUERY_COST_PER_COUNTER_NS = 800

Sink = Callable[[list[CounterValue]], None]


class PeriodicQuery:
    """Sample an :class:`ActiveCounters` set every *interval_ns*.

    With ``in_band=True`` (default) each sample is executed as a task on
    the runtime; with ``in_band=False`` sampling is free (an external
    observer).  The query stops itself when the application quiesces
    (no live tasks) so the event queue can drain.
    """

    def __init__(
        self,
        active: ActiveCounters,
        *,
        engine: Any,
        runtime: Any = None,
        interval_ns: int,
        sink: Sink | None = None,
        in_band: bool = True,
        reset_each_sample: bool = False,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.active = active
        self.engine = engine
        self.runtime = runtime
        self.interval_ns = interval_ns
        self.samples: list[list[CounterValue]] = []
        self.sink = sink
        self.in_band = in_band
        self.reset_each_sample = reset_each_sample
        self._running = False
        # Sampling epoch: bumped on every start().  Ticks and in-band
        # query tasks carry the epoch they were armed under, so a tick
        # that raced with stop() (or a stop/start cycle) is discarded
        # instead of re-arming a second sampling chain.
        self._epoch = 0
        self._timer: Any = None  # Timer handle of the armed tick
        if in_band and runtime is None:
            raise ValueError("in-band queries need a runtime")

    # -- control ------------------------------------------------------------

    def start(self) -> None:
        """Begin sampling (first sample after one interval)."""
        if self._running:
            return
        self._running = True
        self._epoch += 1
        self.active.start()
        self._timer = self.engine.schedule(self.interval_ns, self._tick, self._epoch)

    def stop(self) -> None:
        """Stop sampling.  Idempotent: a second stop (or a stale in-band
        query finishing after an explicit stop) is a no-op, so counter
        instrumentation is only unregistered once."""
        if not self._running:
            return
        self._running = False
        timer, self._timer = self._timer, None
        if timer is not None and timer.active:
            timer.cancel()
        self.active.stop()

    # -- internals -----------------------------------------------------------

    def _app_live(self) -> bool:
        return self.runtime is None or self.runtime.stats.live_tasks > 0

    def _arm(self) -> None:
        self._timer = self.engine.schedule(self.interval_ns, self._tick, self._epoch)

    def _tick(self, epoch: int) -> None:
        self._timer = None
        if not self._running or epoch != self._epoch:
            return  # stale tick: stop() raced with this event
        if not self._app_live():
            self.stop()
            return
        if self.in_band:
            self.runtime.submit(self._query_task, epoch)
        else:
            self._record()
            self._arm()

    def _query_task(self, ctx: Any, epoch: int) -> Any:
        """The in-band query: an HPX task costing time per counter."""
        cost = QUERY_COST_PER_COUNTER_NS * len(self.active)
        yield ctx.compute(cost)
        if not self._running or epoch != self._epoch:
            return None  # stopped while the query task was in flight
        self._record()
        if self._app_live():
            self._arm()
        else:
            self.stop()
        return None

    def _record(self) -> None:
        values = self.active.evaluate_active_counters(reset=self.reset_each_sample)
        self.samples.append(values)
        if self.sink is not None:
            self.sink(values)
