"""Periodic counter querying — the command-line convenience layer.

Reproduces ``--hpx:print-counter <name> --hpx:print-counter-interval
<ms>``: the named counters are sampled on a fixed simulated interval
and the rows handed to a sink (print, CSV file, list, ...).

Queries can run *in-band*: each sample executes as an HPX task that
consumes scheduler time proportional to the number of counters queried,
perturbing the application exactly like a real self-monitoring run.
This is what the counter-overhead experiment measures.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.counters.manager import ActiveCounters
from repro.counters.types import CounterValue

# Cost of evaluating one counter through the (simulated) counter API
# from an in-band query task.
QUERY_COST_PER_COUNTER_NS = 800

Sink = Callable[[list[CounterValue]], None]


class PeriodicQuery:
    """Sample an :class:`ActiveCounters` set every *interval_ns*.

    With ``in_band=True`` (default) each sample is executed as a task on
    the runtime; with ``in_band=False`` sampling is free (an external
    observer).  The query stops itself when the application quiesces
    (no live tasks) so the event queue can drain.
    """

    def __init__(
        self,
        active: ActiveCounters,
        *,
        engine: Any,
        runtime: Any = None,
        interval_ns: int,
        sink: Sink | None = None,
        in_band: bool = True,
        reset_each_sample: bool = False,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.active = active
        self.engine = engine
        self.runtime = runtime
        self.interval_ns = interval_ns
        self.samples: list[list[CounterValue]] = []
        self.sink = sink
        self.in_band = in_band
        self.reset_each_sample = reset_each_sample
        self._running = False
        if in_band and runtime is None:
            raise ValueError("in-band queries need a runtime")

    # -- control ------------------------------------------------------------

    def start(self) -> None:
        """Begin sampling (first sample after one interval)."""
        if self._running:
            return
        self._running = True
        self.active.start()
        self.engine.schedule(self.interval_ns, self._tick)

    def stop(self) -> None:
        self._running = False
        self.active.stop()

    # -- internals -----------------------------------------------------------

    def _app_live(self) -> bool:
        return self.runtime is None or self.runtime.stats.live_tasks > 0

    def _tick(self) -> None:
        if not self._running:
            return
        if not self._app_live():
            self.stop()
            return
        if self.in_band:
            self.runtime.submit(self._query_task)
        else:
            self._record()
            self.engine.schedule(self.interval_ns, self._tick)

    def _query_task(self, ctx: Any) -> Any:
        """The in-band query: an HPX task costing time per counter."""
        cost = QUERY_COST_PER_COUNTER_NS * len(self.active)
        yield ctx.compute(cost)
        self._record()
        if self._running and self._app_live():
            self.engine.schedule(self.interval_ns, self._tick)
        else:
            self.stop()
        return None

    def _record(self) -> None:
        values = self.active.evaluate_active_counters(reset=self.reset_each_sample)
        self.samples.append(values)
        if self.sink is not None:
            self.sink(values)
