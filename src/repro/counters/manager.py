"""Active-counter management.

Reproduces the API the paper uses around every benchmark sample::

    hpx::evaluate_active_counters(reset, description)
    hpx::reset_active_counters()

:class:`ActiveCounters` owns the set of counters named on the
(simulated) command line, starts their instrumentation, and evaluates /
resets them as a group.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.counters.base import PerformanceCounter
from repro.counters.registry import CounterRegistry
from repro.counters.types import CounterValue


class ActiveCounters:
    """The set of counters currently being collected."""

    def __init__(self, registry: CounterRegistry, specs: Sequence[str]) -> None:
        self.registry = registry
        self.counters: list[PerformanceCounter] = registry.create_counters(specs)
        self._started = False
        # Evaluation plan: the bound evaluator of every counter, resolved
        # once.  Periodic in-band sampling calls this list per tick, so
        # it skips the per-sample attribute walks over the counter set.
        self._eval_plan = [c.get_counter_value for c in self.counters]

    def __len__(self) -> int:
        return len(self.counters)

    def names(self) -> list[str]:
        return [str(c.name) for c in self.counters]

    # -- life cycle ---------------------------------------------------------

    def start(self) -> None:
        """Activate instrumentation for every counter."""
        if self._started:
            return
        self._started = True
        for counter in self.counters:
            counter.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        for counter in self.counters:
            counter.stop()

    # -- the paper's API -------------------------------------------------------

    def evaluate_active_counters(
        self, *, reset: bool = False, description: str | None = None
    ) -> list[CounterValue]:
        """Evaluate every active counter; optionally reset atomically.

        *description* tags the sample (the paper labels each sample's
        output); it is attached to the returned values' names when given.
        """
        values = [get(reset=reset) for get in self._eval_plan]
        if description:
            values = [
                CounterValue(
                    name=f"{v.name} [{description}]",
                    value=v.value,
                    time=v.time,
                    count=v.count,
                    status=v.status,
                )
                for v in values
            ]
        return values

    def reset_active_counters(self) -> None:
        """Re-baseline every active counter."""
        for counter in self.counters:
            counter.reset()

    # -- convenience ---------------------------------------------------------------

    def evaluate_dict(self, *, reset: bool = False) -> dict[str, float]:
        """{counter name: value} for the current evaluation."""
        return {str(c.name): c.get_counter_value(reset=reset).value for c in self.counters}


def format_counter_values(values: Iterable[CounterValue]) -> str:
    """Render values in the HPX ``--hpx:print-counter`` CSV style:
    ``name,count,time[ns],value``."""
    lines = [f"{v.name},{v.count},{v.time},{v.value:g}" for v in values]
    return "\n".join(lines)
