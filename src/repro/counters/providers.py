"""Pluggable counter providers: the open half of the counter registry.

The paper's premise is a *uniform* counter namespace — "any code
consuming counter data can be utilized to access arbitrary system
information with minimal effort".  Historically our registry was
runtime-owned: ``build_default_registry`` hardwired the built-in
counter families and no workload could publish counters without
editing core code.  This module inverts that ownership:

- a :class:`CounterProvider` declares counter types (and their
  instances) against a :class:`~repro.counters.base.CounterEnvironment`;
  every declared type name is validated against the
  ``/object{instance}/counter`` grammar before it enters a registry;
- the built-in families (threads, runtime, taskbench, papi) are
  providers themselves — same registration functions, same order, so
  provider-built registries are bit-identical to the legacy path;
- :func:`build_registry` resolves the full provider chain for one run:
  built-ins → the workload's own ``WorkloadEntry.counter_providers`` →
  third-party providers discovered through the
  ``repro.counter_providers`` entry-point group;
- :class:`AppCounter` / :class:`AppCounterSet` are the app-facing
  helper layer (the Octo-Tiger pattern: applications register
  per-kernel-variant counters into the runtime's counter framework and
  read them back through the same grammar as runtime counters).

Provider identity (:func:`provider_identity`) feeds campaign cache
keys, so installing or removing a counter plugin invalidates exactly
the cells whose counter surface it could have changed.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Protocol, Sequence, runtime_checkable

from repro.counters.base import CounterEnvironment, CounterInfo, MonotonicCounter
from repro.counters.names import CounterNameError, parse_counter_name
from repro.counters.types import CounterType

if TYPE_CHECKING:  # imported lazily at runtime (registry imports this module)
    from repro.counters.base import PerformanceCounter
    from repro.counters.names import CounterName
    from repro.counters.registry import CounterRegistry, CounterTypeEntry

__all__ = [
    "ENTRY_POINT_GROUP",
    "AppCounter",
    "AppCounterSet",
    "CounterProvider",
    "ProviderError",
    "build_registry",
    "builtin_providers",
    "entry_point_providers",
    "provider_identity",
    "workload_counter_providers",
]

#: ``importlib.metadata`` entry-point group scanned for third-party providers.
ENTRY_POINT_GROUP = "repro.counter_providers"

#: Provider identities: dotted/kebab identifiers, lowercase-first.
_PROVIDER_NAME_RE = re.compile(r"^[a-z][a-z0-9_.\-]*$")


class ProviderError(ValueError):
    """A counter provider is malformed or conflicts with another.

    The message is actionable: it names the offending provider, the
    counter type, and — for conflicts — the provider already holding
    the name.
    """


@runtime_checkable
class CounterProvider(Protocol):
    """Anything that can contribute counter types to a registry.

    ``name`` is the provider's stable identity (it feeds cache keys and
    the CLI provenance column); ``counter_types(env)`` declares the
    :class:`~repro.counters.registry.CounterTypeEntry` list for one
    run's environment.  Declared type names must follow the
    ``/object/counter`` half of the name grammar — instances and
    parameters are added at discovery time.
    """

    name: str

    def counter_types(self, env: CounterEnvironment) -> Iterable["CounterTypeEntry"]:
        """Declare this provider's counter types for *env*."""
        ...  # pragma: no cover - protocol


def validate_provider_name(name: Any) -> str:
    """Check a provider identity against the naming rule; return it."""
    if not isinstance(name, str) or not _PROVIDER_NAME_RE.match(name):
        raise ProviderError(
            f"invalid provider name {name!r}: provider names are lowercase "
            f"dotted/kebab identifiers (e.g. 'builtin.threads', 'fmm')"
        )
    return name


def validate_type_name(provider: str, type_name: Any) -> str:
    """Validate one declared counter *type* name (``/object/counter``).

    Instances (``{...}``), wildcards and parameters (``@...``) belong
    to counter *instance* names and are rejected here with an
    actionable message.
    """
    if not isinstance(type_name, str):
        raise ProviderError(
            f"provider {provider!r} declares a non-string counter type name: {type_name!r}"
        )
    for char, what in (("{", "an instance part"), ("@", "parameters"), ("*", "a wildcard")):
        if char in type_name:
            raise ProviderError(
                f"provider {provider!r} declares counter type {type_name!r} with {what}; "
                f"declare the bare /object/counter type name — instances and parameters "
                f"are resolved at discovery time"
            )
    try:
        parsed = parse_counter_name(type_name)
    except CounterNameError as exc:
        raise ProviderError(
            f"provider {provider!r} declares malformed counter type {type_name!r}: {exc} "
            f"(expected /object/counter, e.g. '/fmm/p2p-subgrids')"
        ) from None
    if parsed.type_name != type_name:
        raise ProviderError(
            f"provider {provider!r} declares counter type {type_name!r} which does not "
            f"round-trip through the grammar (canonical: {parsed.type_name!r})"
        )
    return type_name


# ---------------------------------------------------------------------------
# Built-in families as providers
# ---------------------------------------------------------------------------


class _EntryCollector:
    """Registry stand-in handed to the legacy ``register_*`` functions.

    The built-in wiring modules register imperatively against a
    registry; collecting their entries through this shim keeps those
    functions — and therefore the built-in counter sets — byte-for-byte
    identical to the pre-provider era.
    """

    def __init__(self, env: CounterEnvironment) -> None:
        self.env = env
        self.entries: list["CounterTypeEntry"] = []

    def register(self, entry: "CounterTypeEntry") -> None:
        """Collect one entry (the ``CounterRegistry.register`` shape)."""
        self.entries.append(entry)


@dataclass(frozen=True)
class _BuiltinProvider:
    """One built-in counter family, adapted from its register function."""

    name: str
    register_fn: Callable[[Any], None]
    #: Environment attribute the family needs (``None``: always available).
    requires: str | None = None

    def available(self, env: CounterEnvironment) -> bool:
        """Whether *env* carries the component this family observes."""
        return self.requires is None or getattr(env, self.requires) is not None

    def counter_types(self, env: CounterEnvironment) -> tuple["CounterTypeEntry", ...]:
        """Collect the family's entries by replaying its register function."""
        collector = _EntryCollector(env)
        self.register_fn(collector)
        return tuple(collector.entries)


def _register_threads(registry: Any) -> None:
    from repro.counters.threads_counters import register_threads_counters

    register_threads_counters(registry)


def _register_runtime(registry: Any) -> None:
    from repro.counters.runtime_counters import register_runtime_counters

    register_runtime_counters(registry)


def _register_taskbench(registry: Any) -> None:
    from repro.counters.taskbench_counters import register_taskbench_counters

    register_taskbench_counters(registry)


def _register_papi(registry: Any) -> None:
    from repro.counters.papi_counters import register_papi_counters

    register_papi_counters(registry)


def _register_profiler(registry: Any) -> None:
    from repro.profiler.counters import register_profiler_counters

    register_profiler_counters(registry)


#: The built-in provider chain, in legacy registration order (threads →
#: runtime → taskbench → papi, then the profiler family added later) so
#: registries stay bit-identical.
_BUILTINS: tuple[_BuiltinProvider, ...] = (
    _BuiltinProvider("builtin.threads", _register_threads, requires="runtime"),
    _BuiltinProvider("builtin.runtime", _register_runtime, requires="runtime"),
    _BuiltinProvider("builtin.taskbench", _register_taskbench, requires="runtime"),
    _BuiltinProvider("builtin.papi", _register_papi, requires="papi"),
    # Only present when a ProfileBuilder is attached to the run
    # (Session.run(profile=...)); gated like papi on its env component.
    _BuiltinProvider("builtin.profiler", _register_profiler, requires="profiler"),
)


def builtin_providers() -> tuple[CounterProvider, ...]:
    """The built-in counter families, as providers (static order)."""
    return _BUILTINS


# ---------------------------------------------------------------------------
# Workload and entry-point resolution
# ---------------------------------------------------------------------------


def workload_counter_providers(workload: str | None) -> tuple[CounterProvider, ...]:
    """Providers the named workload registered on its ``WorkloadEntry``."""
    if workload is None:
        return ()
    from repro.workloads.registry import get_workload

    return tuple(get_workload(workload).counter_providers)


def _coerce_provider(origin: str, obj: Any) -> CounterProvider:
    """Accept a provider instance or a zero-arg factory/class for one."""
    if not hasattr(obj, "counter_types") and callable(obj):
        obj = obj()
    if not hasattr(obj, "counter_types") or not getattr(obj, "name", None):
        raise ProviderError(
            f"{origin} does not provide a CounterProvider: expected an object "
            f"with a 'name' and a 'counter_types(env)' method (or a zero-argument "
            f"factory returning one), got {type(obj).__name__}"
        )
    return obj


def entry_point_providers() -> tuple[CounterProvider, ...]:
    """Third-party providers from the ``repro.counter_providers`` group.

    Each entry point may resolve to a provider instance (e.g. a
    module-level :class:`AppCounterSet`) or to a zero-argument factory
    for one.  A broken plugin raises :class:`ProviderError` naming the
    distribution so the failure is attributable.
    """
    from importlib import metadata

    providers: list[CounterProvider] = []
    for ep in sorted(metadata.entry_points(group=ENTRY_POINT_GROUP), key=lambda e: e.name):
        origin = f"entry point {ep.name!r} ({ep.value})"
        try:
            loaded = ep.load()
        except Exception as exc:  # import errors are the plugin's fault, say so
            raise ProviderError(f"{origin} failed to load: {exc}") from exc
        providers.append(_coerce_provider(origin, loaded))
    return tuple(providers)


def _entry_point_identity() -> list[str]:
    """Entry-point identities without importing the plugins."""
    from importlib import metadata

    return sorted(f"{ep.name}={ep.value}" for ep in metadata.entry_points(group=ENTRY_POINT_GROUP))


def provider_identity(workload: str | None = None) -> tuple[str, ...]:
    """Stable identity of the provider chain a run would resolve.

    Folded into campaign cache keys: the built-in provider names, the
    workload's own provider names, and the installed entry points (name
    and target, *without* importing them — key computation must not run
    plugin code).  Changing any of these can change a run's counter
    surface, so it must change the key.
    """
    names = [p.name for p in _BUILTINS]
    names.extend(p.name for p in workload_counter_providers(workload))
    names.extend(_entry_point_identity())
    return tuple(names)


def build_registry(
    env: CounterEnvironment,
    *,
    workload: str | None = None,
    providers: Sequence[CounterProvider] = (),
    entry_points: bool = True,
) -> "CounterRegistry":
    """Build one run's registry by resolving the provider chain.

    Installation order — built-ins (gated on the environment exactly as
    the legacy ``build_default_registry``), then the workload's
    ``WorkloadEntry.counter_providers``, then ``importlib.metadata``
    entry points, then explicit *providers* — so built-in names can
    never be shadowed and conflicts blame the newcomer.
    """
    from repro.counters.registry import CounterRegistry

    registry = CounterRegistry(env)
    for builtin in _BUILTINS:
        if builtin.available(env):
            registry.install(builtin)
    for provider in workload_counter_providers(workload):
        registry.install(provider)
    if entry_points:
        for provider in entry_point_providers():
            registry.install(provider)
    for provider in providers:
        registry.install(provider)
    return registry


# ---------------------------------------------------------------------------
# App-facing helper layer (the Octo-Tiger pattern)
# ---------------------------------------------------------------------------


class AppCounter:
    """One application-owned cumulative counter.

    The app-side half of the Octo-Tiger pattern: the application
    increments (atomic-style, safe under threads), the counter
    framework reads through the same ``/object{instance}/counter``
    grammar as runtime counters.  Framework reads are reset-on-read
    per registry instance — ``get_counter_value(reset=True)``
    re-baselines without disturbing the app's running total —
    while :meth:`exchange` offers the exemplar's destructive
    fetch-and-zero for apps that manage windows themselves.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def add(self, amount: int = 1) -> int:
        """Atomically add *amount*; returns the new running total."""
        with self._lock:
            self._value += amount
            return self._value

    def increment(self) -> int:
        """``add(1)`` — the common per-kernel-launch call."""
        return self.add(1)

    def read(self) -> int:
        """Current running total (non-destructive)."""
        with self._lock:
            return self._value

    def exchange(self, value: int = 0) -> int:
        """Atomically swap in *value* (default 0: reset-on-read)."""
        with self._lock:
            previous = self._value
            self._value = value
            return previous


@dataclass(frozen=True, eq=False)
class _AppCounterDecl:
    """One declared app counter: its instance coordinates and metadata."""

    counter_name: str
    instance_name: str
    instance_index: int | None
    parameters: str | None
    info_kwargs: dict[str, Any]
    counter: AppCounter


class AppCounterSet:
    """Declare app counters under one ``/object`` namespace.

    An ``AppCounterSet`` is both the application's handle store —
    :meth:`counter` returns the :class:`AppCounter` the app increments —
    and a :class:`CounterProvider`: installed into a registry it exposes
    every declared counter through the standard grammar, including
    ``#*`` wildcard discovery over the declared instances and
    ``@parameter`` variants sharing one counter type (the Octo-Tiger
    per-kernel-variant shape)::

        counters = AppCounterSet("fmm", provider="fmm")
        launched = counters.counter("p2p-subgrids", parameters="vectorized")
        ...
        launched.increment()   # from the app's kernel launch path

    Declarations are validated eagerly against the name grammar, so a
    typo fails at module import, not mid-run.
    """

    def __init__(self, object_name: str, *, provider: str | None = None) -> None:
        self.name = validate_provider_name(provider if provider is not None else object_name)
        self.object_name = object_name
        self._decls: dict[tuple[str, str, int | None, str | None], _AppCounterDecl] = {}
        # Validate the object name by round-tripping a probe type name.
        validate_type_name(self.name, f"/{object_name}/probe")

    def counter(
        self,
        counter_name: str,
        *,
        instance: tuple[str, int | None] = ("total", None),
        parameters: str | None = None,
        help_text: str = "",
        unit: str = "",
        instrument_ns_per_task: int = 0,
    ) -> AppCounter:
        """Declare one counter; returns the app-side increment handle.

        ``instance`` defaults to the conventional ``("total", None)``;
        ``parameters`` distinguishes variants sharing one counter type
        (``/fmm{...}/p2p-subgrids@vectorized``).
        """
        type_name = validate_type_name(self.name, f"/{self.object_name}/{counter_name}")
        inst_name, inst_index = instance
        suffix = "" if inst_index is None else f"#{inst_index}"
        params = "" if parameters is None else f"@{parameters}"
        full = f"/{self.object_name}{{locality#0/{inst_name}{suffix}}}/{counter_name}{params}"
        try:
            parsed = parse_counter_name(full)
        except CounterNameError as exc:
            raise ProviderError(
                f"provider {self.name!r}: counter declaration {full!r} is malformed: {exc}"
            ) from None
        if parsed.has_wildcard:
            raise ProviderError(
                f"provider {self.name!r}: counter declaration {full!r} contains a wildcard; "
                f"declare concrete instances — wildcards are for discovery"
            )
        key = (counter_name, inst_name, inst_index, parameters)
        if key in self._decls:
            raise ProviderError(
                f"provider {self.name!r} declares {full!r} twice; each "
                f"(counter, instance, parameters) combination registers once"
            )
        decl = _AppCounterDecl(
            counter_name=counter_name,
            instance_name=inst_name,
            instance_index=inst_index,
            parameters=parameters,
            info_kwargs={
                "help_text": help_text or f"Application counter {type_name}",
                "unit": unit,
                "instrument_ns_per_task": instrument_ns_per_task,
            },
            counter=AppCounter(),
        )
        self._decls[key] = decl
        return decl.counter

    # -- the CounterProvider half ------------------------------------------

    def counter_types(self, env: CounterEnvironment) -> list["CounterTypeEntry"]:
        """One :class:`CounterTypeEntry` per declared counter name."""
        from repro.counters.registry import CounterTypeEntry

        by_type: dict[str, list[_AppCounterDecl]] = {}
        for decl in self._decls.values():
            by_type.setdefault(decl.counter_name, []).append(decl)

        entries: list["CounterTypeEntry"] = []
        for counter_name, decls in by_type.items():
            entries.append(
                CounterTypeEntry(
                    info=CounterInfo(
                        type_name=f"/{self.object_name}/{counter_name}",
                        counter_type=CounterType.MONOTONICALLY_INCREASING,
                        **decls[0].info_kwargs,
                    ),
                    factory=self._make_factory(counter_name),
                    instances=self._make_instances(counter_name),
                )
            )
        return entries

    def _make_instances(
        self, counter_name: str
    ) -> Callable[[CounterEnvironment], list[tuple[str, int | None]]]:
        def instances(env: CounterEnvironment) -> list[tuple[str, int | None]]:
            """Declared instances of this app counter, in declaration order."""
            seen: list[tuple[str, int | None]] = []
            for decl in self._decls.values():
                if decl.counter_name != counter_name:
                    continue
                pair = (decl.instance_name, decl.instance_index)
                if pair not in seen:
                    seen.append(pair)
            return seen

        return instances

    def _make_factory(
        self, counter_name: str
    ) -> Callable[["CounterName", CounterInfo, CounterEnvironment], "PerformanceCounter"]:
        def factory(
            name: "CounterName", info: CounterInfo, env: CounterEnvironment
        ) -> "PerformanceCounter":
            """Bridge one declared app counter into the framework."""
            key = (counter_name, name.instance_name, name.instance_index, name.parameters)
            decl = self._decls.get(key)
            if decl is None:
                declared = ", ".join(
                    self._describe(d) for d in self._decls.values() if d.counter_name == counter_name
                )
                raise CounterNameError(
                    f"{name}: provider {self.name!r} declares no such instance/parameters "
                    f"combination; declared: {declared}"
                )
            return MonotonicCounter(name, info, env, decl.counter.read)

        return factory

    def _describe(self, decl: _AppCounterDecl) -> str:
        suffix = "" if decl.instance_index is None else f"#{decl.instance_index}"
        params = "" if decl.parameters is None else f"@{decl.parameters}"
        return f"{decl.instance_name}{suffix}{params}"
