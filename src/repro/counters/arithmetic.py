"""Arithmetic counters: derived ratios/combinations of other counters.

``/arithmetics/<op>@<counter1>,<counter2>,...`` evaluates the named
underlying counters and combines them — the mechanism the paper
mentions for "deriving ratios from combinations of counters".  The
bandwidth estimate of Figures 13/14, for example, is

    (ALL_DATA_RD + DEMAND_CODE_RD + DEMAND_RFO) * 64 bytes / elapsed time

expressible as nested ``add`` / ``divide`` / ``scale`` counters.
"""

from __future__ import annotations

from typing import Sequence

from repro.counters.base import CounterEnvironment, CounterInfo, PerformanceCounter
from repro.counters.names import CounterName

SUPPORTED_OPS = ("add", "subtract", "multiply", "divide", "mean", "scale")


class ArithmeticCounter(PerformanceCounter):
    """Combine underlying counters with one arithmetic operation.

    ``scale`` expects exactly one underlying counter; its factor is the
    trailing ``;factor=<float>`` element of the parameter list.
    """

    def __init__(
        self,
        name: CounterName,
        info: CounterInfo,
        env: CounterEnvironment,
        underlying: Sequence[PerformanceCounter],
        op: str,
        factor: float = 1.0,
    ) -> None:
        super().__init__(name, info, env)
        if op not in SUPPORTED_OPS:
            raise ValueError(f"unsupported arithmetic op {op!r}; use one of {SUPPORTED_OPS}")
        if not underlying:
            raise ValueError("arithmetic counter needs at least one underlying counter")
        if op == "scale" and len(underlying) != 1:
            raise ValueError("scale takes exactly one underlying counter")
        if op in ("subtract", "divide") and len(underlying) < 2:
            raise ValueError(f"{op} needs at least two underlying counters")
        self.underlying = list(underlying)
        self.op = op
        self.factor = factor

    def read(self) -> float:
        values = [c.read() for c in self.underlying]
        if self.op == "add":
            return sum(values)
        if self.op == "subtract":
            result = values[0]
            for v in values[1:]:
                result -= v
            return result
        if self.op == "multiply":
            result = 1.0
            for v in values:
                result *= v
            return result
        if self.op == "divide":
            result = values[0]
            for v in values[1:]:
                result = result / v if v else 0.0
            return result
        if self.op == "mean":
            return sum(values) / len(values)
        if self.op == "scale":
            return values[0] * self.factor
        raise AssertionError(self.op)

    def reset(self) -> None:
        for counter in self.underlying:
            counter.reset()

    def start(self) -> None:
        super().start()
        for counter in self.underlying:
            counter.start()

    def stop(self) -> None:
        super().stop()
        for counter in self.underlying:
            counter.stop()
