"""Counter interfaces and the evaluation environment.

A :class:`PerformanceCounter` exposes the predefined interface the
paper describes: evaluate (``get_counter_value``), ``reset``,
``start``/``stop``.  Reset semantics follow HPX: monotonic and
averaging counters snapshot a baseline and subsequent evaluations
report deltas relative to it — this is what makes the paper's
per-sample ``evaluate_active_counters`` / ``reset_active_counters``
protocol work.

Counters that require runtime instrumentation (per-task timestamping,
PAPI reads at context switches) declare a per-task cost; ``start``
registers it with the runtime and ``stop`` removes it, so active
counters perturb the simulated application exactly as Section V-C
reports (≤10 % software, ≤16 % PAPI for very fine tasks).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable

from repro.counters.names import CounterName
from repro.counters.types import CounterStatus, CounterType, CounterValue


@dataclass
class CounterEnvironment:
    """Everything counters may observe.

    One environment is built per application run and handed to the
    registry; counter factories pull what they need from it.
    """

    engine: Any  # repro.simcore.events.Engine
    runtime: Any = None  # any repro.exec.backend.SchedulerBackend
    machine: Any = None  # repro.simcore.machine.Machine
    papi: Any = None  # repro.papi.hw.PapiSubstrate
    profiler: Any = None  # repro.profiler.builder.ProfileBuilder
    registry: Any = None  # back-reference, set by the registry itself

    def require(self, attr: str) -> Any:
        value = getattr(self, attr)
        if value is None:
            raise RuntimeError(f"counter requires environment component {attr!r}")
        return value


@dataclass(frozen=True)
class CounterInfo:
    """Static metadata of a counter type (shown by ``list-counters``)."""

    type_name: str  # e.g. "/threads/time/average"
    counter_type: CounterType
    help_text: str
    unit: str = ""
    # Per-task instrumentation cost while a counter of this type is
    # active, charged to the runtime's scheduling overhead.
    instrument_ns_per_task: int = 0


class PerformanceCounter(abc.ABC):
    """Base class: one live counter instance."""

    def __init__(self, name: CounterName, info: CounterInfo, env: CounterEnvironment) -> None:
        self.name = name
        self.info = info
        self.env = env
        self.evaluations = 0
        self._started = False

    # -- core interface ---------------------------------------------------

    @abc.abstractmethod
    def read(self) -> float:
        """Current value relative to the last reset."""

    def reset(self) -> None:
        """Re-baseline the counter.  Default: no-op (raw counters)."""

    def get_counter_value(self, *, reset: bool = False) -> CounterValue:
        """Evaluate the counter; optionally reset it atomically."""
        self.evaluations += 1
        value = CounterValue(
            name=str(self.name),
            value=self.read(),
            time=self.env.engine.now,
            count=self.evaluations,
            status=CounterStatus.VALID_DATA,
        )
        if reset:
            self.reset()
        return value

    # -- life cycle ----------------------------------------------------------

    def start(self) -> None:
        """Activate instrumentation for this counter."""
        if self._started:
            return
        self._started = True
        cost = self.info.instrument_ns_per_task
        if cost and self.env.runtime is not None:
            self.env.runtime.add_instrumentation(cost)

    def stop(self) -> None:
        """Deactivate instrumentation."""
        if not self._started:
            return
        self._started = False
        cost = self.info.instrument_ns_per_task
        if cost and self.env.runtime is not None:
            self.env.runtime.add_instrumentation(-cost)


class RawCounter(PerformanceCounter):
    """Instantaneous value from a source callable (e.g. queue length)."""

    def __init__(
        self,
        name: CounterName,
        info: CounterInfo,
        env: CounterEnvironment,
        source: Callable[[], float],
    ) -> None:
        super().__init__(name, info, env)
        self._source = source

    def read(self) -> float:
        return float(self._source())


class MonotonicCounter(PerformanceCounter):
    """Cumulative count/time; reset snapshots a baseline."""

    def __init__(
        self,
        name: CounterName,
        info: CounterInfo,
        env: CounterEnvironment,
        source: Callable[[], float],
    ) -> None:
        super().__init__(name, info, env)
        self._source = source
        self._baseline = 0.0

    def read(self) -> float:
        return float(self._source()) - self._baseline

    def reset(self) -> None:
        self._baseline = float(self._source())


class AverageRatioCounter(PerformanceCounter):
    """Δnumerator / Δdenominator since the last reset.

    Backs ``/threads/time/average`` (Δexec-time / Δtasks) and
    ``/threads/time/average-overhead``.
    """

    def __init__(
        self,
        name: CounterName,
        info: CounterInfo,
        env: CounterEnvironment,
        numerator: Callable[[], float],
        denominator: Callable[[], float],
    ) -> None:
        super().__init__(name, info, env)
        self._num = numerator
        self._den = denominator
        self._num_base = 0.0
        self._den_base = 0.0

    def read(self) -> float:
        dn = float(self._num()) - self._num_base
        dd = float(self._den()) - self._den_base
        return dn / dd if dd else 0.0

    def reset(self) -> None:
        self._num_base = float(self._num())
        self._den_base = float(self._den())


class ElapsedTimeCounter(PerformanceCounter):
    """Simulated wall time (ns) since the last reset."""

    def __init__(self, name: CounterName, info: CounterInfo, env: CounterEnvironment) -> None:
        super().__init__(name, info, env)
        self._baseline = 0

    def read(self) -> float:
        return float(self.env.engine.now - self._baseline)

    def reset(self) -> None:
        self._baseline = self.env.engine.now
