"""Statistics (aggregating) counters.

HPX exposes ``/statistics{<underlying>}/<op>`` counters that apply a
statistical operation over periodically sampled values of an underlying
counter — e.g.
``/statistics{/threads{locality#0/total}/time/average}/rolling_average@3``.

Ours sample the underlying counter at every evaluation and keep a
bounded history; the ``@N`` parameter sets the rolling-window length
(default 10).  Supported operations: ``average``, ``rolling_average``,
``min``, ``max``, ``stddev``, ``median``.
"""

from __future__ import annotations

import math
from collections import deque

from repro.counters.base import CounterEnvironment, CounterInfo, PerformanceCounter
from repro.counters.names import CounterName

SUPPORTED_OPS = ("average", "rolling_average", "min", "max", "stddev", "median")
DEFAULT_WINDOW = 10


class StatisticsCounter(PerformanceCounter):
    """Aggregation over sampled values of an underlying counter."""

    def __init__(
        self,
        name: CounterName,
        info: CounterInfo,
        env: CounterEnvironment,
        underlying: PerformanceCounter,
        op: str,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        super().__init__(name, info, env)
        if op not in SUPPORTED_OPS:
            raise ValueError(f"unsupported statistics op {op!r}; use one of {SUPPORTED_OPS}")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.underlying = underlying
        self.op = op
        # 'average' accumulates over the whole reset interval; windowed
        # ops use a bounded deque.
        self._window = window if op != "average" else None
        self._samples: deque[float] = deque(maxlen=self._window)

    def sample(self) -> None:
        """Record one sample of the underlying counter."""
        self._samples.append(self.underlying.read())

    def read(self) -> float:
        self.sample()
        values = list(self._samples)
        if not values:
            return 0.0
        if self.op in ("average", "rolling_average"):
            return sum(values) / len(values)
        if self.op == "min":
            return min(values)
        if self.op == "max":
            return max(values)
        if self.op == "median":
            values.sort()
            mid = len(values) // 2
            if len(values) % 2:
                return values[mid]
            return (values[mid - 1] + values[mid]) / 2.0
        if self.op == "stddev":
            mean = sum(values) / len(values)
            return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))
        raise AssertionError(self.op)

    def reset(self) -> None:
        self._samples.clear()
        self.underlying.reset()

    def start(self) -> None:
        super().start()
        self.underlying.start()

    def stop(self) -> None:
        super().stop()
        self.underlying.stop()
