"""The HPX-style performance-counter framework (Section IV of the paper).

Performance counters are named components exposing a uniform interface:

- **names** have the predefined structure
  ``/objectname{parentinstance#pidx/instance#idx}/countername@parameters``
  and can be discovered with wildcards;
- **types** cover raw values, monotonically increasing counts,
  averaging ratios (value/count), elapsed time, statistical aggregation
  over an underlying counter, and arithmetic combinations of counters;
- the **registry** maps name patterns to factories and supports
  ``discover_counters`` / ``create_counter`` by name;
- the **manager** holds the set of *active* counters and implements
  ``evaluate_active_counters`` / ``reset_active_counters`` exactly as
  the paper uses them around each benchmark sample;
- the **query** layer reproduces the command-line convenience interface
  (``--hpx:print-counter`` / ``--hpx:print-counter-interval``):
  periodic in-band sampling with CSV output.

Counter *collection* carries a small per-task instrumentation cost when
counters are active (timestamping in the scheduler hot path; PAPI reads
at context switches), reproducing the ≤10 % / ≤16 % overheads reported
in Section V-C.
"""

from repro.counters.base import CounterEnvironment, CounterInfo, PerformanceCounter
from repro.counters.manager import ActiveCounters
from repro.counters.names import CounterName, format_counter_name, parse_counter_name
from repro.counters.providers import (
    ENTRY_POINT_GROUP,
    AppCounter,
    AppCounterSet,
    CounterProvider,
    ProviderError,
    build_registry,
    builtin_providers,
    entry_point_providers,
    provider_identity,
)
from repro.counters.query import PeriodicQuery
from repro.counters.registry import CounterRegistry, CounterTypeEntry, build_default_registry
from repro.counters.types import CounterStatus, CounterType, CounterValue

__all__ = [
    "ENTRY_POINT_GROUP",
    "ActiveCounters",
    "AppCounter",
    "AppCounterSet",
    "CounterEnvironment",
    "CounterInfo",
    "CounterName",
    "CounterProvider",
    "CounterRegistry",
    "CounterStatus",
    "CounterType",
    "CounterTypeEntry",
    "CounterValue",
    "PerformanceCounter",
    "PeriodicQuery",
    "ProviderError",
    "build_default_registry",
    "build_registry",
    "builtin_providers",
    "entry_point_providers",
    "format_counter_name",
    "parse_counter_name",
    "provider_identity",
]
