"""Task Bench counters (``/taskbench/...``).

The live half of the METG story: ``/taskbench/efficiency`` reports the
*realized* parallel efficiency of the run so far — cumulative busy
time over ``workers x wall`` since the last reset, the complement of
``/threads/idle-rate`` — in the HPX 0.01 % convention (a reading of
9500 means 95 % efficient).  It reads the ProbeBus like every other
counter, so it works on both runtime backends and on any workload,
not just Task Bench graphs.

The sweep-level derived names (``/taskbench{locality#0/<shape>}/
metg@<eps>`` and ``.../efficiency@<grain_ns>``) are emitted by
:meth:`repro.taskbench.metg.MetgResult.to_samples` — they summarize
many runs, so no single run's registry can evaluate them live.
"""

from __future__ import annotations

from functools import partial

from repro.counters.base import CounterEnvironment, CounterInfo, PerformanceCounter
from repro.counters.names import CounterName
from repro.counters.registry import CounterRegistry, CounterTypeEntry
from repro.counters.types import CounterType

from repro.counters.threads_counters import IDLE_INSTRUMENT_NS

__all__ = ["EfficiencyCounter", "register_taskbench_counters"]


class EfficiencyCounter(PerformanceCounter):
    """Realized parallel efficiency since reset: busy / (wall x workers),
    in units of 0.01 % (HPX convention)."""

    def __init__(
        self,
        name: CounterName,
        info: CounterInfo,
        env: CounterEnvironment,
        busy_source,
        num_workers: int,
    ) -> None:
        super().__init__(name, info, env)
        self._busy = busy_source
        self._n = num_workers
        self._busy_base = 0
        self._wall_base = 0

    def read(self) -> float:
        """Current efficiency in 0.01 % units (0 before any wall time)."""
        wall = (self.env.engine.now - self._wall_base) * self._n
        if wall <= 0:
            return 0.0
        busy = self._busy() - self._busy_base
        return min(1.0, max(0.0, busy / wall)) * 10000.0

    def reset(self) -> None:
        """Re-baseline busy time and wall clock at the current instant."""
        self._busy_base = self._busy()
        self._wall_base = self.env.engine.now


def register_taskbench_counters(registry: CounterRegistry) -> None:
    """Register the ``/taskbench/...`` counter types."""

    def efficiency_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        probes = env.require("runtime").probes
        if name.instance_name == "total":
            return EfficiencyCounter(name, info, env, probes.busy_ns, len(probes.workers))
        index = name.instance_index
        if name.instance_name != "worker-thread" or index is None:
            raise ValueError(f"unknown instance {name.instance_name!r} in {name}")
        if not 0 <= index < len(probes.workers):
            raise ValueError(f"bad worker-thread index in {name}")
        return EfficiencyCounter(name, info, env, partial(probes.busy_ns, index), 1)

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/taskbench/efficiency",
                counter_type=CounterType.AVERAGE_COUNT,
                help_text="Realized parallel efficiency since last reset "
                "(busy / wall x workers), in 0.01% units",
                unit="0.01%",
                instrument_ns_per_task=IDLE_INSTRUMENT_NS,
            ),
            factory=efficiency_factory,
        )
    )
