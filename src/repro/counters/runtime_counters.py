"""General runtime counters (``/runtime/...``)."""

from __future__ import annotations

from repro.counters.base import (
    CounterEnvironment,
    CounterInfo,
    ElapsedTimeCounter,
    PerformanceCounter,
    RawCounter,
)
from repro.counters.names import CounterName
from repro.counters.registry import CounterRegistry, CounterTypeEntry
from repro.counters.types import CounterType


def _total_only(env: CounterEnvironment) -> list[tuple[str, int | None]]:
    return [("total", None)]


def register_runtime_counters(registry: CounterRegistry) -> None:
    """Register ``/runtime/uptime`` and ``/runtime/count/tasks-live``."""

    def uptime_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        return ElapsedTimeCounter(name, info, env)

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/runtime/uptime",
                counter_type=CounterType.ELAPSED_TIME,
                help_text="Simulated wall time since last reset",
                unit="ns",
            ),
            factory=uptime_factory,
            instances=_total_only,
        )
    )

    def live_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        return RawCounter(name, info, env, lambda: runtime.stats.live_tasks)

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/runtime/count/tasks-live",
                counter_type=CounterType.RAW,
                help_text="Instantaneous number of live (unterminated) tasks",
            ),
            factory=live_factory,
            instances=_total_only,
        )
    )

    def utilization_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")

        def read() -> float:
            busy = sum(1 for w in runtime.workers if w.current is not None)
            return busy / runtime.num_workers * 100.0

        return RawCounter(name, info, env, read)

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/scheduler/utilization/instantaneous",
                counter_type=CounterType.RAW,
                help_text="Percentage of workers currently executing a task",
                unit="%",
            ),
            factory=utilization_factory,
            instances=_total_only,
        )
    )
