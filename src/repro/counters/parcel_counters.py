"""Parcel and AGAS counters (``/parcels/...``, ``/agas/...``).

Two of the paper's four counter groups ("AGAS counters, Parcel
counters, Thread Manager counters, and general counters").  Registered
per locality by :class:`repro.distributed.system.DistributedSystem`.
"""

from __future__ import annotations

from typing import Any

from repro.counters.base import (
    AverageRatioCounter,
    CounterEnvironment,
    CounterInfo,
    MonotonicCounter,
    PerformanceCounter,
)
from repro.counters.names import CounterName
from repro.counters.registry import CounterRegistry, CounterTypeEntry
from repro.counters.types import CounterType


def _total_only(env: CounterEnvironment) -> list[tuple[str, int | None]]:
    return [("total", None)]


def register_distributed_counters(registry: CounterRegistry, locality: Any, system: Any) -> None:
    """Register /parcels and /agas counter types for one locality."""
    stats = locality.parcelport.stats
    agas_stats = system.agas.stats

    def mono(type_name: str, help_text: str, source, unit: str = "") -> None:
        def factory(
            name: CounterName, info: CounterInfo, env: CounterEnvironment
        ) -> PerformanceCounter:
            return MonotonicCounter(name, info, env, source)

        registry.register(
            CounterTypeEntry(
                info=CounterInfo(
                    type_name=type_name,
                    counter_type=CounterType.MONOTONICALLY_INCREASING,
                    help_text=help_text,
                    unit=unit,
                ),
                factory=factory,
                instances=_total_only,
            )
        )

    mono("/parcels/count/sent", "Parcels sent by this locality", lambda: stats.sent)
    mono(
        "/parcels/count/received",
        "Parcels received by this locality",
        lambda: stats.received,
    )
    mono(
        "/parcels/data/sent",
        "Bytes sent by this locality's parcelport",
        lambda: stats.bytes_sent,
        unit="bytes",
    )
    mono(
        "/parcels/data/received",
        "Bytes received by this locality's parcelport",
        lambda: stats.bytes_received,
        unit="bytes",
    )

    def latency_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        return AverageRatioCounter(
            name, info, env, lambda: stats.latency_sum_ns, lambda: stats.received
        )

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/parcels/time/average-latency",
                counter_type=CounterType.AVERAGE_TIMER,
                help_text="Average transit time of received parcels",
                unit="ns",
            ),
            factory=latency_factory,
            instances=_total_only,
        )
    )

    mono("/agas/count/bind", "Symbolic names bound in AGAS", lambda: agas_stats.binds)
    mono(
        "/agas/count/resolve",
        "Symbolic-name resolutions served by AGAS",
        lambda: agas_stats.resolves,
    )
    mono(
        "/agas/count/cache/hits",
        "AGAS cache hits across localities",
        lambda: agas_stats.cache_hits,
    )
    mono(
        "/agas/count/cache/misses",
        "AGAS cache misses across localities",
        lambda: agas_stats.cache_misses,
    )


class DistributedCounterProvider:
    """The /parcels + /agas groups as a per-locality counter provider.

    Unlike the stateless built-ins, this provider closes over one
    locality and its owning system, so each locality's registry
    installs its own instance (``registry.install(...)`` in
    :class:`repro.distributed.system.Locality`).
    """

    name = "builtin.distributed"

    def __init__(self, locality: Any, system: Any) -> None:
        self._locality = locality
        self._system = system

    def counter_types(self, env: CounterEnvironment) -> list[CounterTypeEntry]:
        """Replay the legacy registration through an entry collector."""
        from repro.counters.providers import _EntryCollector

        collector = _EntryCollector(env)
        register_distributed_counters(collector, self._locality, self._system)  # type: ignore[arg-type]
        return collector.entries
