"""Counter value/type/status records."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CounterType(enum.Enum):
    """Semantic class of a counter (mirrors HPX's counter_type)."""

    RAW = "raw"  # instantaneous value (queue length)
    MONOTONICALLY_INCREASING = "monotonically_increasing"  # cumulative counts/times
    AVERAGE_COUNT = "average_count"  # sum / number-of-events ratio
    AVERAGE_TIMER = "average_timer"  # time sum / number-of-events ratio
    ELAPSED_TIME = "elapsed_time"  # wall time since reset
    AGGREGATING = "aggregating"  # statistics over an underlying counter
    ARITHMETIC = "arithmetic"  # combination of underlying counters


class CounterStatus(enum.Enum):
    """Result status of one evaluation."""

    VALID_DATA = "valid_data"
    NEW_DATA = "new_data"
    INVALID_DATA = "invalid_data"


@dataclass(frozen=True)
class CounterValue:
    """One evaluation result.

    ``value`` carries the counter reading; ``count`` is the evaluation
    sequence number; ``time`` is the simulated timestamp in ns.
    Unit is declared by the counter's :class:`~repro.counters.base.CounterInfo`.
    """

    name: str
    value: float
    time: int
    count: int
    status: CounterStatus = CounterStatus.VALID_DATA

    def scaled(self, factor: float) -> float:
        """Convenience: the value multiplied by *factor*."""
        return self.value * factor
