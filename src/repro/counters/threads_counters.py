"""Thread-manager counters (``/threads/...``).

These are the counters the paper's metrics are built on (Section V-C):

- **Task Duration** — ``/threads/time/average``
- **Task Overhead** — ``/threads/time/average-overhead``
- **Task Time** — ``/threads/time/cumulative``
- **Scheduling Overhead** — ``/threads/time/cumulative-overhead``

plus counts, queue lengths, steal statistics and the idle rate.  Each
type exposes a ``total`` instance and one per ``worker-thread#N``.

Instrumentation costs: the timing counters require timestamping every
task activation, so activating them charges ~50 ns per task each —
measurable (≈10 %) against very fine ~1 µs tasks on 1–2 cores, noise
otherwise, matching Section V-C.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable

from repro.counters.base import (
    AverageRatioCounter,
    CounterEnvironment,
    CounterInfo,
    MonotonicCounter,
    PerformanceCounter,
    RawCounter,
)
from repro.counters.names import CounterName
from repro.counters.registry import CounterRegistry, CounterTypeEntry
from repro.counters.types import CounterType

# Per-activation timestamping cost while a timing counter is active.
TIMING_INSTRUMENT_NS = 25
COUNT_INSTRUMENT_NS = 5
IDLE_INSTRUMENT_NS = 15


class IdleRateCounter(PerformanceCounter):
    """1 - Δbusy/Δ(wall x workers), reported in units of 0.01 %
    (HPX convention: a reading of 9500 means 95 % idle)."""

    def __init__(
        self,
        name: CounterName,
        info: CounterInfo,
        env: CounterEnvironment,
        busy_source: Callable[[], int],
        num_workers: int,
    ) -> None:
        super().__init__(name, info, env)
        self._busy = busy_source
        self._n = num_workers
        self._busy_base = 0
        self._wall_base = 0

    def read(self) -> float:
        wall = (self.env.engine.now - self._wall_base) * self._n
        if wall <= 0:
            return 0.0
        busy = self._busy() - self._busy_base
        return max(0.0, 1.0 - busy / wall) * 10000.0

    def reset(self) -> None:
        self._busy_base = self._busy()
        self._wall_base = self.env.engine.now


def _probe_view(name: CounterName, env: CounterEnvironment) -> Any:
    """The typed probe object the instance *name* addresses.

    ``total`` is the backend's :class:`~repro.exec.probes.SchedulerProbe`
    totals; ``worker-thread#N`` is that worker's
    :class:`~repro.exec.probes.WorkerProbe`.  Counters bind to these
    views directly — never to scheduler internals — so every counter
    works against any :class:`~repro.exec.backend.SchedulerBackend`.
    """
    probes = env.require("runtime").probes
    if name.instance_name == "total":
        return probes.total
    if name.instance_name == "worker-thread":
        index = name.instance_index
        if index is None or not 0 <= index < len(probes.workers):
            raise ValueError(f"bad worker-thread index in {name}")
        return probes.workers[index]
    raise ValueError(f"unknown instance {name.instance_name!r} in {name}")


def _mono(attr_total: str, attr_worker: str | None = None):
    """Factory factory for monotonic counters over probe attributes."""
    attr_worker = attr_worker or attr_total

    def factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        view = _probe_view(name, env)
        attr = attr_total if name.instance_name == "total" else attr_worker
        return MonotonicCounter(name, info, env, partial(getattr, view, attr))

    return factory


def _avg(num_total: str, den_total: str, num_worker: str, den_worker: str):
    def factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        view = _probe_view(name, env)
        if name.instance_name == "total":
            num_attr, den_attr = num_total, den_total
        else:
            num_attr, den_attr = num_worker, den_worker
        return AverageRatioCounter(
            name,
            info,
            env,
            partial(getattr, view, num_attr),
            partial(getattr, view, den_attr),
        )

    return factory


def register_threads_counters(registry: CounterRegistry) -> None:
    """Register every ``/threads/...`` counter type."""
    env = registry.env

    def entry(
        counter: str,
        ctype: CounterType,
        help_text: str,
        factory,
        *,
        unit: str = "",
        instrument: int = 0,
    ) -> None:
        registry.register(
            CounterTypeEntry(
                info=CounterInfo(
                    type_name=f"/threads/{counter}",
                    counter_type=ctype,
                    help_text=help_text,
                    unit=unit,
                    instrument_ns_per_task=instrument,
                ),
                factory=factory,
            )
        )

    entry(
        "count/cumulative",
        CounterType.MONOTONICALLY_INCREASING,
        "Number of HPX threads (tasks) executed to completion",
        _mono("tasks_executed"),
        instrument=COUNT_INSTRUMENT_NS,
    )
    entry(
        "count/cumulative-phases",
        CounterType.MONOTONICALLY_INCREASING,
        "Number of HPX thread phases (activations) executed",
        _mono("phases", "tasks_executed"),
        instrument=COUNT_INSTRUMENT_NS,
    )
    entry(
        "count/created",
        CounterType.MONOTONICALLY_INCREASING,
        "Number of HPX threads created",
        _mono("tasks_created", "tasks_executed"),
        instrument=COUNT_INSTRUMENT_NS,
    )
    entry(
        "time/average",
        CounterType.AVERAGE_TIMER,
        "Average time spent executing one HPX thread (task duration / grain size)",
        _avg("exec_ns", "tasks_executed", "exec_ns", "tasks_executed"),
        unit="ns",
        instrument=TIMING_INSTRUMENT_NS,
    )
    entry(
        "time/average-overhead",
        CounterType.AVERAGE_TIMER,
        "Average scheduling cost of executing one HPX thread (task overhead)",
        _avg("overhead_ns", "tasks_executed", "overhead_ns", "tasks_executed"),
        unit="ns",
        instrument=TIMING_INSTRUMENT_NS,
    )
    entry(
        "time/cumulative",
        CounterType.MONOTONICALLY_INCREASING,
        "Cumulative execution time of all HPX threads (task time)",
        _mono("exec_ns"),
        unit="ns",
        instrument=TIMING_INSTRUMENT_NS,
    )
    entry(
        "time/cumulative-overhead",
        CounterType.MONOTONICALLY_INCREASING,
        "Cumulative scheduling overhead of all HPX threads",
        _mono("overhead_ns"),
        unit="ns",
        instrument=TIMING_INSTRUMENT_NS,
    )

    def wait_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        # Queue wait accrues while a task belongs to no worker (it may be
        # stolen, or sit in the kernel's global queue), so only the
        # scheduler totals can attribute it.
        if name.instance_name != "total":
            raise ValueError(f"{name} only has a total instance")
        view = env.require("runtime").probes.total
        return AverageRatioCounter(
            name,
            info,
            env,
            partial(getattr, view, "pending_wait_ns"),
            partial(getattr, view, "pending_waits"),
        )

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/threads/wait-time/pending",
                counter_type=CounterType.AVERAGE_TIMER,
                help_text="Average time a task spends staged in a queue before activation",
                unit="ns",
                instrument_ns_per_task=TIMING_INSTRUMENT_NS,
            ),
            factory=wait_factory,
            instances=lambda env: [("total", None)],
        )
    )

    def suspended_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        if name.instance_name != "total":
            raise ValueError(f"{name} only has a total instance")
        return RawCounter(
            name, info, env, partial(getattr, runtime.probes.total, "suspended_tasks")
        )

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/threads/count/instantaneous/suspended",
                counter_type=CounterType.RAW,
                help_text="Instantaneous number of suspended HPX threads "
                "(waiting on futures or mutexes)",
            ),
            factory=suspended_factory,
            instances=lambda env: [("total", None)],
        )
    )

    def active_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        if name.instance_name != "total":
            raise ValueError(f"{name} only has a total instance")
        return RawCounter(
            name,
            info,
            env,
            lambda: sum(1 for w in runtime.workers if w.current is not None),
        )

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/threads/count/instantaneous/active",
                counter_type=CounterType.RAW,
                help_text="Instantaneous number of HPX threads executing on a worker",
            ),
            factory=active_factory,
            instances=lambda env: [("total", None)],
        )
    )

    def stolen_cross_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        probes = env.require("runtime").probes
        if name.instance_name == "total":
            return MonotonicCounter(
                name,
                info,
                env,
                lambda: sum(w.steals_cross_socket for w in probes.workers),
            )
        return MonotonicCounter(
            name, info, env, partial(getattr, _probe_view(name, env), "steals_cross_socket")
        )

    entry(
        "count/stolen-cross-socket",
        CounterType.MONOTONICALLY_INCREASING,
        "Number of tasks stolen across the socket boundary",
        stolen_cross_factory,
        instrument=COUNT_INSTRUMENT_NS,
    )

    def pending_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        if name.instance_name == "total":
            return RawCounter(name, info, env, runtime.queue_length)
        index = name.instance_index
        if index is None or not 0 <= index < runtime.num_workers:
            raise ValueError(f"bad worker-thread index in {name}")
        return RawCounter(name, info, env, partial(runtime.worker_queue_length, index))

    entry(
        "count/instantaneous/pending",
        CounterType.RAW,
        "Instantaneous number of staged (pending) HPX threads",
        pending_factory,
    )

    def steals_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        if name.instance_name == "total":
            return MonotonicCounter(name, info, env, runtime.steals_total)
        return MonotonicCounter(
            name, info, env, partial(getattr, _probe_view(name, env), "steals_ok")
        )

    entry(
        "count/stolen",
        CounterType.MONOTONICALLY_INCREASING,
        "Number of tasks stolen from other workers' queues",
        steals_factory,
        instrument=COUNT_INSTRUMENT_NS,
    )

    def idle_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        probes = env.require("runtime").probes
        if name.instance_name == "total":
            return IdleRateCounter(name, info, env, probes.busy_ns, len(probes.workers))
        index = name.instance_index
        if index is None or not 0 <= index < len(probes.workers):
            raise ValueError(f"bad worker-thread index in {name}")
        return IdleRateCounter(name, info, env, partial(probes.busy_ns, index), 1)

    entry(
        "idle-rate",
        CounterType.AVERAGE_COUNT,
        "Worker idle rate since last reset, in 0.01% units",
        idle_factory,
        unit="0.01%",
        instrument=IDLE_INSTRUMENT_NS,
    )
