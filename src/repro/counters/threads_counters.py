"""Thread-manager counters (``/threads/...``).

These are the counters the paper's metrics are built on (Section V-C):

- **Task Duration** — ``/threads/time/average``
- **Task Overhead** — ``/threads/time/average-overhead``
- **Task Time** — ``/threads/time/cumulative``
- **Scheduling Overhead** — ``/threads/time/cumulative-overhead``

plus counts, queue lengths, steal statistics and the idle rate.  Each
type exposes a ``total`` instance and one per ``worker-thread#N``.

Instrumentation costs: the timing counters require timestamping every
task activation, so activating them charges ~50 ns per task each —
measurable (≈10 %) against very fine ~1 µs tasks on 1–2 cores, noise
otherwise, matching Section V-C.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.counters.base import (
    AverageRatioCounter,
    CounterEnvironment,
    CounterInfo,
    MonotonicCounter,
    PerformanceCounter,
    RawCounter,
)
from repro.counters.names import CounterName
from repro.counters.registry import CounterRegistry, CounterTypeEntry
from repro.counters.types import CounterType

# Per-activation timestamping cost while a timing counter is active.
TIMING_INSTRUMENT_NS = 25
COUNT_INSTRUMENT_NS = 5
IDLE_INSTRUMENT_NS = 15


class IdleRateCounter(PerformanceCounter):
    """1 - Δbusy/Δ(wall x workers), reported in units of 0.01 %
    (HPX convention: a reading of 9500 means 95 % idle)."""

    def __init__(
        self,
        name: CounterName,
        info: CounterInfo,
        env: CounterEnvironment,
        busy_source: Callable[[], int],
        num_workers: int,
    ) -> None:
        super().__init__(name, info, env)
        self._busy = busy_source
        self._n = num_workers
        self._busy_base = 0
        self._wall_base = 0

    def read(self) -> float:
        wall = (self.env.engine.now - self._wall_base) * self._n
        if wall <= 0:
            return 0.0
        busy = self._busy() - self._busy_base
        return max(0.0, 1.0 - busy / wall) * 10000.0

    def reset(self) -> None:
        self._busy_base = self._busy()
        self._wall_base = self.env.engine.now


def _scoped(name: CounterName, env: CounterEnvironment) -> tuple[Callable[[], Any], Any]:
    """Return (stats_getter, runtime) for the instance *name* addresses.

    ``total`` reads the thread-manager totals; ``worker-thread#N`` reads
    that worker's stats.
    """
    runtime = env.require("runtime")
    if name.instance_name == "total":
        return (lambda: runtime.stats), runtime
    if name.instance_name == "worker-thread":
        index = name.instance_index
        if index is None or not 0 <= index < runtime.num_workers:
            raise ValueError(f"bad worker-thread index in {name}")
        return (lambda: runtime.workers[index].stats), runtime
    raise ValueError(f"unknown instance {name.instance_name!r} in {name}")


def _mono(attr_total: str, attr_worker: str | None = None):
    """Factory factory for monotonic counters over stats attributes."""
    attr_worker = attr_worker or attr_total

    def factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        stats_of, _ = _scoped(name, env)
        attr = attr_total if name.instance_name == "total" else attr_worker
        return MonotonicCounter(name, info, env, lambda: getattr(stats_of(), attr))

    return factory


def _avg(num_total: str, den_total: str, num_worker: str, den_worker: str):
    def factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        stats_of, _ = _scoped(name, env)
        if name.instance_name == "total":
            num_attr, den_attr = num_total, den_total
        else:
            num_attr, den_attr = num_worker, den_worker
        return AverageRatioCounter(
            name,
            info,
            env,
            lambda: getattr(stats_of(), num_attr),
            lambda: getattr(stats_of(), den_attr),
        )

    return factory


def register_threads_counters(registry: CounterRegistry) -> None:
    """Register every ``/threads/...`` counter type."""
    env = registry.env

    def entry(
        counter: str,
        ctype: CounterType,
        help_text: str,
        factory,
        *,
        unit: str = "",
        instrument: int = 0,
    ) -> None:
        registry.register(
            CounterTypeEntry(
                info=CounterInfo(
                    type_name=f"/threads/{counter}",
                    counter_type=ctype,
                    help_text=help_text,
                    unit=unit,
                    instrument_ns_per_task=instrument,
                ),
                factory=factory,
            )
        )

    entry(
        "count/cumulative",
        CounterType.MONOTONICALLY_INCREASING,
        "Number of HPX threads (tasks) executed to completion",
        _mono("tasks_executed"),
        instrument=COUNT_INSTRUMENT_NS,
    )
    entry(
        "count/cumulative-phases",
        CounterType.MONOTONICALLY_INCREASING,
        "Number of HPX thread phases (activations) executed",
        _mono("phases", "tasks_executed"),
        instrument=COUNT_INSTRUMENT_NS,
    )
    entry(
        "count/created",
        CounterType.MONOTONICALLY_INCREASING,
        "Number of HPX threads created",
        _mono("tasks_created", "tasks_executed"),
        instrument=COUNT_INSTRUMENT_NS,
    )
    entry(
        "time/average",
        CounterType.AVERAGE_TIMER,
        "Average time spent executing one HPX thread (task duration / grain size)",
        _avg("exec_ns", "tasks_executed", "exec_ns", "tasks_executed"),
        unit="ns",
        instrument=TIMING_INSTRUMENT_NS,
    )
    entry(
        "time/average-overhead",
        CounterType.AVERAGE_TIMER,
        "Average scheduling cost of executing one HPX thread (task overhead)",
        _avg("overhead_ns", "tasks_executed", "overhead_ns", "tasks_executed"),
        unit="ns",
        instrument=TIMING_INSTRUMENT_NS,
    )
    entry(
        "time/cumulative",
        CounterType.MONOTONICALLY_INCREASING,
        "Cumulative execution time of all HPX threads (task time)",
        _mono("exec_ns"),
        unit="ns",
        instrument=TIMING_INSTRUMENT_NS,
    )
    entry(
        "time/cumulative-overhead",
        CounterType.MONOTONICALLY_INCREASING,
        "Cumulative scheduling overhead of all HPX threads",
        _mono("overhead_ns"),
        unit="ns",
        instrument=TIMING_INSTRUMENT_NS,
    )

    entry(
        "wait-time/pending",
        CounterType.AVERAGE_TIMER,
        "Average time a task spends staged in a queue before activation",
        _avg("pending_wait_ns", "pending_waits", "pending_wait_ns", "pending_waits"),
        unit="ns",
        instrument=TIMING_INSTRUMENT_NS,
    )

    def suspended_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        if name.instance_name != "total":
            raise ValueError(f"{name} only has a total instance")
        return RawCounter(name, info, env, lambda: runtime.stats.suspended_tasks)

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/threads/count/instantaneous/suspended",
                counter_type=CounterType.RAW,
                help_text="Instantaneous number of suspended HPX threads "
                "(waiting on futures or mutexes)",
            ),
            factory=suspended_factory,
            instances=lambda env: [("total", None)],
        )
    )

    def active_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        if name.instance_name != "total":
            raise ValueError(f"{name} only has a total instance")
        return RawCounter(
            name,
            info,
            env,
            lambda: sum(1 for w in runtime.workers if w.current is not None),
        )

    registry.register(
        CounterTypeEntry(
            info=CounterInfo(
                type_name="/threads/count/instantaneous/active",
                counter_type=CounterType.RAW,
                help_text="Instantaneous number of HPX threads executing on a worker",
            ),
            factory=active_factory,
            instances=lambda env: [("total", None)],
        )
    )

    def stolen_cross_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        if name.instance_name == "total":
            return MonotonicCounter(
                name,
                info,
                env,
                lambda: sum(w.stats.steals_cross_socket for w in runtime.workers),
            )
        index = name.instance_index
        if index is None or not 0 <= index < runtime.num_workers:
            raise ValueError(f"bad worker-thread index in {name}")
        return MonotonicCounter(
            name, info, env, lambda: runtime.workers[index].stats.steals_cross_socket
        )

    entry(
        "count/stolen-cross-socket",
        CounterType.MONOTONICALLY_INCREASING,
        "Number of tasks stolen across the socket boundary",
        stolen_cross_factory,
        instrument=COUNT_INSTRUMENT_NS,
    )

    def pending_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        if name.instance_name == "total":
            return RawCounter(name, info, env, runtime.queue_length)
        index = name.instance_index
        if index is None or not 0 <= index < runtime.num_workers:
            raise ValueError(f"bad worker-thread index in {name}")
        return RawCounter(name, info, env, lambda: len(runtime.workers[index].queue))

    entry(
        "count/instantaneous/pending",
        CounterType.RAW,
        "Instantaneous number of staged (pending) HPX threads",
        pending_factory,
    )

    def steals_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        if name.instance_name == "total":
            return MonotonicCounter(name, info, env, runtime.steals_total)
        index = name.instance_index
        if index is None or not 0 <= index < runtime.num_workers:
            raise ValueError(f"bad worker-thread index in {name}")
        return MonotonicCounter(name, info, env, lambda: runtime.workers[index].stats.steals_ok)

    entry(
        "count/stolen",
        CounterType.MONOTONICALLY_INCREASING,
        "Number of tasks stolen from other workers' queues",
        steals_factory,
        instrument=COUNT_INSTRUMENT_NS,
    )

    def idle_factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        runtime = env.require("runtime")
        if name.instance_name == "total":
            return IdleRateCounter(
                name,
                info,
                env,
                lambda: sum(w.stats.busy_ns for w in runtime.workers),
                runtime.num_workers,
            )
        index = name.instance_index
        if index is None or not 0 <= index < runtime.num_workers:
            raise ValueError(f"bad worker-thread index in {name}")
        return IdleRateCounter(name, info, env, lambda: runtime.workers[index].stats.busy_ns, 1)

    entry(
        "idle-rate",
        CounterType.AVERAGE_COUNT,
        "Worker idle rate since last reset, in 0.01% units",
        idle_factory,
        unit="0.01%",
        instrument=IDLE_INSTRUMENT_NS,
    )
