"""Counter-type registry: discovery and creation by name.

The paper: "Performance Counter instances are accessed by name, and
these names have a predefined structure … since all counters expose
their data using the same API, any code consuming counter data can be
utilized to access arbitrary system information with minimal effort."

``discover_counters`` expands wildcard instances
(``/threads{locality#0/worker-thread#*}/count/cumulative``);
``create_counter`` instantiates one concrete counter.  The special
``arithmetics`` and ``statistics`` objects build derived counters on
top of other registered counters.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.counters.aggregating import DEFAULT_WINDOW, StatisticsCounter
from repro.counters.arithmetic import ArithmeticCounter
from repro.counters.base import CounterEnvironment, CounterInfo, PerformanceCounter
from repro.counters.names import CounterName, CounterNameError, parse_counter_name
from repro.counters.types import CounterType

# (instance_name, instance_index) pairs a counter type supports.
InstanceLister = Callable[[CounterEnvironment], list[tuple[str, int | None]]]
Factory = Callable[[CounterName, CounterInfo, CounterEnvironment], PerformanceCounter]


def default_instances(env: CounterEnvironment) -> list[tuple[str, int | None]]:
    """total + one instance per worker thread (the HPX convention)."""
    instances: list[tuple[str, int | None]] = [("total", None)]
    if env.runtime is not None:
        instances.extend(("worker-thread", i) for i in range(env.runtime.num_workers))
    return instances


@dataclass(frozen=True)
class CounterTypeEntry:
    """One registered counter type."""

    info: CounterInfo
    factory: Factory
    instances: InstanceLister = default_instances


class CounterRegistry:
    """All counter types known to one application run."""

    def __init__(self, env: CounterEnvironment) -> None:
        self.env = env
        env.registry = self
        self._types: dict[str, CounterTypeEntry] = {}
        # Counter type name -> provider identity ("" for direct register()).
        self._provenance: dict[str, str] = {}

    # -- registration ------------------------------------------------------

    def register(self, entry: CounterTypeEntry, *, provider: str = "") -> None:
        """Add one counter type; duplicate type names are an error."""
        type_name = entry.info.type_name
        if type_name in self._types:
            raise ValueError(f"counter type {type_name} already registered")
        self._types[type_name] = entry
        self._provenance[type_name] = provider

    def install(self, provider: "Any") -> list[str]:
        """Install every counter type a :class:`CounterProvider` declares.

        Type names are validated against the ``/object/counter`` grammar
        and checked for conflicts across providers; violations raise
        :class:`~repro.counters.providers.ProviderError` with an
        actionable message.  Returns the installed type names.
        """
        from repro.counters.providers import (
            ProviderError,
            validate_provider_name,
            validate_type_name,
        )

        pname = validate_provider_name(getattr(provider, "name", None))
        installed: list[str] = []
        for entry in provider.counter_types(self.env):
            type_name = validate_type_name(pname, entry.info.type_name)
            if type_name in self._types:
                holder = self._provenance.get(type_name) or "direct registration"
                raise ProviderError(
                    f"provider {pname!r} declares counter type {type_name!r} already "
                    f"registered by {holder!r}; counter type names must be unique "
                    f"across providers — pick a distinct /object or counter name"
                )
            self._types[type_name] = entry
            self._provenance[type_name] = pname
            installed.append(type_name)
        return installed

    def provider_of(self, type_name: str) -> str:
        """Provider identity that registered *type_name* ("" if direct)."""
        return self._provenance.get(type_name, "")

    def providers(self) -> list[str]:
        """Distinct provider identities present in this registry."""
        seen: list[str] = []
        for pname in self._provenance.values():
            if pname and pname not in seen:
                seen.append(pname)
        return seen

    # -- listing / discovery --------------------------------------------------

    def counter_types(self, pattern: str | None = None) -> list[CounterTypeEntry]:
        """Registered types, optionally filtered by a glob on the type name."""
        entries = sorted(self._types.values(), key=lambda e: e.info.type_name)
        if pattern is None:
            return entries
        return [e for e in entries if fnmatch.fnmatch(e.info.type_name, pattern)]

    def discover_counters(self, spec: str) -> list[str]:
        """Expand *spec* (possibly with wildcard instances) to concrete
        counter names."""
        name = parse_counter_name(spec)
        if name.object_name in ("arithmetics", "statistics"):
            return [spec]
        entry = self._lookup(name)
        if not name.has_wildcard:
            return [str(name)]
        result = []
        for inst_name, inst_index in entry.instances(self.env):
            if name.instance_is_wildcard and inst_name != name.instance_name:
                continue
            if name.instance_is_wildcard and inst_index is None:
                continue
            if not name.instance_is_wildcard and inst_name != name.instance_name:
                continue
            result.append(str(name.with_instance(inst_name, inst_index)))
        if not result:
            raise CounterNameError(f"no instances match {spec!r}")
        return result

    # -- creation ----------------------------------------------------------------

    def create_counter(self, spec: str | CounterName) -> PerformanceCounter:
        """Instantiate one concrete counter (no wildcards allowed)."""
        name = parse_counter_name(spec) if isinstance(spec, str) else spec
        if name.has_wildcard:
            raise CounterNameError(
                f"cannot create wildcard counter {spec}; use discover_counters first"
            )
        if name.object_name == "arithmetics":
            return self._create_arithmetic(name)
        if name.object_name == "statistics":
            return self._create_statistics(name)
        entry = self._lookup(name)
        return entry.factory(name, entry.info, self.env)

    def create_counters(self, specs: Iterable[str]) -> list[PerformanceCounter]:
        """Discover and create every counter matching *specs*."""
        counters = []
        for spec in specs:
            for concrete in self.discover_counters(spec):
                counters.append(self.create_counter(concrete))
        return counters

    # -- internals ---------------------------------------------------------------

    def _lookup(self, name: CounterName) -> CounterTypeEntry:
        try:
            return self._types[name.type_name]
        except KeyError:
            known = ", ".join(sorted(self._types))
            raise CounterNameError(
                f"unknown counter type {name.type_name!r}; known types: {known}"
            ) from None

    def _create_arithmetic(self, name: CounterName) -> ArithmeticCounter:
        if not name.parameters:
            raise CounterNameError(
                f"arithmetic counter needs @counter1,counter2,... parameters: {name}"
            )
        factor = 1.0
        specs = []
        for element in name.parameters.split(","):
            element = element.strip()
            if element.startswith("factor="):
                factor = float(element[len("factor=") :])
            elif element:
                specs.append(element)
        underlying = self.create_counters(specs)
        info = CounterInfo(
            type_name=f"/arithmetics/{name.counter_name}",
            counter_type=CounterType.ARITHMETIC,
            help_text=f"{name.counter_name} of {len(underlying)} underlying counters",
        )
        return ArithmeticCounter(name, info, self.env, underlying, name.counter_name, factor)

    def _create_statistics(self, name: CounterName) -> StatisticsCounter:
        if not name.embedded_instance:
            raise CounterNameError(f"statistics counter needs an embedded counter instance: {name}")
        underlying = self.create_counter(name.embedded_instance)
        window = DEFAULT_WINDOW
        if name.parameters:
            window = int(name.parameters)
        info = CounterInfo(
            type_name=f"/statistics/{name.counter_name}",
            counter_type=CounterType.AGGREGATING,
            help_text=f"{name.counter_name} over samples of {name.embedded_instance}",
        )
        return StatisticsCounter(name, info, self.env, underlying, name.counter_name, window)


def build_default_registry(env: CounterEnvironment) -> CounterRegistry:
    """Registry with every built-in counter type wired to *env*.

    Legacy spelling of :func:`repro.counters.providers.build_registry`
    without a workload: the built-in provider chain (gated on the
    environment exactly as before) plus any third-party providers
    installed through the ``repro.counter_providers`` entry-point group.
    """
    # Imported here to avoid a cycle (providers imports registry types).
    from repro.counters.providers import build_registry

    return build_registry(env)
