"""PAPI counters (``/papi/...``) wired to the machine's hardware events.

Reading a hardware event set at every context switch is more expensive
than software timestamping, so PAPI counters carry a larger per-task
instrumentation cost — the source of the "up to 16 %" collection
overhead the paper reports for very fine tasks (vs ≤10 % for the
software counters alone).
"""

from __future__ import annotations

from repro.counters.base import (
    CounterEnvironment,
    CounterInfo,
    MonotonicCounter,
    PerformanceCounter,
)
from repro.counters.names import CounterName
from repro.counters.registry import CounterRegistry, CounterTypeEntry
from repro.counters.types import CounterType
from repro.papi.events import PAPI_EVENTS, PapiEvent

PAPI_INSTRUMENT_NS = 30  # per event set, per task activation


def register_papi_counters(registry: CounterRegistry) -> None:
    """Register one ``/papi/<EVENT>`` type per hardware event the
    platform's counter model exposes (all known events when no PAPI
    substrate is in the environment)."""
    papi = registry.env.papi
    available = None if papi is None else getattr(papi, "events", None)
    for event in PAPI_EVENTS:
        if available is not None and event.name not in available:
            continue
        registry.register(
            CounterTypeEntry(
                info=CounterInfo(
                    type_name=f"/papi/{event.name}",
                    counter_type=CounterType.MONOTONICALLY_INCREASING,
                    help_text=event.description,
                    unit="events",
                    instrument_ns_per_task=PAPI_INSTRUMENT_NS,
                ),
                factory=_make_factory(event),
            )
        )


def _make_factory(event: PapiEvent):
    def factory(
        name: CounterName, info: CounterInfo, env: CounterEnvironment
    ) -> PerformanceCounter:
        papi = env.require("papi")
        if name.instance_name == "total":
            return MonotonicCounter(name, info, env, lambda: papi.read(event))
        if name.instance_name == "worker-thread":
            runtime = env.require("runtime")
            index = name.instance_index
            if index is None or not 0 <= index < runtime.num_workers:
                raise ValueError(f"bad worker-thread index in {name}")
            core_index = runtime.workers[index].core_index
            return MonotonicCounter(name, info, env, lambda: papi.read(event, core_index))
        raise ValueError(f"unknown instance {name.instance_name!r} in {name}")

    return factory
