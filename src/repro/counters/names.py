"""Counter-name grammar.

HPX performance counter instances are accessed by name with the
predefined structure::

    /objectname{parentinstancename#parentindex/instancename#instanceindex}/countername@parameters

Examples from the paper:

- ``/threads{locality#0/total}/time/average``
- ``/threads{locality#0/worker-thread#1}/count/cumulative``
- ``/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD``
- ``/arithmetics/add@/threads{locality#0/total}/time/average,/threads{locality#0/total}/time/average-overhead``
- ``/statistics{/threads{locality#0/total}/time/average}/rolling_average@5``

The instance part may be omitted (defaults to ``locality#0/total``),
either index may be the wildcard ``*`` (expanded at discovery time),
and — for statistics counters — the instance may itself be a full
counter name (nested braces are handled).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

_INSTANCE_RE = re.compile(
    r"""
    ^(?P<parent>[a-zA-Z_][\w\-]*)\#(?P<pidx>\d+|\*)       # locality#0
    (?:/(?P<inst>[a-zA-Z_][\w\-]*)(?:\#(?P<idx>\d+|\*))?)?$  # /worker-thread#1
    """,
    re.VERBOSE,
)

_OBJECT_RE = re.compile(r"^[a-zA-Z_][\w\-]*$")

DEFAULT_PARENT = "locality"
DEFAULT_INSTANCE = "total"


class CounterNameError(ValueError):
    """Malformed counter name."""


@dataclass(frozen=True)
class CounterName:
    """Structured form of a performance-counter name."""

    object_name: str
    counter_name: str
    parent_instance: str = DEFAULT_PARENT
    parent_index: int | None = 0  # None means wildcard '*'
    instance_name: str = DEFAULT_INSTANCE
    instance_index: int | None = None
    instance_is_wildcard: bool = False
    parameters: str | None = None
    # For statistics counters the instance is itself a counter name.
    embedded_instance: str | None = None

    @property
    def full_instance(self) -> str:
        if self.embedded_instance is not None:
            return self.embedded_instance
        pidx = "*" if self.parent_index is None else str(self.parent_index)
        base = f"{self.parent_instance}#{pidx}/{self.instance_name}"
        if self.instance_is_wildcard:
            return f"{base}#*"
        if self.instance_index is not None:
            return f"{base}#{self.instance_index}"
        return base

    @property
    def type_name(self) -> str:
        """The counter *type* this instance belongs to: /object/counter."""
        return f"/{self.object_name}/{self.counter_name}"

    @property
    def has_wildcard(self) -> bool:
        return self.instance_is_wildcard or self.parent_index is None

    @classmethod
    def parse(cls, text: str) -> "CounterName":
        """Parse a counter-name string (alias of :func:`parse_counter_name`)."""
        return parse_counter_name(text)

    def with_instance(self, instance_name: str, instance_index: int | None) -> "CounterName":
        """Concrete copy for one discovered instance."""
        return replace(
            self,
            instance_name=instance_name,
            instance_index=instance_index,
            instance_is_wildcard=False,
            parent_index=0 if self.parent_index is None else self.parent_index,
        )

    def __str__(self) -> str:
        return format_counter_name(self)


def _split_instance(text: str) -> tuple[str, str | None, str]:
    """Split ``/object{instance}/rest`` handling nested braces.

    Returns (object_name, instance_or_None, rest_after_instance).
    """
    if not text.startswith("/"):
        raise CounterNameError(f"counter name must start with '/': {text!r}")
    body = text[1:]
    brace = body.find("{")
    slash = body.find("/")
    if brace == -1 or (slash != -1 and slash < brace):
        # No instance part: /object/counter...
        if slash == -1:
            raise CounterNameError(f"missing counter name: {text!r}")
        return body[:slash], None, body[slash:]
    object_name = body[:brace]
    depth = 0
    for i in range(brace, len(body)):
        if body[i] == "{":
            depth += 1
        elif body[i] == "}":
            depth -= 1
            if depth == 0:
                return object_name, body[brace + 1 : i], body[i + 1 :]
    raise CounterNameError(f"unbalanced braces in counter name: {text!r}")


# Parsed-name cache: campaigns and harness loops re-parse the same spec
# strings for every run, and CounterName is a frozen value object, so
# the results can be shared.  Bounded to keep adversarial input finite.
_PARSE_CACHE: dict[str, CounterName] = {}
_PARSE_CACHE_MAX = 4096


def parse_counter_name(text: str) -> CounterName:
    """Parse a counter-name string into a :class:`CounterName`.

    Raises :class:`CounterNameError` on malformed input.  Successful
    parses are cached (the grammar is pure, the result immutable).
    """
    cached = _PARSE_CACHE.get(text)
    if cached is not None:
        return cached
    name = _parse_uncached(text)
    if len(_PARSE_CACHE) < _PARSE_CACHE_MAX:
        _PARSE_CACHE[text] = name
    return name


def _parse_uncached(text: str) -> CounterName:
    text = text.strip()
    object_name, instance, rest = _split_instance(text)
    if not _OBJECT_RE.match(object_name):
        raise CounterNameError(f"malformed object name {object_name!r} in {text!r}")
    if not rest.startswith("/"):
        raise CounterNameError(f"missing counter name after instance in {text!r}")
    rest = rest[1:]
    params: str | None = None
    if "@" in rest:
        rest, params = rest.split("@", 1)
    counter_name = rest.strip("/")
    if not counter_name:
        raise CounterNameError(f"empty counter name in {text!r}")

    parent = DEFAULT_PARENT
    parent_index: int | None = 0
    inst_name = DEFAULT_INSTANCE
    inst_index: int | None = None
    inst_wild = False
    embedded: str | None = None

    if instance:
        instance = instance.strip()
        if instance.startswith("/"):
            embedded = instance
        else:
            imatch = _INSTANCE_RE.match(instance)
            if not imatch:
                raise CounterNameError(f"malformed counter instance: {instance!r} in {text!r}")
            parent = imatch.group("parent")
            pidx = imatch.group("pidx")
            parent_index = None if pidx == "*" else int(pidx)
            if imatch.group("inst"):
                inst_name = imatch.group("inst")
                idx = imatch.group("idx")
                if idx == "*":
                    inst_wild = True
                elif idx is not None:
                    inst_index = int(idx)

    return CounterName(
        object_name=object_name,
        counter_name=counter_name,
        parent_instance=parent,
        parent_index=parent_index,
        instance_name=inst_name,
        instance_index=inst_index,
        instance_is_wildcard=inst_wild,
        parameters=params,
        embedded_instance=embedded,
    )


def format_counter_name(name: CounterName) -> str:
    """Render a :class:`CounterName` back to its canonical string form."""
    text = f"/{name.object_name}{{{name.full_instance}}}/{name.counter_name}"
    if name.parameters is not None:
        text += f"@{name.parameters}"
    return text
