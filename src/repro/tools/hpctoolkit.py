"""HPCToolkit model.

"While HPCToolkit doesn't set a limit on the number of threads per
process, the introduced overhead becomes unacceptable as each thread is
launched and the file system is accessed, and in most benchmark cases
the program crashes due to system resource constraints."  (Section II)
"""

from __future__ import annotations

from repro.simcore.clock import ms, us
from repro.tools.base import ToolModel

HPCTOOLKIT = ToolModel(
    name="HPCToolkit",
    max_threads=None,  # no table limit ...
    serialized_per_thread_ns=ms(2),  # ... but per-thread measurement files
    per_thread_memory_bytes=1_536 * 1024,  # unwind caches + trace buffers
    per_dispatch_ns=us(5),  # sampling interrupts + stack unwinds
)
