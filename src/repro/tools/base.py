"""External-tool instrumentation model over the kernel runtime."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.experiments.config import ExperimentConfig
from repro.inncabs.suite import get_benchmark
from repro.kernel.scheduler import StdRuntime
from repro.kernel.thread import OSThread
from repro.simcore.clock import s as seconds
from repro.simcore.events import Engine
from repro.simcore.machine import Machine


class ToolOutcome(enum.Enum):
    """Table I cell states."""

    COMPLETED = "completed"
    SEGV = "SegV"
    ABORT = "Abort"
    TIMEOUT = "timeout"


class ToolCrash(RuntimeError):
    """The instrumented process died (tool-induced)."""

    def __init__(self, outcome: ToolOutcome, reason: str) -> None:
        super().__init__(reason)
        self.outcome = outcome


@dataclass(frozen=True)
class ToolModel:
    """Cost/failure model of one external tool."""

    name: str
    # Fixed-size thread bookkeeping: creating more threads than this
    # kills the process (TAU's compile-time table).  None = unlimited.
    max_threads: int | None
    # Serialized per-thread setup (file creation, table registration):
    # every thread creation queues on this shared resource.
    serialized_per_thread_ns: int
    # Extra committed memory per live thread (measurement buffers).
    per_thread_memory_bytes: int
    # Per-dispatch sampling/probe overhead on every context switch.
    per_dispatch_ns: int
    # Simulated wall-clock budget before the run is declared hung.
    timeout_ns: int = seconds(120)


@dataclass
class ToolRunResult:
    """One Table I cell."""

    benchmark: str
    tool: str
    outcome: ToolOutcome
    exec_time_ns: int = 0
    threads_created: int = 0

    @property
    def exec_time_ms(self) -> float:
        return self.exec_time_ns / 1e6

    def overhead_percent(self, baseline_ns: int) -> float | None:
        """Overhead vs an uninstrumented baseline, as the paper reports."""
        if self.outcome is not ToolOutcome.COMPLETED or baseline_ns <= 0:
            return None
        return (self.exec_time_ns - baseline_ns) / baseline_ns * 100.0


class InstrumentedStdRuntime(StdRuntime):
    """Kernel runtime with an external tool attached.

    Thread creation pays the tool's serialized setup (a shared-timeline
    resource, like the scheduler lock), commits extra measurement
    memory, and trips the tool's thread-table limit.
    """

    def __init__(self, *args: Any, tool: ToolModel, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        base = self.params
        self.params = replace(
            base,
            context_switch_ns=base.context_switch_ns + tool.per_dispatch_ns,
            thread_commit_bytes=base.thread_commit_bytes + tool.per_thread_memory_bytes,
        )
        self.tool = tool
        self._tool_serial_free_at = 0

    def _tool_serial_delay(self) -> int:
        start = max(self.engine.now, self._tool_serial_free_at)
        self._tool_serial_free_at = start + self.tool.serialized_per_thread_ns
        return self._tool_serial_free_at - self.engine.now

    def _make_thread(self, *args: Any, **kwargs: Any) -> OSThread:
        if (
            self.tool.max_threads is not None
            and self.stats.threads_created >= self.tool.max_threads
        ):
            reason = (
                f"{self.tool.name}: thread table exhausted "
                f"({self.stats.threads_created} >= {self.tool.max_threads})"
            )
            self.abort_reason = reason
            self.aborted = True
            self.engine.stop(reason)
            raise ToolCrash(ToolOutcome.SEGV, reason)
        thread = super()._make_thread(*args, **kwargs)
        return thread

    def do_spawn(self, core: Any, thread: Any, effect: Any) -> None:
        # The tool's serialized per-thread setup happens inside the
        # creating thread, before std::async returns.
        delay = self._tool_serial_delay()
        thread.exec_ns += delay
        self.stats.exec_ns += delay
        self.engine.schedule(delay, lambda: self._spawn_after_tool(core, thread, effect))

    def _spawn_after_tool(self, core: Any, thread: Any, effect: Any) -> None:
        if self.aborted:
            return
        try:
            super().do_spawn(core, thread, effect)
        except ToolCrash:
            pass  # abort flag already set; the engine stops


def run_with_tool(
    benchmark: str,
    tool: ToolModel,
    *,
    cores: int = 20,
    params: Mapping[str, Any] | None = None,
    config: ExperimentConfig | None = None,
) -> ToolRunResult:
    """Run the std::async *benchmark* under *tool*; one Table I cell."""
    config = config or ExperimentConfig()
    bench = get_benchmark(benchmark)
    merged = bench.params_with_defaults(params)
    root_fn, root_args = bench.make_root(merged)

    engine = Engine()
    machine = Machine(config.machine)
    rt = InstrumentedStdRuntime(engine, machine, num_workers=cores, params=config.std, tool=tool)
    result = ToolRunResult(benchmark=benchmark, tool=tool.name, outcome=ToolOutcome.COMPLETED)
    try:
        future = rt.submit(root_fn, *root_args)
        engine.run(until=tool.timeout_ns)
    except ToolCrash as crash:
        result.outcome = crash.outcome
        result.threads_created = rt.stats.threads_created
        return result
    result.threads_created = rt.stats.threads_created
    if rt.aborted:
        # Tool-induced memory exhaustion reads as SegV (the tool's
        # buffers clobbered); plain thread explosion as Abort.
        induced = tool.per_thread_memory_bytes > 0
        result.outcome = ToolOutcome.SEGV if induced else ToolOutcome.ABORT
        return result
    if not future.is_ready:
        result.outcome = ToolOutcome.TIMEOUT
        result.exec_time_ns = engine.now
        return result
    result.exec_time_ns = engine.now
    return result
