"""External performance-tool models (Section II / Table I).

TAU and HPCToolkit instrument the ``std::async`` baseline the way the
real tools do — and fail the way the real tools fail:

- **TAU** sizes its per-thread measurement tables at program launch
  (default 128 threads/process, fixed at compile time); benchmarks that
  create more threads than the table holds die with SegV.  Where it
  fits, per-thread registration and event buffering serialize on TAU's
  internal locks, inflating runtimes by orders of magnitude.
- **HPCToolkit** has no thread-table limit, but opens measurement files
  per thread; thousands of short-lived threads serialize on the
  filesystem and exhaust file descriptors / memory, so the benchmark
  either crashes or times out.

The contrast with the in-runtime HPX counters — same metrics, ~zero
infrastructure, no crash — is the paper's Table I argument.
"""

from repro.tools.base import ToolCrash, ToolModel, ToolOutcome, ToolRunResult, run_with_tool
from repro.tools.hpctoolkit import HPCTOOLKIT
from repro.tools.tau import TAU

__all__ = [
    "HPCTOOLKIT",
    "TAU",
    "ToolCrash",
    "ToolModel",
    "ToolOutcome",
    "ToolRunResult",
    "run_with_tool",
]
