"""TAU model.

"In the case of TAU, the data structures used to store performance
measurements are constructed at program launch ... While the maximum
number of threads per process is a configurable option (default=128),
it is fixed at compilation time.  Even when set to a much larger number
(i.e. 64k) TAU causes the benchmark programs to crash."  (Section II)
"""

from __future__ import annotations

from repro.simcore.clock import ms, us
from repro.tools.base import ToolModel

TAU = ToolModel(
    name="TAU",
    max_threads=128,  # compile-time thread table (the paper's default)
    serialized_per_thread_ns=ms(3),  # per-thread registration, serialized
    per_thread_memory_bytes=2 * 1024 * 1024,  # measurement tables per thread
    per_dispatch_ns=us(3),  # event probes on context switches
)


def tau_with_table(max_threads: int) -> ToolModel:
    """TAU rebuilt with a larger thread table (the paper's 64k attempt —
    the memory for per-thread tables then kills the runs instead)."""
    return ToolModel(
        name=f"TAU(threads={max_threads})",
        max_threads=max_threads,
        serialized_per_thread_ns=TAU.serialized_per_thread_ns,
        per_thread_memory_bytes=TAU.per_thread_memory_bytes,
        per_dispatch_ns=TAU.per_dispatch_ns,
    )
