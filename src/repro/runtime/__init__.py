"""HPX-style task runtime.

A user-level thread scheduler in the spirit of HPX's thread manager:
lightweight tasks staged in per-worker double-ended queues, executed
depth-first (LIFO at the owner's end), with FIFO work stealing from
other workers (same socket preferred), futures for synchronization and
the four launch policies the paper exercises (``async``, ``deferred``,
``fork``, ``sync``).

The thread manager keeps the exact accounting that backs the paper's
``/threads/...`` performance counters: per-task execution time, per-task
scheduling overhead, cumulative counts, queue lengths, steal counts and
per-worker idle time.
"""

from repro.runtime.config import HpxParams
from repro.runtime.executors import AutoChunkSize, StaticChunkSize, for_each, transform_reduce
from repro.runtime.lcos import Barrier, Event, Latch, dataflow, then
from repro.runtime.policies import LaunchPolicy
from repro.runtime.scheduler import DeadlockError, HpxRuntime, ThreadManagerStats, WorkerStats
from repro.runtime.sync import Mutex
from repro.runtime.task import Task, TaskState

__all__ = [
    "AutoChunkSize",
    "Barrier",
    "DeadlockError",
    "Event",
    "HpxParams",
    "HpxRuntime",
    "Latch",
    "LaunchPolicy",
    "Mutex",
    "StaticChunkSize",
    "Task",
    "TaskState",
    "ThreadManagerStats",
    "WorkerStats",
    "dataflow",
    "for_each",
    "then",
    "transform_reduce",
]
