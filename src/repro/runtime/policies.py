"""Launch policies (Section V-B of the paper).

``async``
    Stage the child in the spawning worker's queue; the parent
    continues (child stealing).  The policy every presented result
    uses — the paper found it fastest for both runtimes.
``fork``
    New in HPX 0.9.11: continuation stealing for strict fork/join —
    the child is placed at the hot end of the queue so it runs next on
    this worker, and the parent's continuation becomes stealable.
``deferred``
    The child is not staged at all; it runs inline, on the waiting
    worker, at the first ``get()`` on its future.
``sync``
    Execute inline at the spawn point.
"""

from __future__ import annotations

import enum


class LaunchPolicy(enum.Enum):
    ASYNC = "async"
    DEFERRED = "deferred"
    FORK = "fork"
    SYNC = "sync"

    @classmethod
    def parse(cls, text: str) -> "LaunchPolicy":
        policy = _BY_NAME.get(text)
        if policy is not None:  # exact lowercase name: no enum machinery
            return policy
        try:
            return cls(text.lower())
        except ValueError:
            valid = ", ".join(p.value for p in cls)
            raise ValueError(f"unknown launch policy {text!r}; expected one of {valid}")


_BY_NAME = {p.value: p for p in LaunchPolicy}
