"""Cost parameters of the HPX-style runtime.

The magnitudes are calibrated so the ``/threads/time/average-overhead``
counter reads 0.5–1 µs per task for the very-fine-grained Inncabs
benchmarks, as reported in Section VI of the paper, and so steal traffic
grows more expensive across the socket boundary (the knee in
Figures 11/12).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HpxParams:
    """Tunable costs (nanoseconds unless noted) of the task runtime."""

    # Charged inside the *parent's* body when it calls async().
    task_create_ns: int = 150
    enqueue_ns: int = 100

    # Charged as scheduling overhead of the *child* task.
    dequeue_ns: int = 50
    context_switch_ns: int = 120
    cleanup_ns: int = 70

    # Synchronization costs.
    future_get_ready_ns: int = 50  # get() on an already-ready future
    suspend_ns: int = 180  # suspend on a not-ready future / contended mutex
    notify_ns: int = 120  # waking a suspended task when a future is set
    mutex_ns: int = 60  # uncontended lock/unlock

    # Work stealing.
    steal_same_socket_ns: int = 600
    steal_cross_socket_ns: int = 1600
    # Extra activation cost when a task runs on a different socket than
    # it was created on: its context (stack, closure, queue/future cache
    # lines) must migrate across the QPI link.  Negligible for coarse
    # tasks, a large relative cost for ~1 µs tasks — the source of the
    # socket-boundary knee in Figures 11/12.
    cross_socket_activation_ns: int = 900
    # Coherence-channel model: once workers span both sockets, every
    # scheduler operation (activation, spawn, resume) touches runtime
    # structures whose cache lines bounce over QPI.  The channel is a
    # serialized resource: ops from socket-0 workers hold it briefly,
    # ops from remote-socket workers hold it much longer.  Coarse tasks
    # issue few scheduler ops per second and never notice; ~1 µs tasks
    # saturate it — reproducing the paper's observation that the very
    # fine-grained benchmarks stop scaling (or degrade) past the
    # 10-core socket boundary (Figs 5, 6, 11, 12).
    qpi_local_hold_ns: int = 25
    qpi_remote_hold_ns: int = 160

    # Hyper-threading model: when two workers compute on one physical
    # core simultaneously, each runs at 1/1.6 of full speed (combined
    # throughput ~1.25x a single thread — typical SMT yield; the paper
    # measured "small change in performance" and disabled HT).
    smt_slowdown: float = 1.6

    # Fraction of a task's memory traffic served from the remote socket
    # when it executes away from its home socket.
    cross_socket_data_fraction: float = 0.7

    # Stack handling: HPX allocates a small user-level stack per task.
    stack_alloc_base_ns: int = 60
    stack_alloc_per_kb_ns: int = 8
    default_stack_bytes: int = 8 * 1024

    # -- ablation knobs (defaults are HPX's actual design choices) -----
    # Local queue discipline for newly spawned tasks: "lifo" executes
    # depth-first (HPX; bounds the live-task count), "fifo" executes
    # breadth-first (explodes live tasks on recursive benchmarks — the
    # ablation showing *why* HPX chose LIFO).
    local_queue_discipline: str = "lifo"
    # Victim scan order when stealing: "near-first" prefers same-socket
    # victims (HPX), "random" ignores topology (pays cross-socket
    # latency far more often), "far-first" is the adversarial order.
    steal_order: str = "near-first"

    # Memory-traffic multiplier for benchmarks whose access pattern is
    # hurt by depth-first (LIFO) execution order; see DESIGN.md §1 and
    # the Pyramids discussion — a wavefront stencil loses temporal
    # locality under the HPX execution order at low core counts.
    locality_penalty_default: float = 1.0

    def stack_alloc_ns(self, stack_bytes: int) -> int:
        """Cost of allocating a task stack of *stack_bytes*."""
        size = stack_bytes if stack_bytes > 0 else self.default_stack_bytes
        return self.stack_alloc_base_ns + self.stack_alloc_per_kb_ns * (size // 1024)
