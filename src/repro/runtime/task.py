"""HPX-thread (task) objects and their life cycle.

State machine (matching HPX's thread states):

    PENDING --(worker picks)--> ACTIVE --(awaits/locks)--> SUSPENDED
    SUSPENDED --(future set / mutex granted)--> PENDING
    ACTIVE --(body returns)--> TERMINATED

Tasks created with the ``deferred`` policy start in DEFERRED and move to
ACTIVE directly when a waiter executes them inline.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator

from repro.model.future import SimFuture
from repro.runtime.policies import LaunchPolicy


class TaskState(enum.Enum):
    PENDING = "pending"  # staged in a queue, runnable
    DEFERRED = "deferred"  # not staged; runs inline at first wait
    ACTIVE = "active"  # executing on a worker
    SUSPENDED = "suspended"  # waiting on a future or mutex
    TERMINATED = "terminated"


class Task:
    """One lightweight HPX thread."""

    __slots__ = (
        "tid",
        "fn",
        "args",
        "policy",
        "future",
        "state",
        "parent_tid",
        "home_socket",
        "stack_bytes",
        "created_at",
        "gen",
        "exec_ns",
        "overhead_ns",
        "phases",
        "pending_send",
        "description",
        "staged_at",
    )

    def __init__(
        self,
        tid: int,
        fn: Callable[..., Any],
        args: tuple,
        policy: LaunchPolicy,
        *,
        parent_tid: int | None,
        home_socket: int,
        stack_bytes: int = 0,
        created_at: int = 0,
        description: str = "",
    ) -> None:
        self.tid = tid
        self.fn = fn
        self.args = args
        self.policy = policy
        self.future = SimFuture(producer_task=self)
        self.state = (TaskState.DEFERRED if policy is LaunchPolicy.DEFERRED else TaskState.PENDING)
        self.parent_tid = parent_tid
        self.home_socket = home_socket
        self.stack_bytes = stack_bytes
        self.created_at = created_at
        self.gen: Generator | None = None  # bound lazily at first activation
        # Accounting backing the /threads/time/* counters.
        self.exec_ns = 0
        self.overhead_ns = 0
        self.phases = 0  # number of activations (HPX "thread phases")
        # Value to send into the generator at next resume.
        self.pending_send: Any = None
        self.description = description or getattr(fn, "__name__", "task")
        # Simulated time this task was last staged in a queue (None when
        # it never went through one, e.g. inline execution); backs the
        # /threads/wait-time/pending counter.
        self.staged_at: int | None = None

    def bind(self, ctx: Any) -> Generator:
        """Instantiate the generator with the runtime-provided context."""
        if self.gen is None:
            gen = self.fn(ctx, *self.args)
            if not isinstance(gen, Generator):
                raise TypeError(f"task body {self.description!r} must be a generator function")
            self.gen = gen
        return self.gen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.tid} {self.description} {self.state.value}>"
