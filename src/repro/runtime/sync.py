"""Local synchronization primitives (``hpx::lcos::local::mutex``).

A contended lock suspends the acquiring task (it does not spin or block
its worker); unlock hands the mutex directly to the first waiter and
reschedules it.  The Intersim/Round/Floorplan/QAP benchmarks use these.
"""

from __future__ import annotations

from collections import deque

from repro.runtime.task import Task


class Mutex:
    """FIFO-fair suspending mutex."""

    __slots__ = ("mid", "owner", "waiters", "acquisitions", "contentions")

    def __init__(self, mid: int) -> None:
        self.mid = mid
        self.owner: Task | None = None
        self.waiters: deque[Task] = deque()
        self.acquisitions = 0
        self.contentions = 0

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def try_acquire(self, task: Task) -> bool:
        """Take the mutex if free; returns False (and queues nothing) if held."""
        if self.owner is None:
            self.owner = task
            self.acquisitions += 1
            return True
        return False

    def enqueue_waiter(self, task: Task) -> None:
        self.contentions += 1
        self.waiters.append(task)

    def release(self, task: Task) -> Task | None:
        """Release; returns the waiter that now owns the mutex (if any)."""
        if self.owner is not task:
            raise RuntimeError(f"task {task.tid} releasing mutex {self.mid} it does not own")
        if self.waiters:
            next_owner = self.waiters.popleft()
            self.owner = next_owner
            self.acquisitions += 1
            return next_owner
        self.owner = None
        return None
