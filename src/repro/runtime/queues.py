"""Per-worker double-ended task queues.

The owning worker pushes and pops at the *head* (LIFO — depth-first
execution keeps the live-task count small, which is exactly why the HPX
versions of the recursive Inncabs benchmarks survive where thread-per-
task ``std::async`` exhausts memory).  Thieves take from the *tail*
(FIFO end — the oldest, typically largest, piece of work).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.runtime.task import Task


@dataclass(slots=True)
class QueueStats:
    """Counts backing the /threads/count/... queue counters."""

    pushed: int = 0
    popped: int = 0
    stolen_from: int = 0  # tasks other workers stole from this queue


class TaskQueue:
    """Work-stealing deque for one worker."""

    __slots__ = ("owner_worker", "_dq", "stats")

    def __init__(self, owner_worker: int) -> None:
        self.owner_worker = owner_worker
        self._dq: deque[Task] = deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._dq)

    def push_head(self, task: Task) -> None:
        """Stage at the hot end (runs next on the owner)."""
        self._dq.appendleft(task)
        self.stats.pushed += 1

    def push_tail(self, task: Task) -> None:
        """Stage at the cold end (runs last / stolen first)."""
        self._dq.append(task)
        self.stats.pushed += 1

    def pop_head(self) -> Task | None:
        """Owner takes the most recently staged task (depth-first)."""
        if not self._dq:
            return None
        self.stats.popped += 1
        return self._dq.popleft()

    def steal_tail(self) -> Task | None:
        """A thief takes the oldest staged task."""
        if not self._dq:
            return None
        self.stats.stolen_from += 1
        return self._dq.pop()
