"""The HPX-style thread manager: a work-stealing user-level thread
scheduler on top of :class:`repro.simcore.events.Engine`.

One worker per bound core, each with a double-ended queue (owner LIFO /
thief FIFO); idle workers are woken by notifications, never by polling;
victims are scanned same-socket-first — cross-socket steals cost more,
producing the 10-core knee of Figures 11/12.  Every scheduling action
is accounted to either *task execution time* or *task scheduling
overhead*, the two quantities behind the paper's ``/threads/time/*``
counters.  Effect interpretation is shared with the kernel model: this
is a :class:`repro.exec.backend.SchedulerBackend` driven by
:class:`repro.exec.interp.EffectInterpreter`, publishing accounting on
a :class:`repro.exec.probes.ProbeBus`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.exec.errors import DeadlockError, format_stall
from repro.exec.interp import EffectInterpreter
from repro.exec.probes import ProbeBus, SchedulerProbe, WorkerProbe
from repro.model.effects import Await, AwaitAll, Compute, Lock, Spawn, Unlock, YieldNow
from repro.model.future import SimFuture, resume_payload, resume_payload_all
from repro.model.population import TaskCohort
from repro.model.work import Work
from repro.runtime.config import HpxParams
from repro.runtime.policies import LaunchPolicy, _BY_NAME as _POLICY_BY_NAME
from repro.runtime.queues import TaskQueue
from repro.runtime.sync import Mutex
from repro.runtime.task import Task, TaskState
from repro.simcore.events import Engine
from repro.simcore.machine import Machine
from repro.simcore.topology import BindMode, Topology

# Legacy spellings: the accounting structs are the shared probe types
# now (see repro.exec.probes); DeadlockError moved to repro.exec.errors.
WorkerStats = WorkerProbe
ThreadManagerStats = SchedulerProbe

__all__ = ["DeadlockError", "HpxRuntime", "ThreadManagerStats", "WorkerStats"]

# Hot-path aliases: `policy is _ASYNC` instead of enum-member loads.
_ASYNC = LaunchPolicy.ASYNC
_FORK = LaunchPolicy.FORK
_SYNC = LaunchPolicy.SYNC


class _Worker:
    """One scheduler worker bound to one core."""

    __slots__ = (
        "index",
        "core_index",
        "socket",
        "queue",
        "state",
        "current",
        "stats",
        "victims",
        "enabled",
    )

    def __init__(self, index: int, core_index: int, socket: int) -> None:
        self.index = index
        self.core_index = core_index
        self.socket = socket
        self.queue = TaskQueue(index)
        self.state = "idle"  # idle | waking | busy
        self.current: Task | None = None
        self.stats = WorkerStats()
        self.victims: list[int] = []
        # APEX-style throttling: disabled workers stop picking up work
        # (their staged tasks remain stealable).
        self.enabled = True


class HpxRuntime:
    """Facade: spawn tasks, drive the engine, expose counter sources."""

    name = "hpx"
    # User-level tasks never exhaust a kernel resource budget; the
    # attributes exist so both backends share one result-handling path.
    aborted = False
    abort_reason: str | None = None

    def __init__(
        self,
        engine: Engine,
        machine: Machine,
        *,
        num_workers: int,
        params: HpxParams | None = None,
        bind_mode: BindMode = BindMode.COMPACT,
        locality_traffic_factor: float = 1.0,
        smt: int = 1,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.params = params or HpxParams()
        if self.params.local_queue_discipline not in ("lifo", "fifo"):
            raise ValueError(
                f"unknown local_queue_discipline {self.params.local_queue_discipline!r}"
            )
        # Params are frozen; cache the per-event costs as attributes so
        # the hot paths do one attribute load instead of two.
        p = self.params
        self._notify_ns = p.notify_ns
        self._dequeue_ns = p.dequeue_ns
        self._context_switch_ns = p.context_switch_ns
        self._task_create_ns = p.task_create_ns
        self._enqueue_ns = p.enqueue_ns
        self._suspend_ns = p.suspend_ns
        self._future_get_ready_ns = p.future_get_ready_ns
        self._mutex_ns = p.mutex_ns
        self._cleanup_ns = p.cleanup_ns
        self._lifo = p.local_queue_discipline == "lifo"
        self._stack0_ns = p.stack_alloc_ns(0)  # default-stack allocation cost
        # The shared effect interpreter drives every task body; its step
        # function is what we schedule wherever a task resumes.
        self._interp = EffectInterpreter(self)
        self._step = self._interp.step
        self.topology = Topology(machine.platform)
        cores = self.topology.binding_smt(num_workers, smt, bind_mode)
        self.workers = [
            _Worker(i, core, machine.platform.socket_of(core))
            for i, core in enumerate(cores)
        ]
        # Hyper-threading: number of workers currently computing per
        # physical core (two sharing a core each run slower).
        self._core_compute_count: dict[int, int] = {}
        self._build_victim_orders()
        # Publish the accounting probes on the bus; keep direct
        # references for the hot-path increments.
        self.probes = ProbeBus(SchedulerProbe(), [w.stats for w in self.workers])
        self.stats = self.probes.total
        # Coherence-channel state (see HpxParams.qpi_*_hold_ns).
        self._spans_sockets = len({w.socket for w in self.workers}) > 1
        self._qpi_free_at = 0
        # Multiplier on task memory traffic modelling locality loss under
        # depth-first execution (per-benchmark; see HpxParams docstring).
        self.locality_traffic_factor = locality_traffic_factor
        self._next_tid = 0
        self._next_mid = 0
        self._mutexes: list[Mutex] = []
        # Worker currently fulfilling a future; resumed waiters are pushed
        # to its queue (they were made runnable by that worker).
        self._fulfil_worker: _Worker | None = None
        self._live_tasks: dict[int, Task] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def set_active_workers(self, count: int) -> None:
        """Throttle the pool to its first *count* workers (APEX-style
        adaptation).  Remaining workers finish their current task, then
        idle; their queued tasks stay stealable.  Raising the count
        re-enables and wakes workers."""
        count = max(1, min(count, len(self.workers)))
        for w in self.workers:
            enable = w.index < count
            was_enabled = w.enabled
            w.enabled = enable
            if enable and not was_enabled and w.state == "idle":
                w.state = "waking"
                self.engine.call_later(self._notify_ns, self._worker_scan, w)

    @property
    def active_workers(self) -> int:
        return sum(1 for w in self.workers if w.enabled)

    def add_instrumentation(self, delta_ns: int) -> None:
        """Register (positive) or remove (negative) per-activation
        instrumentation cost; called by counter ``start``/``stop``."""
        self.probes.add_instrumentation(delta_ns)

    @property
    def instrument_ns(self) -> int:
        """Per-activation instrumentation charge (lives on the probe bus)."""
        return self.probes.instrument_ns

    @property
    def trace(self) -> Callable[[int, str, Task, int | None], None] | None:
        """The task life-cycle trace hook (lives on the probe bus)."""
        return self.probes.trace

    @trace.setter
    def trace(self, hook: Callable[[int, str, Task, int | None], None] | None) -> None:
        self.probes.trace = hook

    def set_compute_rewriter(self, rewriter: Callable[[Task, Any], Any] | None) -> None:
        """Install (or remove) a what-if work rewriter on the effect loop
        (see :meth:`repro.exec.interp.EffectInterpreter.set_compute_rewriter`)."""
        self._interp.set_compute_rewriter(rewriter)

    def create_mutex(self) -> Mutex:
        mutex = Mutex(self._next_mid)
        self._next_mid += 1
        self._mutexes.append(mutex)
        return mutex

    def submit(self, fn: Callable[..., Any], *args: Any) -> SimFuture:
        """Stage a root task on worker 0; returns its future."""
        task = self._make_task(
            fn, args, LaunchPolicy.ASYNC, parent=None, home_socket=self.workers[0].socket
        )
        task.staged_at = self.engine.now
        self.workers[0].queue.push_head(task)
        self._kick_for_work(self.workers[0])
        return task.future

    def run_to_completion(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Submit *fn*, run the engine until quiescence, return its value."""
        future = self.submit(fn, *args)
        self.engine.run()
        if not future.is_ready:
            raise DeadlockError(self.describe_stall())
        return future.value()

    def describe_stall(self) -> str:
        stuck = [t for t in self._live_tasks.values() if t.state is not TaskState.TERMINATED]
        return format_stall(stuck, now_ns=self.engine.now)

    # -- counter sources --------------------------------------------------

    def queue_length(self) -> int:
        """Instantaneous number of staged (runnable, unpicked) tasks."""
        return sum(len(w.queue) for w in self.workers)

    def worker_queue_length(self, index: int) -> int:
        """Staged tasks in one worker's own queue."""
        return len(self.workers[index].queue)

    def idle_rate(self, worker_index: int | None = None) -> float:
        """Fraction of wall time not spent busy, in [0, 1]."""
        wall = self.engine.now
        if wall <= 0:
            return 0.0
        if worker_index is None:
            busy = sum(w.stats.busy_ns for w in self.workers)
            return max(0.0, 1.0 - busy / (wall * len(self.workers)))
        return max(0.0, 1.0 - self.workers[worker_index].stats.busy_ns / wall)

    def steals_total(self) -> int:
        return sum(w.stats.steals_ok for w in self.workers)

    # ------------------------------------------------------------------
    # SchedulerBackend: population hooks (cohort execution)
    # ------------------------------------------------------------------

    def population_work(self, work: Work) -> Work:
        """Backend-wide work scaling: the depth-first locality factor."""
        if self.locality_traffic_factor != 1.0:
            return work.scaled(self.locality_traffic_factor)
        return work

    def population_task_costs(self, cohort: TaskCohort) -> tuple[float, float]:
        """Mean per-member (exec_ns, overhead_ns) beyond the compute.

        Prices the member's scheduler interactions with the same cost
        constants the effect handlers charge per event: one activation
        per resumption (dequeue + context switch + instrumentation),
        the first-activation stack allocation, creation + enqueue per
        spawn, a ready-future read per non-suspending await, a suspend
        per blocking await, and cleanup at retirement.  Contention
        terms the exact engine serializes per event (steals, the QPI
        channel, cross-socket activation) average out of the mean-value
        model; ``docs/cohort.md`` quantifies the resulting error.
        """
        activations = 1.0 + cohort.blocking_awaits
        overhead = (
            activations * (self._dequeue_ns + self._context_switch_ns + self.instrument_ns)
            + self._stack0_ns
            + cohort.blocking_awaits * self._suspend_ns
            + self._cleanup_ns
        )
        exec_ns = (
            cohort.spawns * (self._task_create_ns + self._enqueue_ns)
            + cohort.ready_awaits * self._future_get_ready_ns
        )
        return exec_ns, overhead

    def _population_live(self, cohort: TaskCohort) -> int:
        """Peak live members while the cohort runs.

        User-level tasks are admitted lazily under depth-first (LIFO)
        execution: each worker keeps roughly one spawned-but-unpicked
        frontier task per tree level it has descended, so the live
        population grows with ``workers x depth``, not with the cohort
        size (calibrated against exact fib runs; see docs/cohort.md).
        """
        if cohort.depth <= 1:
            return min(cohort.tasks, cohort.peak_live)
        modeled = self.num_workers * max(1, cohort.depth - 2)
        return min(cohort.tasks, modeled)

    def population_begin(self, cohort: TaskCohort) -> int:
        live = self._population_live(cohort)
        stats = self.stats
        stats.live_tasks += live
        if stats.live_tasks > stats.peak_live_tasks:
            stats.peak_live_tasks = stats.live_tasks
        return live

    def population_end(self, cohort: TaskCohort) -> None:
        self.stats.live_tasks -= self._population_live(cohort)

    # ------------------------------------------------------------------
    # task creation and placement
    # ------------------------------------------------------------------

    def _make_task(
        self,
        fn: Callable[..., Any],
        args: tuple,
        policy: LaunchPolicy,
        *,
        parent: Task | None,
        home_socket: int,
        stack_bytes: int = 0,
    ) -> Task:
        task = Task(
            self._next_tid,
            fn,
            args,
            policy,
            parent_tid=parent.tid if parent else None,
            home_socket=home_socket,
            stack_bytes=stack_bytes,
            created_at=self.engine.now,
        )
        self._next_tid += 1
        stats = self.stats
        stats.tasks_created += 1
        live = stats.live_tasks + 1
        stats.live_tasks = live
        if live > stats.peak_live_tasks:
            stats.peak_live_tasks = live
        self._live_tasks[task.tid] = task
        if self.trace:
            self.trace(self.engine.now, "create", task, None)
        return task

    def _kick_for_work(self, preferred: _Worker) -> None:
        """Wake an idle worker because runnable work exists."""
        target: _Worker | None = None
        if preferred.state == "idle" and preferred.enabled:
            target = preferred
        else:
            # Nearest enabled idle worker (same socket first) will steal it.
            for vi in preferred.victims:
                candidate = self.workers[vi]
                if candidate.state == "idle" and candidate.enabled:
                    target = candidate
                    break
        if target is None:
            return
        target.state = "waking"
        self.engine.call_later(self._notify_ns, self._worker_scan, target)

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------

    def _suspend(self, task: Task) -> None:
        """Mark *task* suspended (waiting on a future or mutex)."""
        task.state = TaskState.SUSPENDED
        self.stats.suspended_tasks += 1

    # -- accounting: charge *ns* to a task's exec or overhead time ---------

    def _charge_exec(self, w: _Worker, task: Task, ns: int) -> None:
        task.exec_ns += ns
        w.stats.exec_ns += ns
        w.stats.busy_ns += ns

    def _charge_overhead(self, w: _Worker, task: Task, ns: int) -> None:
        task.overhead_ns += ns
        w.stats.overhead_ns += ns
        w.stats.busy_ns += ns

    def _qpi_delay(self, w: _Worker) -> int:
        """Serialize one scheduler op on the cross-socket coherence
        channel; returns the delay to charge.  Free while all workers
        share one socket."""
        if not self._spans_sockets:
            return 0
        hold = (
            self.params.qpi_local_hold_ns
            if w.socket == self.workers[0].socket
            else self.params.qpi_remote_hold_ns
        )
        start = max(self.engine.now, self._qpi_free_at)
        self._qpi_free_at = start + hold
        return self._qpi_free_at - self.engine.now

    def _build_victim_orders(self) -> None:
        order = self.params.steal_order
        if order not in ("near-first", "far-first", "random"):
            raise ValueError(f"unknown steal_order {self.params.steal_order!r}")
        for w in self.workers:
            same = [
                o.index
                for o in sorted(self.workers, key=lambda o: (abs(o.index - w.index), o.index))
                if o.index != w.index and o.socket == w.socket
            ]
            other = [o.index for o in self.workers if o.socket != w.socket]
            if order == "near-first":
                w.victims = same + other
            elif order == "far-first":
                w.victims = other + same
            else:  # random but deterministic per worker
                from repro.simcore.rng import derive_rng

                victims = same + other
                derive_rng(0xABAD1DEA, "steal-order", w.index).shuffle(victims)
                w.victims = victims

    def _worker_scan(self, w: _Worker) -> None:
        """Find work: own queue head, then steal; go idle if none."""
        if w.state == "busy":
            return  # a racing wake-up; the worker is already running
        if not w.enabled:
            w.state = "idle"
            # Throttled away: any work staged here must remain reachable.
            if len(w.queue):
                self._kick_for_work(w)
            return
        task = w.queue.pop_head()
        overhead = self._dequeue_ns
        if task is None:
            for vi in w.victims:
                victim = self.workers[vi]
                w.stats.steals_attempted += 1
                task = victim.queue.steal_tail()
                if task is not None:
                    w.stats.steals_ok += 1
                    if victim.socket != w.socket:
                        w.stats.steals_cross_socket += 1
                        overhead = self.params.steal_cross_socket_ns
                    else:
                        overhead = self.params.steal_same_socket_ns
                    break
        if task is None:
            w.state = "idle"
            return
        w.state = "busy"
        self._activate(w, task, overhead)

    def _activate(self, w: _Worker, task: Task, overhead_ns: int) -> None:
        """Context-switch into *task* and start driving its body."""
        overhead = overhead_ns + self._context_switch_ns + self.instrument_ns
        if task.phases == 0:
            sb = task.stack_bytes
            overhead += self._stack0_ns if sb == 0 else self.params.stack_alloc_ns(sb)
        if task.home_socket != w.socket:
            overhead += self.params.cross_socket_activation_ns
        if self._spans_sockets:
            overhead += self._qpi_delay(w)
        if task.staged_at is not None:
            self.stats.pending_wait_ns += self.engine.now - task.staged_at
            self.stats.pending_waits += 1
            task.staged_at = None
        task.state = TaskState.ACTIVE
        task.phases += 1
        self.stats.phases += 1
        self._charge_overhead(w, task, overhead)
        w.current = task
        if self.trace:
            self.trace(self.engine.now, "activate", task, w.index)
        send = task.pending_send
        task.pending_send = None
        self.engine.call_later(overhead, self._step, w, task, send)

    def _after_task(self, w: _Worker) -> None:
        """The worker just finished/suspended a task; look for the next."""
        w.current = None
        w.state = "waking"
        self._worker_scan(w)

    # ------------------------------------------------------------------
    # SchedulerBackend: effect handlers (the interpreter dispatches here)
    # ------------------------------------------------------------------

    def begin_step(self, w: _Worker, task: Task) -> bool:
        """Interpreter gate: user-level tasks always step."""
        return True

    # -- compute -----------------------------------------------------------

    def do_compute(self, w: _Worker, task: Task, effect: Compute) -> None:
        work = effect.work
        if self.locality_traffic_factor != 1.0:
            work = work.scaled(self.locality_traffic_factor)
        cross = (
            self.params.cross_socket_data_fraction
            if task.home_socket != w.socket and work.membytes > 0
            else 0.0
        )
        sharing = self._core_compute_count.get(w.core_index, 0)
        speed = self.params.smt_slowdown if sharing else 1.0
        self._core_compute_count[w.core_index] = sharing + 1
        ticket = self.machine.segment_begin(
            w.core_index, work, cross_socket_fraction=cross, speed_factor=speed
        )
        duration = ticket.duration_ns
        self._charge_exec(w, task, duration)
        self.engine.call_later(duration, self._finish_compute, w, task, ticket, work)

    def _finish_compute(self, w: _Worker, task: Task, ticket: Any, work: Work) -> None:
        self._core_compute_count[w.core_index] -= 1
        self.machine.segment_end(ticket, work)
        self._step(w, task, None)

    # -- spawn -------------------------------------------------------------

    def do_spawn(self, w: _Worker, task: Task, effect: Spawn) -> None:
        policy = _POLICY_BY_NAME.get(effect.policy)
        if policy is None:
            policy = LaunchPolicy.parse(effect.policy)
        cost = self._task_create_ns
        if self._spans_sockets:
            cost += self._qpi_delay(w)
        child = self._make_task(
            effect.fn,
            effect.args,
            policy,
            parent=task,
            home_socket=w.socket,
            stack_bytes=effect.stack_bytes,
        )
        if policy is _ASYNC or policy is _FORK:
            cost += self._enqueue_ns
            child.staged_at = self.engine.now
            if policy is _FORK or self._lifo:
                # Child at the hot end: the owner executes depth-first
                # (fork additionally implies it runs next on this core).
                w.queue.push_head(child)
            else:
                # FIFO ablation: breadth-first execution order.
                w.queue.push_tail(child)
            self._kick_for_work(w)
        elif policy is _SYNC:
            # Execute inline: chain the child now, resume parent on return.
            self._charge_exec(w, task, cost)
            self._run_inline(w, task, child)
            return
        # DEFERRED: not staged; runs at first wait on its future.
        self._charge_exec(w, task, cost)
        self.engine.call_later(cost, self._step, w, task, child.future)

    def _run_inline(self, w: _Worker, parent: Task, child: Task) -> None:
        """Run *child* immediately on this worker; resume parent on return.

        The parent's ``yield ctx.async_(..., policy="sync")`` resumes with
        the (now ready) future, matching the other launch policies.
        """
        self._suspend(parent)
        child.future.on_ready(lambda fut: self._resume_task(parent, _SendRaw(fut)))
        self._activate(w, child, 0)

    # -- waiting -------------------------------------------------------------

    def do_await(self, w: _Worker, task: Task, effect: Await) -> None:
        future = effect.future
        if future.is_ready:
            cost = self._future_get_ready_ns
            self._charge_exec(w, task, cost)
            self.probes.emit_dependencies(self.engine.now, task, (future,))
            payload = resume_payload(future)
            self.engine.call_later(cost, self._step, w, task, payload)
            return
        producer = future.producer_task
        if (
            producer is not None
            and isinstance(producer, Task)
            and producer.state is TaskState.DEFERRED
        ):
            producer.state = TaskState.PENDING
            self._suspend(task)
            future.on_ready(lambda fut: self._resume_task(task, fut))
            self._activate(w, producer, 0)
            return
        cost = self._suspend_ns
        self._charge_overhead(w, task, cost)
        self._suspend(task)
        if self.trace:
            self.trace(self.engine.now, "suspend", task, w.index)
        future.on_ready(lambda fut: self._resume_task(task, fut))
        self.engine.call_later(cost, self._after_task, w)

    def do_await_all(self, w: _Worker, task: Task, effect: AwaitAll) -> None:
        futures = effect.futures
        pending = [f for f in futures if not f.is_ready]
        # Run deferred producers inline, one by one, by rewriting the wait
        # as a chain: wait on the first deferred child, then re-wait.
        for fut in pending:
            producer = fut.producer_task
            if isinstance(producer, Task) and producer.state is TaskState.DEFERRED:
                producer.state = TaskState.PENDING
                self._suspend(task)
                fut.on_ready(lambda _f, t=task, fs=futures: self._reawait_all(t, fs))
                self._activate(w, producer, 0)
                return
        if not pending:
            cost = self._future_get_ready_ns
            self._charge_exec(w, task, cost)
            self.probes.emit_dependencies(self.engine.now, task, futures)
            payload = resume_payload_all(futures)
            self.engine.call_later(cost, self._step, w, task, payload)
            return
        cost = self._suspend_ns
        self._charge_overhead(w, task, cost)
        self._suspend(task)
        remaining = {"count": len(pending)}

        def one_ready(_fut: SimFuture) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self._resume_task(task, _AwaitAllDone(futures))

        for fut in pending:
            fut.on_ready(one_ready)
        self.engine.call_later(cost, self._after_task, w)

    def _reawait_all(self, task: Task, futures: tuple) -> None:
        """Re-issue an AwaitAll after an inline deferred child completed."""
        task.pending_send = None
        worker = self._fulfil_worker or self.workers[0]
        if task.state is TaskState.SUSPENDED:
            self.stats.suspended_tasks -= 1
        task.state = TaskState.ACTIVE
        # Dispatch directly: the task is still positioned at its AwaitAll.
        self.do_await_all(worker, task, AwaitAll(futures=futures))

    # -- mutexes ---------------------------------------------------------------

    def do_lock(self, w: _Worker, task: Task, effect: Lock) -> None:
        mutex = effect.mutex
        if mutex.try_acquire(task):
            cost = self._mutex_ns
            self._charge_exec(w, task, cost)
            self.engine.call_later(cost, self._step, w, task, None)
            return
        cost = self._suspend_ns
        self._charge_overhead(w, task, cost)
        self._suspend(task)
        mutex.enqueue_waiter(task)
        self.engine.call_later(cost, self._after_task, w)

    def do_unlock(self, w: _Worker, task: Task, effect: Unlock) -> None:
        next_owner = effect.mutex.release(task)
        cost = self._mutex_ns
        self._charge_exec(w, task, cost)
        if next_owner is not None:
            # The waiter now owns the mutex; make it runnable here.
            self._push_resumed(w, next_owner, None)
        self.engine.call_later(cost, self._step, w, task, None)

    def do_yield(self, w: _Worker, task: Task, effect: YieldNow) -> None:
        cost = self._context_switch_ns
        self._charge_overhead(w, task, cost)
        task.state = TaskState.PENDING
        task.pending_send = None
        task.staged_at = self.engine.now
        w.queue.push_tail(task)
        self.engine.call_later(cost, self._after_task, w)

    # -- completion and resumption ------------------------------------------------

    def complete(self, w: _Worker, task: Task, value: Any) -> None:
        cost = self._cleanup_ns
        self._charge_overhead(w, task, cost)
        task.state = TaskState.TERMINATED
        w.stats.tasks_executed += 1
        self.stats.tasks_executed += 1
        self.stats.exec_ns += task.exec_ns
        self.stats.overhead_ns += task.overhead_ns
        self.stats.live_tasks -= 1
        del self._live_tasks[task.tid]
        if self.trace:
            self.trace(self.engine.now, "terminate", task, w.index)
        prev = self._fulfil_worker
        self._fulfil_worker = w
        try:
            task.future.set_value(value)
        finally:
            self._fulfil_worker = prev
        self.engine.call_later(cost, self._after_task, w)

    def fail(self, w: _Worker, task: Task, exc: BaseException) -> None:
        task.state = TaskState.TERMINATED
        w.stats.tasks_executed += 1
        self.stats.tasks_executed += 1
        self.stats.exec_ns += task.exec_ns
        self.stats.overhead_ns += task.overhead_ns
        self.stats.live_tasks -= 1
        del self._live_tasks[task.tid]
        prev = self._fulfil_worker
        self._fulfil_worker = w
        try:
            task.future.set_exception(exc)
        finally:
            self._fulfil_worker = prev
        self.engine.call_later(self._cleanup_ns, self._after_task, w)

    def _resume_task(self, task: Task, send_value: Any) -> None:
        """A suspended task became runnable (future set / mutex granted)."""
        cls = send_value.__class__
        if cls is _SendRaw:
            send_value = send_value.value
        elif cls is SimFuture or isinstance(send_value, SimFuture):
            self.probes.emit_dependencies(self.engine.now, task, (send_value,))
            send_value = resume_payload(send_value)
        elif cls is _AwaitAllDone:
            self.probes.emit_dependencies(self.engine.now, task, send_value.futures)
            send_value = resume_payload_all(send_value.futures)
        task.pending_send = send_value
        worker = self._fulfil_worker or self.workers[0]
        self._push_resumed(worker, task, None)

    def _push_resumed(self, worker: _Worker, task: Task, _unused: Any) -> None:
        if task.state is TaskState.SUSPENDED:
            self.stats.suspended_tasks -= 1
        task.state = TaskState.PENDING
        task.staged_at = self.engine.now
        worker.queue.push_head(task)
        if self.trace:
            self.trace(self.engine.now, "resume", task, worker.index)
        self._kick_for_work(worker)


class _AwaitAllDone:
    """Marker carrying the futures of a completed AwaitAll."""

    __slots__ = ("futures",)

    def __init__(self, futures: tuple) -> None:
        self.futures = futures


class _SendRaw:
    """Marker: send the wrapped value into the generator as-is."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value
