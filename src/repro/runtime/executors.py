"""Executors and parallel algorithms (Section III).

"Within HPX, a comprehensive set of parallel algorithms, executors, and
distributed data structures have been developed — all of which are
fully conforming to current C++ standardization documents."  This
module provides the single-node slice of that layer on top of the task
API: chunking executors and ``for_each`` / ``transform_reduce``
algorithm skeletons usable inside any task body via ``yield from``.

Example::

    def body(ctx):
        total = yield from transform_reduce(
            ctx, range(10_000),
            transform=lambda i: i * i,
            reduce_fn=operator.add, initial=0,
            work_per_item=Work(cpu_ns=200),
        )
        return total
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.model.work import Work

DEFAULT_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class StaticChunkSize:
    """Fixed chunk size (``hpx::execution::experimental::static_chunk_size``)."""

    size: int

    def chunk(self, n_items: int, n_workers: int) -> int:
        if self.size < 1:
            raise ValueError("chunk size must be >= 1")
        return self.size


@dataclass(frozen=True)
class AutoChunkSize:
    """Chunks sized for ~4 chunks per worker (load-balance headroom)."""

    chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER

    def chunk(self, n_items: int, n_workers: int) -> int:
        target = n_workers * self.chunks_per_worker
        return max(1, math.ceil(n_items / target))


def _item_work(work_per_item: Work | int | None, count: int) -> Work | None:
    if work_per_item is None:
        return None
    if isinstance(work_per_item, int):
        return Work(cpu_ns=work_per_item * count)
    return Work(
        cpu_ns=work_per_item.cpu_ns * count,
        membytes=work_per_item.membytes * count,
        working_set=work_per_item.working_set,
        data_rd_fraction=work_per_item.data_rd_fraction,
        code_rd_fraction=work_per_item.code_rd_fraction,
        rfo_fraction=work_per_item.rfo_fraction,
    )


def _foreach_chunk(ctx: Any, fn: Callable[[Any], None], items: Sequence[Any], work: Work | None):
    if work is not None:
        yield ctx.compute(work)
    for item in items:
        fn(item)
    return None


def for_each(
    ctx: Any,
    items: Iterable[Any],
    fn: Callable[[Any], None],
    *,
    work_per_item: Work | int | None = None,
    chunking: StaticChunkSize | AutoChunkSize | None = None,
    policy: str = "async",
):
    """Parallel ``for_each``: apply *fn* to every item in chunked tasks.

    A generator — call as ``yield from for_each(ctx, ...)`` inside a
    task body.  *work_per_item* declares the simulated cost of one item
    (ns or a :class:`Work`); *fn* runs for real.
    """
    items = list(items)
    if not items:
        return None
    chunking = chunking or AutoChunkSize()
    chunk = chunking.chunk(len(items), ctx.num_workers)
    futures = []
    for lo in range(0, len(items), chunk):
        part = items[lo : lo + chunk]
        fut = yield ctx.async_(
            _foreach_chunk, fn, part, _item_work(work_per_item, len(part)), policy=policy
        )
        futures.append(fut)
    yield ctx.wait_all(futures)
    return None


def _transform_chunk(
    ctx: Any,
    transform: Callable[[Any], Any],
    reduce_fn: Callable[[Any, Any], Any],
    items: Sequence[Any],
    work: Work | None,
):
    if work is not None:
        yield ctx.compute(work)
    iterator = iter(items)
    acc = transform(next(iterator))
    for item in iterator:
        acc = reduce_fn(acc, transform(item))
    return acc


def transform_reduce(
    ctx: Any,
    items: Iterable[Any],
    *,
    transform: Callable[[Any], Any],
    reduce_fn: Callable[[Any, Any], Any],
    initial: Any,
    work_per_item: Work | int | None = None,
    chunking: StaticChunkSize | AutoChunkSize | None = None,
):
    """Parallel ``transform_reduce``; resumes with the reduced value.

    ``reduce_fn`` must be associative (chunks reduce independently and
    combine in chunk order).
    """
    items = list(items)
    if not items:
        return initial
    chunking = chunking or AutoChunkSize()
    chunk = chunking.chunk(len(items), ctx.num_workers)
    futures = []
    for lo in range(0, len(items), chunk):
        part = items[lo : lo + chunk]
        fut = yield ctx.async_(
            _transform_chunk, transform, reduce_fn, part, _item_work(work_per_item, len(part))
        )
        futures.append(fut)
    partials = yield ctx.wait_all(futures)
    acc = initial
    for value in partials:
        acc = reduce_fn(acc, value)
    return acc
