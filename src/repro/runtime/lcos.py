"""LCOs — Local Control Objects (HPX's synchronization vocabulary).

Library-level primitives built from futures and the effect protocol,
usable on either runtime (they contain no scheduler hooks).  Bodies run
atomically between ``yield`` points in the simulation, which is what
makes the unlocked counter updates here race-free — the same guarantee
HPX gets from its atomics.

- :class:`Barrier` — N parties arrive-and-wait, reusable generations;
- :class:`Latch` — count-down once, wait many;
- :class:`Event` — manual-reset signal;
- :func:`dataflow` — run a task when its inputs are ready, without
  blocking the caller (``hpx::dataflow``);
- :func:`then` — attach a continuation to one future
  (``future::then``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.model.future import SimFuture


class Barrier:
    """Cyclic barrier for a fixed number of parties."""

    def __init__(self, parties: int) -> None:
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.parties = parties
        self._arrived = 0
        self._generation = SimFuture()
        self.generations_completed = 0

    def wait(self, ctx: Any):
        """``yield from barrier.wait(ctx)`` — blocks until all arrive."""
        self._arrived += 1
        if self._arrived == self.parties:
            released, self._generation = self._generation, SimFuture()
            self._arrived = 0
            self.generations_completed += 1
            released.set_value(self.generations_completed)
            return self.generations_completed
        generation = self._generation
        result = yield ctx.wait(generation)
        return result


class Latch:
    """Single-use count-down latch (``hpx::latch``)."""

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self._count = count
        self._done = SimFuture()

    @property
    def remaining(self) -> int:
        return self._count

    def count_down(self, n: int = 1) -> None:
        """Non-blocking; callable from plain code inside a body."""
        if n < 1:
            raise ValueError("n must be >= 1")
        if self._count == 0:
            raise RuntimeError("latch already released")
        self._count = max(0, self._count - n)
        if self._count == 0:
            self._done.set_value(None)

    def wait(self, ctx: Any):
        """``yield from latch.wait(ctx)``."""
        if self._count == 0:
            return None
        yield ctx.wait(self._done)
        return None


class Event:
    """Manual-reset event (``hpx::lcos::local::event``)."""

    def __init__(self) -> None:
        self._signal = SimFuture()

    @property
    def is_set(self) -> bool:
        return self._signal.is_ready

    def set(self) -> None:
        if not self._signal.is_ready:
            self._signal.set_value(None)

    def reset(self) -> None:
        if self._signal.is_ready:
            self._signal = SimFuture()

    def wait(self, ctx: Any):
        """``yield from event.wait(ctx)``."""
        if not self._signal.is_ready:
            yield ctx.wait(self._signal)
        return None


def _dataflow_task(ctx: Any, fn: Callable[..., Any], futures: tuple):
    values = yield ctx.wait_all(futures)
    inner = yield ctx.async_(fn, *values)
    result = yield ctx.wait(inner)
    return result


def dataflow(ctx: Any, fn: Callable[..., Any], *futures: Any):
    """``hpx::dataflow``: returns (via ``yield``) a future of
    ``fn(ctx, *values)`` that runs once every input future is ready —
    the caller is never blocked.

    Usage::

        combined = yield dataflow(ctx, combine_fn, fut_a, fut_b)
        ...
        result = yield ctx.wait(combined)
    """
    return ctx.async_(_dataflow_task, fn, tuple(futures))


def _then_task(ctx: Any, fn: Callable[..., Any], future: Any):
    value = yield ctx.wait(future)
    inner = yield ctx.async_(fn, value)
    result = yield ctx.wait(inner)
    return result


def then(ctx: Any, future: Any, fn: Callable[..., Any]):
    """``future.then(fn)``: continuation attached without blocking.

    Usage:  ``chained = yield then(ctx, fut, continuation_fn)``
    """
    return ctx.async_(_then_task, fn, future)
