"""One-call session facade — the front door of the reproduction.

Wires an engine, a simulated machine, a runtime, and the counter stack
together behind two calls::

    from repro.api import Session, WorkloadSpec

    session = Session(runtime="hpx", cores=8)
    result = session.run(
        WorkloadSpec.parse("fib"), counters=["/threads{locality#0/total}/idle-rate"]
    )
    print(result.exec_time_ms, result.counters)

A :class:`Session` fixes the *environment* (machine spec, runtime kind,
default core count, runtime parameters, event-engine factory); each
:meth:`Session.run` executes one benchmark on a fresh engine and
machine, so runs never share simulated state and remain bit-for-bit
deterministic.

Both runtimes implement :class:`repro.exec.backend.SchedulerBackend`,
so the run path is the same for either: build the backend, attach the
counter stack to its probe bus, run the engine, read the results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Mapping, Sequence

from repro.counters.base import CounterEnvironment
from repro.counters.providers import build_registry
from repro.exec.cohort import CohortEngine
from repro.exec.errors import DeadlockError
from repro.exec.modes import CohortIneligibleError, ExecutionMode, resolve_mode
from repro.experiments.config import DEFAULT_COUNTERS, ExperimentConfig
from repro.experiments.runner import RunResult
from repro.inncabs.base import effective_locality_factor
from repro.kernel.config import StdParams
from repro.kernel.scheduler import StdRuntime
from repro.papi.hw import PapiSubstrate
from repro.platform.presets import resolve_platform
from repro.platform.spec import PlatformSpec
from repro.profiler.builder import ProfileBuilder, ProfileConfig
from repro.profiler.whatif import (
    BodyRewriter,
    WhatIfResult,
    predict_makespan_ns,
    resolve_body,
)
from repro.runtime.config import HpxParams
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine, MachineSpec
from repro.telemetry.pipeline import DEFAULT_BUFFER_LIMIT, TelemetryConfig, TelemetryPipeline
from repro.workloads import WorkloadSpec, as_workload_spec, get_workload

__all__ = ["ProfileConfig", "Session", "RunResult", "TelemetryConfig", "WorkloadSpec"]

#: Accepted runtime names.  ``"kernel"`` is an alias for the
#: ``std::async`` thread-per-task model (it runs on kernel threads).
_RUNTIME_ALIASES = {"hpx": "hpx", "std": "std", "kernel": "std"}


class Session:
    """A configured simulation environment; ``run()`` executes benchmarks.

    Parameters
    ----------
    runtime:
        ``"hpx"`` for the HPX-style user-level task runtime, ``"std"``
        (alias ``"kernel"``) for the ``std::async`` kernel-thread model.
    cores:
        Default worker/core count for :meth:`run` (overridable per run).
    platform:
        The simulated node: a preset name (``"epyc-2x64"``), a path to
        a platform file (``.toml``/``.json``), a
        :class:`~repro.platform.spec.PlatformSpec`, or a legacy
        :class:`MachineSpec`.  Defaults to the paper's Table III node
        (``"ivybridge-2x10"``).
    machine:
        Legacy alias for ``platform`` (a :class:`MachineSpec`); they
        are mutually exclusive.
    hpx_params / std_params:
        Runtime cost models; default to the calibrated paper values.
    config:
        A full :class:`ExperimentConfig` to start from instead of the
        defaults; ``platform``/``hpx_params``/``std_params`` still
        override its fields when given.
    engine_factory:
        Zero-argument callable building the discrete-event engine for
        each run.  Defaults to :class:`repro.simcore.events.Engine`;
        ``repro bench-core`` passes the legacy-heap engine here to run
        both cores side by side.
    telemetry:
        Default :class:`~repro.telemetry.pipeline.TelemetryConfig` for
        every :meth:`run`: counter set, periodic sampling interval,
        sinks and buffering.  Overridable per run.
    """

    def __init__(
        self,
        *,
        runtime: str = "hpx",
        cores: int = 1,
        platform: PlatformSpec | MachineSpec | str | None = None,
        machine: MachineSpec | None = None,
        hpx_params: HpxParams | None = None,
        std_params: StdParams | None = None,
        config: ExperimentConfig | None = None,
        engine_factory: Callable[[], Any] | None = None,
        telemetry: TelemetryConfig | None = None,
    ) -> None:
        canonical = _RUNTIME_ALIASES.get(runtime)
        if canonical is None:
            expected = ", ".join(sorted(_RUNTIME_ALIASES))
            raise ValueError(f"unknown runtime {runtime!r}; expected one of {expected}")
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if platform is not None and machine is not None:
            raise ValueError("pass either platform= or machine=, not both")
        self.runtime = canonical
        self.cores = cores
        base = config or ExperimentConfig()
        overrides: dict[str, Any] = {}
        if platform is not None:
            overrides["platform"] = resolve_platform(platform)
        elif machine is not None:
            overrides["platform"] = machine.to_platform()
        if hpx_params is not None:
            overrides["hpx"] = hpx_params
        if std_params is not None:
            overrides["std"] = std_params
        self.config = replace(base, **overrides) if overrides else base
        self.engine_factory: Callable[[], Any] = engine_factory or Engine
        self.telemetry = telemetry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session(runtime={self.runtime!r}, cores={self.cores})"

    # ------------------------------------------------------------------

    def run(
        self,
        benchmark: WorkloadSpec,
        *,
        params: Mapping[str, Any] | None = None,
        cores: int | None = None,
        mode: str | ExecutionMode | None = None,
        counters: Sequence[str] | None = None,
        collect_counters: bool = True,
        keep_result: bool = False,
        query_interval_ns: int | None = None,
        query_sink: Any = None,
        telemetry: TelemetryConfig | None = None,
        profile: ProfileConfig | bool | None = None,
        work_rewriter: Callable[[Any, Any], Any] | None = None,
    ) -> RunResult:
        """Run one workload to completion; returns a :class:`RunResult`.

        ``benchmark`` is a :class:`~repro.workloads.WorkloadSpec` (its
        canonical string spelling — ``"taskbench:shape=fft,width=8"``
        — parses to one via ``WorkloadSpec.parse``).  The workload is
        resolved through the :mod:`repro.workloads` registry;
        ``params=`` overlays the spec's own parameters.

        ``mode`` selects the execution mode (``"exact"`` — the default
        discrete-event path — or ``"cohort"`` — the mesoscale engine;
        see :mod:`repro.exec.modes`).  It can equally travel as a
        ``mode`` workload parameter; the keyword wins when both are
        given.  Cohort mode requires the workload to declare a cohort
        plan, else :class:`~repro.exec.modes.CohortIneligibleError` is
        raised before any simulation state is built.

        ``counters`` is a sequence of counter-name specs to collect
        (defaults to the paper's software + PAPI set).  Counters read
        the backend's probe bus, so they work on both runtimes.
        ``collect_counters=False`` disables instrumentation entirely
        (the Section V-C overhead experiment measures exactly this
        difference); ``query_interval_ns`` additionally samples the
        active counters on a fixed in-band interval during the run.

        Every counter reading flows through one
        :class:`~repro.telemetry.pipeline.TelemetryPipeline`
        (``telemetry=`` overrides the session's default config): the
        result carries the full sample frame as ``result.telemetry``
        and its final totals as the legacy ``result.counters`` dict,
        and configured sinks (CSV, JSONL, Chrome-trace, ...) stream
        every sample as it is recorded.

        ``profile`` attaches the causal profiler
        (:class:`~repro.profiler.builder.ProfileConfig`, or ``True``
        for its defaults): the result carries a
        :class:`~repro.profiler.report.RunProfile` as
        ``result.profile`` (critical path, per-body flat profile,
        logical parallelism), the ``/profiler{...}`` counters become
        available, and any ``what_if`` experiments are validated by
        replaying the run with rewritten work costs.  Requesting a
        ``/profiler`` counter implies ``profile=True``.  Profiling and
        ``work_rewriter`` are exact-mode only — cohort runs collapse
        task populations and have no per-task DAG — and raise
        :class:`~repro.exec.modes.CohortIneligibleError` under
        ``mode="cohort"``.  Note a profiled run is *not* bit-identical
        to an unprofiled one (each trace event charges instrumentation,
        like the recorder), which is why what-if replays profile too.
        """
        config = self.config
        tele = telemetry if telemetry is not None else self.telemetry
        ncores = self.cores if cores is None else cores
        workload = as_workload_spec(benchmark)
        bench = get_workload(workload.name).benchmark
        root_fn, root_args, merged = workload.build(params)
        exec_mode = resolve_mode(mode if mode is not None else merged.get("mode"))

        profile_cfg = ProfileConfig.coerce(profile)
        if profile_cfg is None and collect_counters:
            # Asking for a /profiler counter implies profiling.
            specs_requested = counters
            if specs_requested is None and tele is not None:
                specs_requested = tele.counters
            if specs_requested and any(s.startswith("/profiler") for s in specs_requested):
                profile_cfg = ProfileConfig()
        if exec_mode is ExecutionMode.COHORT and (
            profile_cfg is not None or work_rewriter is not None
        ):
            raise CohortIneligibleError(
                "causal profiling and what-if replays are exact-mode only: cohort "
                "runs collapse task populations and have no per-task DAG to "
                "profile or rewrite; run with mode='exact'"
            )

        plan = None
        if exec_mode is ExecutionMode.COHORT:
            plan = bench.cohort_plan(merged)
            if plan is None:
                raise CohortIneligibleError(
                    f"workload {workload.name!r} declares no cohort plan for these "
                    "parameters; run it in exact mode"
                )

        engine = self.engine_factory()
        machine = Machine(config.platform)
        out = RunResult(
            benchmark=workload.name,
            runtime=self.runtime,
            cores=ncores,
            mode=exec_mode.value,
        )

        rt: Any
        if self.runtime == "hpx":
            rt = HpxRuntime(
                engine,
                machine,
                num_workers=ncores,
                params=config.hpx,
                locality_traffic_factor=effective_locality_factor(
                    bench.info.hpx_locality_factor, ncores
                ),
            )
        else:
            rt = StdRuntime(engine, machine, num_workers=ncores, params=config.std)

        builder: ProfileBuilder | None = None
        if profile_cfg is not None:
            builder = ProfileBuilder(rt, keep_events=profile_cfg.keep_events)
            builder.attach()
        if work_rewriter is not None:
            rt.set_compute_rewriter(work_rewriter)

        pipeline: TelemetryPipeline | None = None
        query = None
        interval_ns = query_interval_ns
        if interval_ns is None and tele is not None:
            interval_ns = tele.interval_ns
        if collect_counters:
            env = CounterEnvironment(
                engine=engine,
                runtime=rt,
                machine=machine,
                papi=PapiSubstrate(machine),
                profiler=builder,
            )
            registry = build_registry(env, workload=workload.name)
            specs = counters
            if specs is None and tele is not None:
                specs = tele.counters
            pipeline = TelemetryPipeline(
                registry,
                specs or DEFAULT_COUNTERS,
                run_id=(
                    tele.run_id
                    if tele is not None and tele.run_id
                    else f"{workload.name}/{self.runtime}/c{ncores}"
                ),
                sinks=tele.sinks if tele is not None else (),
                buffer_limit=tele.buffer_limit if tele is not None else DEFAULT_BUFFER_LIMIT,
            )
            pipeline.start()
            pipeline.reset()
            if interval_ns is not None:
                from repro.counters.query import PeriodicQuery

                query = PeriodicQuery(
                    pipeline,
                    engine=engine,
                    runtime=rt,
                    interval_ns=interval_ns,
                    sink=query_sink,
                    in_band=tele.in_band if tele is not None else True,
                )
                query.start()
        elif interval_ns is not None:
            raise ValueError("periodic queries need collect_counters=True")

        if plan is not None:
            future = CohortEngine(rt, machine).submit(plan)
        else:
            future = rt.submit(root_fn, *root_args)
        engine.run()
        out.tasks_executed = rt.stats.tasks_executed
        out.tasks_created = rt.stats.tasks_created
        out.peak_live_tasks = rt.stats.peak_live_tasks
        if rt.aborted:
            out.aborted = True
            out.abort_reason = rt.abort_reason
            out.exec_time_ns = engine.now
            out.engine_events = engine.events_processed
            if pipeline is not None:
                out.telemetry = pipeline.frame  # periodic samples up to the abort
                pipeline.stop()
                pipeline.close()
            if builder is not None:
                builder.detach()
                # Partial profile up to the abort; no what-if replays.
                out.profile = builder.finalize(
                    workload=workload.canonical(),
                    runtime=self.runtime,
                    cores=ncores,
                    makespan_ns=engine.now,
                )
            return out
        if not future.is_ready:
            raise DeadlockError(rt.describe_stall())
        result = future.value()
        out.exec_time_ns = engine.now
        if pipeline is not None:
            values = pipeline.sample(reset=True)
            out.counters = {v.name: v.value for v in values}
            out.telemetry = pipeline.frame
            pipeline.stop()
            pipeline.close()
        if query is not None:
            out.query_samples = query.samples

        # Mean-value plans resolve to expectations, not the exact
        # benchmark output; verification only applies to exact results.
        if plan is not None and not plan.exact:
            out.verified = True
        else:
            out.verified = bench.verify(result, merged)
        if keep_result:
            out.result = result
        out.offcore_bytes = machine.total_offcore_bytes()
        out.engine_events = engine.events_processed

        if builder is not None:
            builder.detach()
            experiments: list[WhatIfResult] = []
            if profile_cfg is not None and profile_cfg.what_if:
                experiments = self._run_what_ifs(
                    profile_cfg,
                    builder,
                    baseline=out,
                    benchmark=workload,
                    params=params,
                    cores=ncores,
                    counters=counters,
                    collect_counters=collect_counters,
                    query_interval_ns=query_interval_ns,
                    telemetry=tele,
                )
            out.profile = builder.finalize(
                workload=workload.canonical(),
                runtime=self.runtime,
                cores=ncores,
                makespan_ns=out.exec_time_ns,
                what_if=tuple(experiments),
            )
        return out

    def _run_what_ifs(
        self,
        profile_cfg: ProfileConfig,
        builder: ProfileBuilder,
        *,
        baseline: RunResult,
        benchmark: WorkloadSpec,
        params: Mapping[str, Any] | None,
        cores: int,
        counters: Sequence[str] | None,
        collect_counters: bool,
        query_interval_ns: int | None,
        telemetry: TelemetryConfig | None,
    ) -> list[WhatIfResult]:
        """Validate each what-if experiment with a cost-rewritten replay.

        The replay runs under *identical* instrumentation (profiler
        attached, same counters, same query interval) so the 0 %
        experiment is bit-identical to the baseline; only external
        telemetry sinks are stripped, to avoid emitting the replay's
        samples into the baseline's outputs.
        """
        replay_tele = replace(telemetry, sinks=()) if telemetry is not None else None
        base = builder.analysis()
        bodies = set(builder.body_names())
        results: list[WhatIfResult] = []
        for spec in profile_cfg.what_if:
            body = resolve_body(spec.body, bodies)
            scaled = builder.scaled_analysis(body, spec.factor)
            rewriter = BodyRewriter(body, spec.factor)
            replay = self.run(
                benchmark,
                params=params,
                cores=cores,
                mode=ExecutionMode.EXACT,
                counters=counters,
                collect_counters=collect_counters,
                query_interval_ns=query_interval_ns,
                telemetry=replay_tele,
                profile=ProfileConfig(),  # same perturbation, no nested what-ifs
                work_rewriter=rewriter,
            )
            results.append(
                WhatIfResult(
                    body=body,
                    speedup_pct=spec.speedup_pct,
                    baseline_makespan_ns=baseline.exec_time_ns,
                    predicted_makespan_ns=predict_makespan_ns(
                        baseline_makespan_ns=baseline.exec_time_ns,
                        cores=cores,
                        base_work_ns=base.work_ns,
                        base_span_ns=base.span_ns,
                        scaled_work_ns=scaled.work_ns,
                        scaled_span_ns=scaled.span_ns,
                    ),
                    replayed_makespan_ns=replay.exec_time_ns,
                    rewritten_computes=rewriter.rewritten,
                    scaled_work_ns=scaled.work_ns,
                    scaled_span_ns=scaled.span_ns,
                )
            )
        return results
