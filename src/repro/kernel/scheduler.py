"""Kernel scheduler for the thread-per-task (``std::async``) model.

A single global FIFO run queue feeds the bound cores.  Every dispatch
pays a context switch plus run-queue lock contention that grows with
the number of cores hammering the queue; every ``std::async`` pays a
thread creation inside the parent; every not-ready ``get()`` pays a
futex block/wake pair.  Committed memory is tracked per live thread and
the process aborts when the budget is exhausted — the paper's observed
failure mode for Fib, Health, NQueens and UTS.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.model.context import TaskContext
from repro.model.effects import Await, AwaitAll, Compute, Lock, Spawn, Unlock, YieldNow
from repro.model.future import SimFuture, ThrowValue, resume_payload, resume_payload_all
from repro.model.work import Work
from repro.kernel.config import StdParams
from repro.kernel.thread import OSThread, ThreadState
from repro.runtime.policies import LaunchPolicy, _BY_NAME as _POLICY_BY_NAME
from repro.simcore.events import Engine
from repro.simcore.machine import Machine
from repro.simcore.topology import BindMode, Topology


class ResourceExhausted(RuntimeError):
    """The process ran out of memory for thread stacks (paper: 'Abort')."""


@dataclass(slots=True)
class StdStats:
    """Process-wide accounting for the kernel model."""

    threads_created: int = 0
    threads_completed: int = 0
    live_threads: int = 0
    peak_live_threads: int = 0
    committed_bytes: int = 0
    exec_ns: int = 0
    overhead_ns: int = 0
    dispatches: int = 0
    preemptions: int = 0
    blocks: int = 0
    wakes: int = 0


class KMutex:
    """``std::mutex``: futex-based, FIFO hand-off under contention."""

    __slots__ = ("mid", "owner", "waiters", "acquisitions", "contentions")

    def __init__(self, mid: int) -> None:
        self.mid = mid
        self.owner: OSThread | None = None
        self.waiters: deque[OSThread] = deque()
        self.acquisitions = 0
        self.contentions = 0

    def try_acquire(self, thread: OSThread) -> bool:
        if self.owner is None:
            self.owner = thread
            self.acquisitions += 1
            return True
        return False

    def enqueue_waiter(self, thread: OSThread) -> None:
        self.contentions += 1
        self.waiters.append(thread)

    def release(self, thread: OSThread) -> OSThread | None:
        if self.owner is not thread:
            raise RuntimeError(f"thread {thread.tid} releasing mutex {self.mid} it does not own")
        if self.waiters:
            nxt = self.waiters.popleft()
            self.owner = nxt
            self.acquisitions += 1
            return nxt
        self.owner = None
        return None


class _KCore:
    __slots__ = ("index", "core_index", "socket", "current")

    def __init__(self, index: int, core_index: int, socket: int) -> None:
        self.index = index
        self.core_index = core_index
        self.socket = socket
        self.current: OSThread | None = None


class StdRuntime:
    """Facade mirroring :class:`repro.runtime.scheduler.HpxRuntime`."""

    name = "std"

    def __init__(
        self,
        engine: Engine,
        machine: Machine,
        *,
        num_workers: int,
        params: StdParams | None = None,
        bind_mode: BindMode = BindMode.COMPACT,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.params = params or StdParams()
        self.topology = Topology(machine.spec)
        cores = self.topology.binding(num_workers, bind_mode)
        self.cores = [_KCore(i, core, machine.spec.socket_of(core)) for i, core in enumerate(cores)]
        self.run_queue: deque[OSThread] = deque()
        self.stats = StdStats()
        self._next_tid = 0
        self._next_mid = 0
        self.aborted = False
        self.abort_reason: str | None = None
        self._fulfil_core: _KCore | None = None
        self._root_future: SimFuture | None = None
        # Simulated global scheduler lock: the time until which it is held.
        self._lock_free_at = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self.cores)

    def create_mutex(self) -> KMutex:
        m = KMutex(self._next_mid)
        self._next_mid += 1
        return m

    def submit(self, fn: Callable[..., Any], *args: Any) -> SimFuture:
        """Start the main thread running *fn*."""
        main = self._make_thread(fn, args, home_socket=self.cores[0].socket, is_main=True)
        self._root_future = main.future
        self.run_queue.append(main)
        self._dispatch()
        return main.future

    def run_to_completion(self, fn: Callable[..., Any], *args: Any) -> Any:
        future = self.submit(fn, *args)
        self.engine.run()
        if self.aborted:
            raise ResourceExhausted(self.abort_reason or "out of memory")
        if not future.is_ready:
            raise RuntimeError("kernel model deadlocked: main thread never finished")
        return future.value()

    # ------------------------------------------------------------------
    # thread management
    # ------------------------------------------------------------------

    def _make_thread(
        self,
        fn: Callable[..., Any],
        args: tuple,
        *,
        home_socket: int,
        deferred: bool = False,
        is_main: bool = False,
    ) -> OSThread:
        thread = OSThread(
            self._next_tid,
            fn,
            args,
            home_socket=home_socket,
            created_at=self.engine.now,
            deferred=deferred,
            is_main=is_main,
        )
        self._next_tid += 1
        self.stats.threads_created += 1
        if not deferred:
            self._commit_memory(thread)
        return thread

    def _commit_memory(self, thread: OSThread) -> None:
        thread.committed = True
        stats = self.stats
        stats.live_threads += 1
        if stats.live_threads > stats.peak_live_threads:
            stats.peak_live_threads = stats.live_threads
        stats.committed_bytes += self.params.thread_commit_bytes
        if self.stats.committed_bytes > self.params.ram_budget_bytes:
            self._abort(
                f"thread stacks exhausted memory: {self.stats.live_threads} live "
                f"threads x {self.params.thread_commit_bytes} B > "
                f"{self.params.ram_budget_bytes} B budget"
            )

    def _abort(self, reason: str) -> None:
        self.aborted = True
        self.abort_reason = reason
        if self._root_future is not None and not self._root_future.is_ready:
            self._root_future.set_exception(ResourceExhausted(reason))
        self.engine.stop(reason)

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------

    def _lock_delay(self, hold_ns: int) -> int:
        """Serialize on the global scheduler lock for *hold_ns*.

        Returns the total delay (queueing + hold) the caller must wait.
        Contention is emergent: concurrent lock users queue behind each
        other on the shared time line.
        """
        start = max(self.engine.now, self._lock_free_at)
        self._lock_free_at = start + hold_ns
        return self._lock_free_at - self.engine.now

    def _dispatch(self) -> None:
        """Assign runnable threads to free cores (lowest index first)."""
        if self.aborted:
            return
        for core in self.cores:
            if not self.run_queue:
                return
            if core.current is not None:
                continue
            thread = self.run_queue.popleft()
            core.current = thread
            thread.state = ThreadState.RUNNING
            thread.slices += 1
            self.stats.dispatches += 1
            cost = self.params.context_switch_ns + self._lock_delay(self.params.runqueue_hold_ns)
            thread.overhead_ns += cost
            self.stats.overhead_ns += cost
            self.engine.call_later(cost, self._run, core, thread)

    def _free_core(self, core: _KCore) -> None:
        core.current = None
        self._dispatch()

    def _run(self, core: _KCore, thread: OSThread) -> None:
        if self.aborted:
            return
        if thread.preempted_work is not None:
            work, thread.preempted_work = thread.preempted_work, None
            self._do_compute(core, thread, work)
            return
        self._step(core, thread, thread.pending_send)

    # ------------------------------------------------------------------
    # effect interpreter
    # ------------------------------------------------------------------

    def _step(self, core: _KCore, thread: OSThread, send_value: Any) -> None:
        if self.aborted:
            return
        gen = thread.gen
        if gen is None:  # first activation: bind the body to its context
            gen = thread.bind(TaskContext(self, thread))
        thread.pending_send = None
        try:
            if send_value.__class__ is ThrowValue:
                effect = gen.throw(send_value.exc)
            else:
                effect = gen.send(send_value)
        except StopIteration as stop:
            self._complete(core, thread, stop.value)
            return
        except Exception as exc:
            self._fail(core, thread, exc)
            return
        self._dispatch_effect(core, thread, effect)

    def _dispatch_effect(self, core: _KCore, thread: OSThread, effect: Any) -> None:
        cls = effect.__class__
        if cls is Compute:
            self._do_compute(core, thread, effect.work)
        elif cls is Spawn:
            self._do_spawn(core, thread, effect)
        elif cls is Await:
            self._do_await(core, thread, effect.future)
        elif cls is AwaitAll:
            self._do_await_all(core, thread, effect.futures)
        elif cls is Lock:
            self._do_lock(core, thread, effect.mutex)
        elif cls is Unlock:
            self._do_unlock(core, thread, effect.mutex)
        elif cls is YieldNow:
            self._do_yield(core, thread)
        else:
            self._fail(core, thread, TypeError(f"thread yielded non-effect {effect!r}"))

    # -- compute with preemption ------------------------------------------

    def _do_compute(self, core: _KCore, thread: OSThread, work: Work) -> None:
        quantum = self.params.time_slice_ns
        preempt = work.cpu_ns > quantum and bool(self.run_queue)
        if preempt:
            frac = quantum / work.cpu_ns
            part = Work(
                cpu_ns=quantum,
                membytes=round(work.membytes * frac),
                working_set=work.working_set,
                data_rd_fraction=work.data_rd_fraction,
                code_rd_fraction=work.code_rd_fraction,
                rfo_fraction=work.rfo_fraction,
            )
            rest = Work(
                cpu_ns=work.cpu_ns - quantum,
                membytes=work.membytes - part.membytes,
                working_set=work.working_set,
                data_rd_fraction=work.data_rd_fraction,
                code_rd_fraction=work.code_rd_fraction,
                rfo_fraction=work.rfo_fraction,
            )
        else:
            part, rest = work, None

        cross = (
            self.params.cross_socket_data_fraction
            if thread.home_socket != core.socket and part.membytes > 0
            else 0.0
        )
        ticket = self.machine.segment_begin(core.core_index, part, cross_socket_fraction=cross)
        duration = ticket.duration_ns
        thread.exec_ns += duration
        self.stats.exec_ns += duration
        self.engine.call_later(duration, self._finish_compute, core, thread, ticket, part, rest)

    def _finish_compute(
        self, core: _KCore, thread: OSThread, ticket: Any, part: Work, rest: Work | None
    ) -> None:
        self.machine.segment_end(ticket, part)
        if rest is not None:
            self.stats.preemptions += 1
            thread.preempted_work = rest
            thread.state = ThreadState.RUNNABLE
            self.run_queue.append(thread)
            self._free_core(core)
        else:
            self._step(core, thread, None)

    # -- spawn ---------------------------------------------------------------

    def _do_spawn(self, core: _KCore, thread: OSThread, effect: Spawn) -> None:
        policy = _POLICY_BY_NAME.get(effect.policy)
        if policy is None:
            policy = LaunchPolicy.parse(effect.policy)
        if policy is LaunchPolicy.ASYNC or policy is LaunchPolicy.FORK:
            # fork does not exist in std; Inncabs maps it to async.
            cost = self.params.thread_create_ns + self._lock_delay(self.params.create_hold_ns)
            child = self._make_thread(effect.fn, effect.args, home_socket=core.socket)
            if self.aborted:
                return
            thread.exec_ns += cost
            self.stats.exec_ns += cost
            self.run_queue.append(child)
            self.engine.call_later(cost, self._created, core, thread, child)
            return
        if policy is LaunchPolicy.DEFERRED:
            child = self._make_thread(
                effect.fn, effect.args, home_socket=core.socket, deferred=True
            )
            cost = self.params.future_get_ready_ns
            thread.exec_ns += cost
            self.stats.exec_ns += cost
            self.engine.call_later(cost, self._step, core, thread, child.future)
            return
        # SYNC: run inline on this thread, borrowing the core.
        child = self._make_thread(effect.fn, effect.args, home_socket=core.socket, deferred=True)
        self._run_inline(core, thread, child, send_future=True)

    def _created(self, core: _KCore, thread: OSThread, child: OSThread) -> None:
        """An async spawn finished creating its thread: dispatch it and
        resume the parent with the child's future."""
        self._dispatch()
        self._step(core, thread, child.future)

    def _run_inline(
        self, core: _KCore, thread: OSThread, child: OSThread, *, send_future: bool
    ) -> None:
        """Execute a deferred child synchronously on the calling thread."""
        thread.state = ThreadState.BLOCKED

        def done(fut: SimFuture) -> None:
            thread.state = ThreadState.RUNNING
            core.current = thread
            value = fut if send_future else resume_payload(fut)
            self._step(core, thread, value)

        child.future.on_ready(done)
        child.state = ThreadState.RUNNING
        core.current = child
        self._step(core, child, None)

    # -- waiting ---------------------------------------------------------------

    def _do_await(self, core: _KCore, thread: OSThread, future: SimFuture) -> None:
        if future.is_ready:
            cost = self.params.future_get_ready_ns
            thread.exec_ns += cost
            self.stats.exec_ns += cost
            payload = resume_payload(future)
            self.engine.call_later(cost, self._step, core, thread, payload)
            return
        producer = future.producer_task
        if isinstance(producer, OSThread) and producer.state is ThreadState.DEFERRED:
            self._run_inline(core, thread, producer, send_future=False)
            return
        cost = self.params.block_ns
        thread.overhead_ns += cost
        self.stats.overhead_ns += cost
        self.stats.blocks += 1
        thread.state = ThreadState.BLOCKED
        future.on_ready(lambda fut: self._wake(thread, resume_payload(fut)))
        self.engine.call_later(cost, self._free_core, core)

    def _do_await_all(self, core: _KCore, thread: OSThread, futures: tuple) -> None:
        for fut in futures:
            producer = fut.producer_task
            if isinstance(producer, OSThread) and producer.state is ThreadState.DEFERRED:
                # Run the deferred child now, then re-issue the wait.
                def resume_wait(_f: SimFuture, t=thread, fs=futures) -> None:
                    c = self._core_of(t)
                    t.state = ThreadState.RUNNING
                    c.current = t
                    self._do_await_all(c, t, fs)

                thread.state = ThreadState.BLOCKED
                producer.future.on_ready(resume_wait)
                producer.state = ThreadState.RUNNING
                core.current = producer
                self._step(core, producer, None)
                return
        pending = [f for f in futures if not f.is_ready]
        if not pending:
            cost = self.params.future_get_ready_ns
            thread.exec_ns += cost
            self.stats.exec_ns += cost
            payload = resume_payload_all(futures)
            self.engine.call_later(cost, self._step, core, thread, payload)
            return
        cost = self.params.block_ns
        thread.overhead_ns += cost
        self.stats.overhead_ns += cost
        self.stats.blocks += 1
        thread.state = ThreadState.BLOCKED
        remaining = {"count": len(pending)}

        def one_ready(_fut: SimFuture) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self._wake(thread, resume_payload_all(futures))

        for fut in pending:
            fut.on_ready(one_ready)
        self.engine.call_later(cost, self._free_core, core)

    def _core_of(self, thread: OSThread) -> _KCore:
        for core in self.cores:
            if core.current is thread:
                return core
        # Thread resumed via the run queue; report the fulfilling core.
        return self._fulfil_core or self.cores[0]

    def _wake(self, thread: OSThread, send_value: Any) -> None:
        """Future set / mutex granted: move *thread* to the run queue."""
        if self.aborted:
            return
        self.stats.wakes += 1
        cost = self.params.wake_ns + self._lock_delay(self.params.runqueue_hold_ns)
        self.stats.overhead_ns += cost
        thread.overhead_ns += cost
        thread.pending_send = send_value
        thread.state = ThreadState.RUNNABLE
        self.run_queue.append(thread)
        self.engine.call_later(cost, self._dispatch)

    # -- mutexes -----------------------------------------------------------------

    def _do_lock(self, core: _KCore, thread: OSThread, mutex: KMutex) -> None:
        if mutex.try_acquire(thread):
            cost = self.params.mutex_ns
            thread.exec_ns += cost
            self.stats.exec_ns += cost
            self.engine.call_later(cost, self._step, core, thread, None)
            return
        cost = self.params.block_ns
        thread.overhead_ns += cost
        self.stats.overhead_ns += cost
        self.stats.blocks += 1
        thread.state = ThreadState.BLOCKED
        mutex.enqueue_waiter(thread)
        self.engine.call_later(cost, self._free_core, core)

    def _do_unlock(self, core: _KCore, thread: OSThread, mutex: KMutex) -> None:
        nxt = mutex.release(thread)
        cost = self.params.mutex_ns
        thread.exec_ns += cost
        self.stats.exec_ns += cost
        if nxt is not None:
            self._wake(nxt, None)
        self.engine.call_later(cost, self._step, core, thread, None)

    def _do_yield(self, core: _KCore, thread: OSThread) -> None:
        cost = self.params.context_switch_ns
        thread.overhead_ns += cost
        self.stats.overhead_ns += cost
        thread.state = ThreadState.RUNNABLE
        thread.pending_send = None
        self.run_queue.append(thread)
        self.engine.call_later(cost, self._free_core, core)

    # -- completion -----------------------------------------------------------------

    def _complete(self, core: _KCore, thread: OSThread, value: Any) -> None:
        self._retire(core, thread, lambda: thread.future.set_value(value))

    def _fail(self, core: _KCore, thread: OSThread, exc: BaseException) -> None:
        self._retire(core, thread, lambda: thread.future.set_exception(exc))

    def _retire(self, core: _KCore, thread: OSThread, fulfil: Callable[[], None]) -> None:
        thread.state = ThreadState.TERMINATED
        self.stats.threads_completed += 1
        # Deferred/sync children never committed memory; real threads did.
        if thread.committed:
            self.stats.live_threads -= 1
            self.stats.committed_bytes -= self.params.thread_commit_bytes
        cost = self.params.thread_destroy_ns if thread.committed else 0
        thread.overhead_ns += cost
        self.stats.overhead_ns += cost
        prev = self._fulfil_core
        self._fulfil_core = core
        try:
            fulfil()
        finally:
            self._fulfil_core = prev
        # An inline-resume callback may have reoccupied the core (a
        # deferred child waking its waiter); only free it if this thread
        # still holds it.
        if core.current is thread:
            self.engine.call_later(cost, self._free_core, core)
