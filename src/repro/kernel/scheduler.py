"""Kernel scheduler for the thread-per-task (``std::async``) model.

A single global FIFO run queue feeds the bound cores.  Every dispatch
pays a context switch plus run-queue lock contention that grows with
the number of cores hammering the queue; every ``std::async`` pays a
thread creation inside the parent; every not-ready ``get()`` pays a
futex block/wake pair.  Committed memory is tracked per live thread and
the process aborts when the budget is exhausted — the paper's observed
failure mode for Fib, Health, NQueens and UTS.

Effect interpretation is shared with the HPX model: this module is a
:class:`repro.exec.backend.SchedulerBackend` implementation driven by
:class:`repro.exec.interp.EffectInterpreter`, publishing its accounting
on a :class:`repro.exec.probes.ProbeBus` so the same counters, trace
recorder and metrics work on both runtimes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.exec.errors import DeadlockError, ResourceExhausted, describe_tasks, format_stall
from repro.exec.interp import EffectInterpreter
from repro.exec.probes import KernelProbe, ProbeBus, WorkerProbe
from repro.model.effects import Await, AwaitAll, Compute, Lock, Spawn, Unlock, YieldNow
from repro.model.future import SimFuture, resume_payload, resume_payload_all
from repro.model.population import TaskCohort
from repro.model.work import Work
from repro.kernel.config import StdParams
from repro.kernel.thread import OSThread, ThreadState
from repro.runtime.policies import LaunchPolicy, _BY_NAME as _POLICY_BY_NAME
from repro.simcore.events import Engine
from repro.simcore.machine import Machine
from repro.simcore.topology import BindMode, Topology

# Legacy spelling: the kernel stats struct is the shared probe type now.
StdStats = KernelProbe

__all__ = ["KMutex", "ResourceExhausted", "StdRuntime", "StdStats"]


class KMutex:
    """``std::mutex``: futex-based, FIFO hand-off under contention."""

    __slots__ = ("mid", "owner", "waiters", "acquisitions", "contentions")

    def __init__(self, mid: int) -> None:
        self.mid = mid
        self.owner: OSThread | None = None
        self.waiters: deque[OSThread] = deque()
        self.acquisitions = 0
        self.contentions = 0

    def try_acquire(self, thread: OSThread) -> bool:
        if self.owner is None:
            self.owner = thread
            self.acquisitions += 1
            return True
        return False

    def enqueue_waiter(self, thread: OSThread) -> None:
        self.contentions += 1
        self.waiters.append(thread)

    def release(self, thread: OSThread) -> OSThread | None:
        if self.owner is not thread:
            raise RuntimeError(f"thread {thread.tid} releasing mutex {self.mid} it does not own")
        if self.waiters:
            nxt = self.waiters.popleft()
            self.owner = nxt
            self.acquisitions += 1
            return nxt
        self.owner = None
        return None


class _KCore:
    __slots__ = ("index", "core_index", "socket", "current", "stats")

    def __init__(self, index: int, core_index: int, socket: int) -> None:
        self.index = index
        self.core_index = core_index
        self.socket = socket
        self.current: OSThread | None = None
        self.stats = WorkerProbe()


class StdRuntime:
    """Facade mirroring :class:`repro.runtime.scheduler.HpxRuntime`."""

    name = "std"

    def __init__(
        self,
        engine: Engine,
        machine: Machine,
        *,
        num_workers: int,
        params: StdParams | None = None,
        bind_mode: BindMode = BindMode.COMPACT,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.params = params or StdParams()
        self.topology = Topology(machine.platform)
        cores = self.topology.binding(num_workers, bind_mode)
        self.cores = [
            _KCore(i, core, machine.platform.socket_of(core)) for i, core in enumerate(cores)
        ]
        self.run_queue: deque[OSThread] = deque()
        # The shared effect interpreter and the published probe bus.
        self._interp = EffectInterpreter(self)
        self._step = self._interp.step
        self.probes = ProbeBus(KernelProbe(), [c.stats for c in self.cores])
        self.stats = self.probes.total
        self._next_tid = 0
        self._next_mid = 0
        self.aborted = False
        self.abort_reason: str | None = None
        self._fulfil_core: _KCore | None = None
        self._root_future: SimFuture | None = None
        self._live_threads: dict[int, OSThread] = {}
        # Simulated global scheduler lock: the time until which it is held.
        self._lock_free_at = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self.cores)

    @property
    def workers(self) -> list[_KCore]:
        """The bound cores (the backend's per-worker view)."""
        return self.cores

    def add_instrumentation(self, delta_ns: int) -> None:
        """Register (positive) or remove (negative) per-dispatch
        instrumentation cost; called by counter ``start``/``stop``."""
        self.probes.add_instrumentation(delta_ns)

    @property
    def instrument_ns(self) -> int:
        """Per-dispatch instrumentation charge (lives on the probe bus)."""
        return self.probes.instrument_ns

    @property
    def trace(self) -> Callable[[int, str, OSThread, int | None], None] | None:
        """The thread life-cycle trace hook (lives on the probe bus)."""
        return self.probes.trace

    @trace.setter
    def trace(self, hook: Callable[[int, str, OSThread, int | None], None] | None) -> None:
        self.probes.trace = hook

    def set_compute_rewriter(self, rewriter: Callable[[OSThread, Any], Any] | None) -> None:
        """Install (or remove) a what-if work rewriter on the effect loop
        (see :meth:`repro.exec.interp.EffectInterpreter.set_compute_rewriter`)."""
        self._interp.set_compute_rewriter(rewriter)

    def create_mutex(self) -> KMutex:
        m = KMutex(self._next_mid)
        self._next_mid += 1
        return m

    def submit(self, fn: Callable[..., Any], *args: Any) -> SimFuture:
        """Start the main thread running *fn*."""
        main = self._make_thread(fn, args, home_socket=self.cores[0].socket, is_main=True)
        if self._root_future is None:  # later submits (e.g. query tasks) don't displace the root
            self._root_future = main.future
        main.staged_at = self.engine.now
        self.run_queue.append(main)
        self._dispatch()
        return main.future

    def run_to_completion(self, fn: Callable[..., Any], *args: Any) -> Any:
        future = self.submit(fn, *args)
        self.engine.run()
        if self.aborted:
            raise ResourceExhausted(self.abort_reason or "out of memory")
        if not future.is_ready:
            raise DeadlockError(self.describe_stall())
        return future.value()

    def describe_stall(self) -> str:
        stuck = [
            t for t in self._live_threads.values() if t.state is not ThreadState.TERMINATED
        ]
        return format_stall(stuck, now_ns=self.engine.now, noun="thread")

    # -- counter sources --------------------------------------------------

    def queue_length(self) -> int:
        """Instantaneous length of the global run queue."""
        return len(self.run_queue)

    def worker_queue_length(self, index: int) -> int:
        """Cores have no local queues; all staging is global."""
        return 0

    def idle_rate(self, worker_index: int | None = None) -> float:
        """Fraction of wall time not spent busy, in [0, 1]."""
        wall = self.engine.now
        if wall <= 0:
            return 0.0
        if worker_index is None:
            busy = sum(c.stats.busy_ns for c in self.cores)
            return max(0.0, 1.0 - busy / (wall * len(self.cores)))
        return max(0.0, 1.0 - self.cores[worker_index].stats.busy_ns / wall)

    def steals_total(self) -> int:
        """The kernel scheduler does not steal (single global queue)."""
        return 0

    # ------------------------------------------------------------------
    # SchedulerBackend: population hooks (cohort execution)
    # ------------------------------------------------------------------

    def population_work(self, work: Work) -> Work:
        """No backend-wide scaling: kernel threads pay no locality factor."""
        return work

    def population_task_costs(self, cohort: TaskCohort) -> tuple[float, float]:
        """Mean per-member (exec_ns, overhead_ns) beyond the compute.

        Same cost constants the effect handlers charge per event: one
        dispatch per resumption (context switch + instrumentation +
        run-queue hold), thread creation per spawn inside the parent, a
        ready-future read per non-suspending ``get()``, a futex
        block/wake pair per blocking ``get()``, and thread destruction
        at retirement.  Lock *queueing* on the run-queue/create locks —
        which the exact engine serializes event by event — enters only
        as the hold times; ``docs/cohort.md`` quantifies the error.
        """
        p = self.params
        dispatches = 1.0 + cohort.blocking_awaits
        overhead = (
            dispatches * (p.context_switch_ns + self.probes.instrument_ns + p.runqueue_hold_ns)
            + cohort.blocking_awaits * (p.block_ns + p.wake_ns + p.runqueue_hold_ns)
            + p.thread_destroy_ns
        )
        exec_ns = (
            cohort.spawns * (p.thread_create_ns + p.create_hold_ns)
            + cohort.ready_awaits * p.future_get_ready_ns
        )
        return exec_ns, overhead

    def population_begin(self, cohort: TaskCohort) -> int:
        """Commit thread stacks for the cohort's live population.

        Thread-per-task admits eagerly: every live member holds a
        committed stack.  When the cohort's modeled live population
        overruns the memory budget, exactly as many members are
        admitted as fit plus the one that dies — reproducing the exact
        engine's abort point and peak-live accounting.
        """
        live = cohort.peak_live
        stats = self.stats
        commit = self.params.thread_commit_bytes
        budget = self.params.ram_budget_bytes
        if stats.committed_bytes + live * commit > budget:
            admitted = (budget - stats.committed_bytes) // commit + 1
            admitted = max(1, min(live, admitted))
        else:
            admitted = live
        stats.live_tasks += admitted
        if stats.live_tasks > stats.peak_live_tasks:
            stats.peak_live_tasks = stats.live_tasks
        stats.committed_bytes += admitted * commit
        if stats.committed_bytes > budget:
            self._abort(
                f"thread stacks exhausted memory: {stats.live_tasks} live "
                f"threads x {commit} B > "
                f"{budget} B budget"
            )
        return admitted

    def population_end(self, cohort: TaskCohort) -> None:
        """Retire the cohort's live population and book the per-member
        kernel events (dispatches, blocks, wakes) at the boundary."""
        stats = self.stats
        live = cohort.peak_live
        stats.live_tasks -= live
        stats.committed_bytes -= live * self.params.thread_commit_bytes
        n = cohort.tasks
        stats.dispatches += round(n * (1.0 + cohort.blocking_awaits))
        stats.blocks += round(n * cohort.blocking_awaits)
        stats.wakes += round(n * cohort.blocking_awaits)

    # ------------------------------------------------------------------
    # thread management
    # ------------------------------------------------------------------

    def _make_thread(
        self,
        fn: Callable[..., Any],
        args: tuple,
        *,
        home_socket: int,
        parent: OSThread | None = None,
        deferred: bool = False,
        is_main: bool = False,
    ) -> OSThread:
        thread = OSThread(
            self._next_tid,
            fn,
            args,
            home_socket=home_socket,
            created_at=self.engine.now,
            parent_tid=parent.tid if parent else None,
            deferred=deferred,
            is_main=is_main,
        )
        self._next_tid += 1
        self.stats.tasks_created += 1
        self._live_threads[thread.tid] = thread
        self.probes.emit(self.engine.now, "create", thread, None)
        if not deferred:
            self._commit_memory(thread)
        return thread

    def _commit_memory(self, thread: OSThread) -> None:
        thread.committed = True
        stats = self.stats
        stats.live_tasks += 1
        if stats.live_tasks > stats.peak_live_tasks:
            stats.peak_live_tasks = stats.live_tasks
        stats.committed_bytes += self.params.thread_commit_bytes
        if stats.committed_bytes > self.params.ram_budget_bytes:
            self._abort(
                f"thread stacks exhausted memory: {stats.live_tasks} live "
                f"threads x {self.params.thread_commit_bytes} B > "
                f"{self.params.ram_budget_bytes} B budget"
            )

    def _abort(self, reason: str) -> None:
        self.aborted = True
        # Over-budget diagnostics: name the threads holding the memory.
        live = [t for t in self._live_threads.values() if t.committed]
        detail = describe_tasks(live, noun="thread", limit=5)
        self.abort_reason = "\n".join([reason, *detail]) if detail else reason
        if self._root_future is not None and not self._root_future.is_ready:
            self._root_future.set_exception(ResourceExhausted(self.abort_reason))
        self.engine.stop(reason)

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------

    def _lock_delay(self, hold_ns: int) -> int:
        """Serialize on the global scheduler lock for *hold_ns*.

        Returns the total delay (queueing + hold) the caller must wait.
        Contention is emergent: concurrent lock users queue behind each
        other on the shared time line.
        """
        start = max(self.engine.now, self._lock_free_at)
        self._lock_free_at = start + hold_ns
        return self._lock_free_at - self.engine.now

    def _dispatch(self) -> None:
        """Assign runnable threads to free cores (lowest index first)."""
        if self.aborted:
            return
        stats = self.stats
        for core in self.cores:
            if not self.run_queue:
                return
            if core.current is not None:
                continue
            thread = self.run_queue.popleft()
            core.current = thread
            thread.state = ThreadState.RUNNING
            thread.slices += 1
            stats.dispatches += 1
            stats.phases += 1
            if thread.staged_at is not None:
                stats.pending_wait_ns += self.engine.now - thread.staged_at
                stats.pending_waits += 1
                thread.staged_at = None
            cost = (
                self.params.context_switch_ns
                + self.probes.instrument_ns
                + self._lock_delay(self.params.runqueue_hold_ns)
            )
            self._charge_overhead(core, thread, cost)
            self.probes.emit(self.engine.now, "activate", thread, core.index)
            self.engine.call_later(cost, self._run, core, thread)

    def _free_core(self, core: _KCore) -> None:
        core.current = None
        self._dispatch()

    def _run(self, core: _KCore, thread: OSThread) -> None:
        if self.aborted:
            return
        if thread.preempted_work is not None:
            work, thread.preempted_work = thread.preempted_work, None
            self._compute_work(core, thread, work)
            return
        self._step(core, thread, thread.pending_send)

    # -- blocking helpers --------------------------------------------------

    def _block(self, thread: OSThread) -> None:
        """Mark *thread* blocked (futex wait on a future or mutex)."""
        thread.state = ThreadState.BLOCKED
        self.stats.suspended_tasks += 1

    def _unblock(self, thread: OSThread) -> None:
        if thread.state is ThreadState.BLOCKED:
            self.stats.suspended_tasks -= 1

    # -- accounting: charge *ns* to a thread's exec or overhead time -------

    def _charge_exec(self, core: _KCore, thread: OSThread, ns: int) -> None:
        thread.exec_ns += ns
        self.stats.exec_ns += ns
        core.stats.exec_ns += ns
        core.stats.busy_ns += ns

    def _charge_overhead(self, core: _KCore, thread: OSThread, ns: int) -> None:
        thread.overhead_ns += ns
        self.stats.overhead_ns += ns
        core.stats.overhead_ns += ns
        core.stats.busy_ns += ns

    # ------------------------------------------------------------------
    # SchedulerBackend: effect handlers (the interpreter dispatches here)
    # ------------------------------------------------------------------

    def begin_step(self, core: _KCore, thread: OSThread) -> bool:
        """Interpreter gate: nothing runs once the process aborted."""
        return not self.aborted

    # -- compute with preemption ------------------------------------------

    def do_compute(self, core: _KCore, thread: OSThread, effect: Compute) -> None:
        self._compute_work(core, thread, effect.work)

    def _compute_work(self, core: _KCore, thread: OSThread, work: Work) -> None:
        quantum = self.params.time_slice_ns
        if work.cpu_ns > quantum and self.run_queue:
            part, rest = work.split_at(quantum)
        else:
            part, rest = work, None
        cross = (
            self.params.cross_socket_data_fraction
            if thread.home_socket != core.socket and part.membytes > 0
            else 0.0
        )
        ticket = self.machine.segment_begin(core.core_index, part, cross_socket_fraction=cross)
        duration = ticket.duration_ns
        self._charge_exec(core, thread, duration)
        self.engine.call_later(duration, self._finish_compute, core, thread, ticket, part, rest)

    def _finish_compute(
        self, core: _KCore, thread: OSThread, ticket: Any, part: Work, rest: Work | None
    ) -> None:
        self.machine.segment_end(ticket, part)
        if rest is not None:
            self.stats.preemptions += 1
            thread.preempted_work = rest
            thread.state = ThreadState.RUNNABLE
            thread.staged_at = self.engine.now
            self.run_queue.append(thread)
            self._free_core(core)
        else:
            self._step(core, thread, None)

    # -- spawn ---------------------------------------------------------------

    def do_spawn(self, core: _KCore, thread: OSThread, effect: Spawn) -> None:
        policy = _POLICY_BY_NAME.get(effect.policy)
        if policy is None:
            policy = LaunchPolicy.parse(effect.policy)
        if policy is LaunchPolicy.ASYNC or policy is LaunchPolicy.FORK:
            # fork does not exist in std; Inncabs maps it to async.
            cost = self.params.thread_create_ns + self._lock_delay(self.params.create_hold_ns)
            child = self._make_thread(
                effect.fn, effect.args, home_socket=core.socket, parent=thread
            )
            if self.aborted:
                return
            self._charge_exec(core, thread, cost)
            child.staged_at = self.engine.now
            self.run_queue.append(child)
            self.engine.call_later(cost, self._created, core, thread, child)
            return
        if policy is LaunchPolicy.DEFERRED:
            child = self._make_thread(
                effect.fn, effect.args, home_socket=core.socket, parent=thread, deferred=True
            )
            cost = self.params.future_get_ready_ns
            self._charge_exec(core, thread, cost)
            self.engine.call_later(cost, self._step, core, thread, child.future)
            return
        # SYNC: run inline on this thread, borrowing the core.
        child = self._make_thread(
            effect.fn, effect.args, home_socket=core.socket, parent=thread, deferred=True
        )
        self._run_inline(core, thread, child, send_future=True)

    def _created(self, core: _KCore, thread: OSThread, child: OSThread) -> None:
        """An async spawn finished creating its thread: dispatch it and
        resume the parent with the child's future."""
        self._dispatch()
        self._step(core, thread, child.future)

    def _run_inline(
        self, core: _KCore, thread: OSThread, child: OSThread, *, send_future: bool
    ) -> None:
        """Execute a deferred child synchronously on the calling thread."""
        self._block(thread)
        self.probes.emit(self.engine.now, "suspend", thread, core.index)

        def done(fut: SimFuture) -> None:
            self._unblock(thread)
            thread.state = ThreadState.RUNNING
            core.current = thread
            self.probes.emit(self.engine.now, "resume", thread, core.index)
            value = fut if send_future else resume_payload(fut)
            self._step(core, thread, value)

        child.future.on_ready(done)
        child.state = ThreadState.RUNNING
        core.current = child
        self.probes.emit(self.engine.now, "activate", child, core.index)
        self._step(core, child, None)

    # -- waiting ---------------------------------------------------------------

    def do_await(self, core: _KCore, thread: OSThread, effect: Await) -> None:
        future = effect.future
        if future.is_ready:
            cost = self.params.future_get_ready_ns
            self._charge_exec(core, thread, cost)
            self.probes.emit_dependencies(self.engine.now, thread, (future,))
            payload = resume_payload(future)
            self.engine.call_later(cost, self._step, core, thread, payload)
            return
        producer = future.producer_task
        if isinstance(producer, OSThread) and producer.state is ThreadState.DEFERRED:
            self._run_inline(core, thread, producer, send_future=False)
            return
        cost = self.params.block_ns
        self._charge_overhead(core, thread, cost)
        self.stats.blocks += 1
        self._block(thread)
        self.probes.emit(self.engine.now, "suspend", thread, core.index)

        def ready(fut: SimFuture) -> None:
            self.probes.emit_dependencies(self.engine.now, thread, (fut,))
            self._wake(thread, resume_payload(fut))

        future.on_ready(ready)
        self.engine.call_later(cost, self._free_core, core)

    def do_await_all(self, core: _KCore, thread: OSThread, effect: AwaitAll) -> None:
        futures = effect.futures
        for fut in futures:
            producer = fut.producer_task
            if isinstance(producer, OSThread) and producer.state is ThreadState.DEFERRED:
                # Run the deferred child now, then re-issue the wait.
                def resume_wait(_f: SimFuture, t=thread, fs=futures) -> None:
                    c = self._core_of(t)
                    self._unblock(t)
                    t.state = ThreadState.RUNNING
                    c.current = t
                    self.probes.emit(self.engine.now, "resume", t, c.index)
                    self.do_await_all(c, t, AwaitAll(futures=fs))

                self._block(thread)
                self.probes.emit(self.engine.now, "suspend", thread, core.index)
                producer.future.on_ready(resume_wait)
                producer.state = ThreadState.RUNNING
                core.current = producer
                self.probes.emit(self.engine.now, "activate", producer, core.index)
                self._step(core, producer, None)
                return
        pending = [f for f in futures if not f.is_ready]
        if not pending:
            cost = self.params.future_get_ready_ns
            self._charge_exec(core, thread, cost)
            self.probes.emit_dependencies(self.engine.now, thread, futures)
            payload = resume_payload_all(futures)
            self.engine.call_later(cost, self._step, core, thread, payload)
            return
        cost = self.params.block_ns
        self._charge_overhead(core, thread, cost)
        self.stats.blocks += 1
        self._block(thread)
        self.probes.emit(self.engine.now, "suspend", thread, core.index)
        remaining = {"count": len(pending)}

        def one_ready(_fut: SimFuture) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self.probes.emit_dependencies(self.engine.now, thread, futures)
                self._wake(thread, resume_payload_all(futures))

        for fut in pending:
            fut.on_ready(one_ready)
        self.engine.call_later(cost, self._free_core, core)

    def _core_of(self, thread: OSThread) -> _KCore:
        for core in self.cores:
            if core.current is thread:
                return core
        # Thread resumed via the run queue; report the fulfilling core.
        return self._fulfil_core or self.cores[0]

    def _wake(self, thread: OSThread, send_value: Any) -> None:
        """Future set / mutex granted: move *thread* to the run queue."""
        if self.aborted:
            return
        self.stats.wakes += 1
        cost = self.params.wake_ns + self._lock_delay(self.params.runqueue_hold_ns)
        self.stats.overhead_ns += cost
        thread.overhead_ns += cost
        thread.pending_send = send_value
        self._unblock(thread)
        thread.state = ThreadState.RUNNABLE
        thread.staged_at = self.engine.now
        self.run_queue.append(thread)
        self.probes.emit(self.engine.now, "resume", thread, None)
        self.engine.call_later(cost, self._dispatch)

    # -- mutexes -----------------------------------------------------------------

    def do_lock(self, core: _KCore, thread: OSThread, effect: Lock) -> None:
        mutex = effect.mutex
        if mutex.try_acquire(thread):
            cost = self.params.mutex_ns
            self._charge_exec(core, thread, cost)
            self.engine.call_later(cost, self._step, core, thread, None)
            return
        cost = self.params.block_ns
        self._charge_overhead(core, thread, cost)
        self.stats.blocks += 1
        self._block(thread)
        self.probes.emit(self.engine.now, "suspend", thread, core.index)
        mutex.enqueue_waiter(thread)
        self.engine.call_later(cost, self._free_core, core)

    def do_unlock(self, core: _KCore, thread: OSThread, effect: Unlock) -> None:
        nxt = effect.mutex.release(thread)
        cost = self.params.mutex_ns
        self._charge_exec(core, thread, cost)
        if nxt is not None:
            self._wake(nxt, None)
        self.engine.call_later(cost, self._step, core, thread, None)

    def do_yield(self, core: _KCore, thread: OSThread, effect: YieldNow) -> None:
        cost = self.params.context_switch_ns
        self._charge_overhead(core, thread, cost)
        thread.state = ThreadState.RUNNABLE
        thread.pending_send = None
        thread.staged_at = self.engine.now
        self.run_queue.append(thread)
        self.engine.call_later(cost, self._free_core, core)

    # -- completion -----------------------------------------------------------------

    def complete(self, core: _KCore, thread: OSThread, value: Any) -> None:
        self._retire(core, thread, lambda: thread.future.set_value(value))

    def fail(self, core: _KCore, thread: OSThread, exc: BaseException) -> None:
        self._retire(core, thread, lambda: thread.future.set_exception(exc))

    def _retire(self, core: _KCore, thread: OSThread, fulfil: Callable[[], None]) -> None:
        thread.state = ThreadState.TERMINATED
        stats = self.stats
        stats.tasks_executed += 1
        core.stats.tasks_executed += 1
        del self._live_threads[thread.tid]
        # Deferred/sync children never committed memory; real threads did.
        if thread.committed:
            stats.live_tasks -= 1
            stats.committed_bytes -= self.params.thread_commit_bytes
        cost = self.params.thread_destroy_ns if thread.committed else 0
        self._charge_overhead(core, thread, cost)
        self.probes.emit(self.engine.now, "terminate", thread, core.index)
        prev = self._fulfil_core
        self._fulfil_core = core
        try:
            fulfil()
        finally:
            self._fulfil_core = prev
        # An inline-resume callback may have reoccupied the core (a
        # deferred child waking its waiter); only free it if this thread
        # still holds it.
        if core.current is thread:
            self.engine.call_later(cost, self._free_core, core)
