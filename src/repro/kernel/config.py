"""Cost parameters of the kernel-thread (``std::async``) model.

Magnitudes are order-of-magnitude faithful to Linux on Ivy Bridge:
``pthread_create`` ≈ 10–25 µs, a kernel context switch ≈ 1–5 µs, a
futex block/wake pair ≈ 1–3 µs.  Contrast with the sub-microsecond
numbers in :class:`repro.runtime.config.HpxParams` — this three-orders-
of-magnitude gap is the entire story of the paper's fine-grained
results.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StdParams:
    """Tunable costs (nanoseconds unless noted) of the kernel model."""

    # Thread life cycle; creation is charged inside the parent's body
    # (std::async returns only after the clone() call).
    thread_create_ns: int = 18_000
    thread_destroy_ns: int = 4_000

    # Dispatch costs.
    context_switch_ns: int = 2_500
    # Global run-queue lock: every dispatch/wake serializes on it for
    # this long.  This is the scalability wall that keeps the
    # fine-grained Standard versions from scaling — with N cores each
    # completing a task every few microseconds, the lock saturates and
    # throughput plateaus (paper: FFT 'to 6', Sort 'to 10').
    runqueue_hold_ns: int = 250
    # Serialized portion of clone(): the runqueue/mmap locks held while
    # creating a thread.
    create_hold_ns: int = 2_000

    # Scheduling quantum; longer compute segments are preempted when
    # other threads are runnable.
    time_slice_ns: int = 2_000_000

    # Synchronization (futex) costs.
    future_get_ready_ns: int = 80
    block_ns: int = 1_400
    wake_ns: int = 1_500
    mutex_ns: int = 100

    # Memory model: committed bytes per thread (stack pages actually
    # touched + kernel task_struct + TLS), and the budget available to
    # thread stacks.  The paper's node has 62 GiB; at ~700 KiB committed
    # per thread the Standard versions die at roughly 90 k live threads.
    # Experiments use a proportionally scaled budget because benchmark
    # inputs are scaled down (see repro/experiments/config.py).
    thread_commit_bytes: int = 700 * 1024
    ram_budget_bytes: int = 62 * 1024**3

    # The kernel scheduler has no NUMA affinity for short-lived threads:
    # this fraction of a thread's memory traffic goes cross-socket when
    # it lands on a core in the other socket.
    cross_socket_data_fraction: float = 0.7

    @property
    def max_live_threads(self) -> int:
        """Live-thread count at which creation aborts the process."""
        return self.ram_budget_bytes // self.thread_commit_bytes
