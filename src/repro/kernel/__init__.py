"""The C++11 Standard-library baseline: one OS thread per task.

Models the GCC libstdc++ behaviour the paper describes: ``std::async``
constructs, executes and destroys a kernel thread for every task.  The
kernel scheduler keeps a single global run queue, dispatches threads to
cores FIFO with a time-slice quantum, and charges realistic costs for
thread creation/destruction, context switches, futex block/wake pairs
and run-queue lock contention.  Per-thread committed memory is
accounted; exceeding the budget aborts the program — exactly how the
paper's Fib/Health/NQueens/UTS runs die with 80–97 k live pthreads.
"""

from repro.kernel.config import StdParams
from repro.kernel.scheduler import ResourceExhausted, StdRuntime
from repro.kernel.thread import OSThread, ThreadState

__all__ = [
    "OSThread",
    "ResourceExhausted",
    "StdParams",
    "StdRuntime",
    "ThreadState",
]
