"""Kernel thread objects.

One :class:`OSThread` is created per ``std::async`` call (plus the main
thread).  Unlike the HPX model, every thread exists in the kernel from
creation: it occupies committed memory and competes for the global run
queue whether or not it has ever run.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator

from repro.model.future import SimFuture


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"  # in the run queue
    RUNNING = "running"  # on a core
    BLOCKED = "blocked"  # futex wait (future / mutex)
    DEFERRED = "deferred"  # std::launch::deferred — no thread yet
    TERMINATED = "terminated"


class OSThread:
    """One kernel thread executing one task body."""

    __slots__ = (
        "tid",
        "fn",
        "args",
        "future",
        "state",
        "home_socket",
        "created_at",
        "parent_tid",
        "staged_at",
        "gen",
        "pending_send",
        "preempted_work",
        "exec_ns",
        "overhead_ns",
        "slices",
        "description",
        "is_main",
        "committed",
    )

    def __init__(
        self,
        tid: int,
        fn: Callable[..., Any],
        args: tuple,
        *,
        home_socket: int,
        created_at: int,
        parent_tid: int | None = None,
        deferred: bool = False,
        is_main: bool = False,
    ) -> None:
        self.tid = tid
        self.fn = fn
        self.args = args
        self.future = SimFuture(producer_task=self)
        self.state = ThreadState.DEFERRED if deferred else ThreadState.RUNNABLE
        self.home_socket = home_socket
        self.created_at = created_at
        self.parent_tid = parent_tid
        # When the thread entered the run queue (backs the pending-wait
        # accounting); None while running/blocked.
        self.staged_at: int | None = None
        self.gen: Generator | None = None
        self.pending_send: Any = None
        # Remaining Work when the thread was preempted mid-segment.
        self.preempted_work: Any = None
        self.exec_ns = 0
        self.overhead_ns = 0
        self.slices = 0  # dispatches onto a core
        self.description = getattr(fn, "__name__", "thread")
        self.is_main = is_main
        # True once the kernel has committed stack/task_struct memory
        # for this thread (deferred children never commit).
        self.committed = False

    def bind(self, ctx: Any) -> Generator:
        if self.gen is None:
            gen = self.fn(ctx, *self.args)
            if not isinstance(gen, Generator):
                raise TypeError(f"thread body {self.description!r} must be a generator function")
            self.gen = gen
        return self.gen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OSThread {self.tid} {self.description} {self.state.value}>"
