"""Task Bench: parameterized dependency-graph workloads + METG.

A reproduction-side port of the Task Bench idea (Slaughter et al.;
applied to HPX by Wu et al. and Lahnor et al., see PAPERS.md): instead
of fixed applications, generate dependency graphs from a small set of
shapes (``trivial``, ``stencil_1d``, ``fft``, ``tree``, ``random``)
parameterized by width, steps, and grain size, and measure the runtime
with the **minimum effective task granularity** (METG) metric — the
smallest per-task grain at which parallel efficiency still reaches
``1 - eps``, computed from the counter framework.
"""

from repro.taskbench.graph import SHAPES, TaskGraph, build_graph, graph_checksum
from repro.taskbench.metg import MetgProbe, MetgResult, metg_sweep
from repro.taskbench.workload import TASKBENCH_PRESETS, TaskBenchBenchmark

__all__ = [
    "SHAPES",
    "TASKBENCH_PRESETS",
    "MetgProbe",
    "MetgResult",
    "TaskBenchBenchmark",
    "TaskGraph",
    "build_graph",
    "graph_checksum",
    "metg_sweep",
]
