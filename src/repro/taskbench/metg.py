"""METG(eps): minimum effective task granularity, from the counters.

The Task Bench efficiency metric (Slaughter et al.; applied to HPX by
Wu et al.): for a fixed graph on ``P`` cores, parallel efficiency at
grain ``g`` is

    efficiency(g) = ideal_work / (P x wall)
                  = (tasks x g) / (P x wall_ns)

where ``tasks`` is read from the counter framework
(``/threads{locality#0/total}/count/cumulative``, minus the driver
task) and ``wall_ns`` is the simulated makespan.  **METG(eps)** is the
smallest grain at which efficiency still reaches ``1 - eps`` — found
here by doubling until the target is met, then bisecting over integer
nanoseconds.  The simulation is fully deterministic, so the sweep is
bit-identical across repeats with the same seed.

Results lower to derived-counter samples under the HPX name grammar:
``/taskbench{locality#0/<shape>}/metg@<eps>`` for the headline number
and ``/taskbench{locality#0/<shape>}/efficiency@<grain_ns>`` for every
probe point, streamable through any telemetry sink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.inncabs.base import DEFAULT_SEED
from repro.telemetry.sample import Sample

__all__ = ["MetgProbe", "MetgResult", "metg_sweep", "TASK_COUNT_COUNTER"]

#: The counter the sweep reads its task count from.
TASK_COUNT_COUNTER = "/threads{locality#0/total}/count/cumulative"

#: Doubling past this grain declares the target unreachable (~4.4 min of
#: simulated work per task — far beyond any plausible METG).
GRAIN_CAP_NS = 1 << 38

#: Bisection stops when ``hi - lo <= hi >> REL_TOL_SHIFT`` (~1.6 %).
REL_TOL_SHIFT = 6


@dataclass(frozen=True)
class MetgProbe:
    """One efficiency measurement at one grain size."""

    grain_ns: int
    wall_ns: int
    tasks: int
    efficiency: float
    aborted: bool = False

    def to_json_dict(self) -> dict[str, Any]:
        """Plain-dict form for artifacts and fixtures."""
        return {
            "grain_ns": self.grain_ns,
            "wall_ns": self.wall_ns,
            "tasks": self.tasks,
            "efficiency": self.efficiency,
            "aborted": self.aborted,
        }


@dataclass(frozen=True)
class MetgResult:
    """Outcome of one METG sweep on one runtime."""

    shape: str
    width: int
    steps: int
    runtime: str
    cores: int
    eps: float
    seed: int
    platform: str
    #: Smallest grain (ns) reaching efficiency ``1 - eps``; ``None`` when
    #: the target is unreachable (e.g. the std model aborts on every probe).
    metg_ns: int | None
    probes: tuple[MetgProbe, ...]

    @property
    def target_efficiency(self) -> float:
        """The efficiency threshold ``1 - eps``."""
        return 1.0 - self.eps

    def to_json_dict(self) -> dict[str, Any]:
        """Deterministic JSON form (no wall-clock timestamps)."""
        return {
            "shape": self.shape,
            "width": self.width,
            "steps": self.steps,
            "runtime": self.runtime,
            "cores": self.cores,
            "eps": self.eps,
            "seed": self.seed,
            "platform": self.platform,
            "metg_ns": self.metg_ns,
            "probes": [p.to_json_dict() for p in sorted(self.probes, key=lambda p: p.grain_ns)],
        }

    def to_samples(self, run_id: str = "") -> list[Sample]:
        """Lower to derived-counter samples in the HPX name grammar.

        Probe points become ``.../efficiency@<grain_ns>`` rows
        timestamped with their own simulated makespan; the METG itself
        becomes one ``.../metg@<eps>`` row (value in ns).
        """
        instance = f"locality#0/{self.shape}"
        rid = run_id or f"taskbench/{self.runtime}/c{self.cores}"
        samples = [
            Sample(
                name=f"/taskbench{{{instance}}}/efficiency@{probe.grain_ns}",
                instance=instance,
                timestamp_ns=probe.wall_ns,
                value=round(probe.efficiency * 10000.0, 2),  # 0.01 % units
                unit="0.01%",
                run_id=rid,
            )
            for probe in sorted(self.probes, key=lambda p: p.grain_ns)
        ]
        if self.metg_ns is not None:
            samples.append(
                Sample(
                    name=f"/taskbench{{{instance}}}/metg@{self.eps:g}",
                    instance=instance,
                    timestamp_ns=max((p.wall_ns for p in self.probes), default=0),
                    value=float(self.metg_ns),
                    unit="ns",
                    run_id=rid,
                )
            )
        return samples


def _evaluate(
    session: Any,
    *,
    shape: str,
    width: int,
    steps: int,
    grain_ns: int,
    membytes: int,
    degree: float,
    seed: int,
    cores: int,
) -> MetgProbe:
    """Run the graph once at *grain_ns* and compute its efficiency."""
    from repro.workloads import WorkloadSpec

    result = session.run(
        WorkloadSpec(
            "taskbench",
            {
                "shape": shape,
                "width": width,
                "steps": steps,
                "grain_ns": grain_ns,
                "membytes": membytes,
                "degree": degree,
                "seed": seed,
            },
        ),
        counters=(TASK_COUNT_COUNTER,),
    )
    if result.aborted:
        return MetgProbe(
            grain_ns=grain_ns, wall_ns=result.exec_time_ns, tasks=0, efficiency=0.0, aborted=True
        )
    tasks = int(result.counters[TASK_COUNT_COUNTER]) - 1  # exclude the driver
    wall = result.exec_time_ns
    efficiency = (tasks * grain_ns) / (cores * wall) if wall > 0 else 0.0
    return MetgProbe(grain_ns=grain_ns, wall_ns=wall, tasks=tasks, efficiency=efficiency)


def metg_sweep(
    *,
    shape: str,
    width: int,
    steps: int,
    runtime: str = "hpx",
    cores: int,
    eps: float = 0.5,
    seed: int = DEFAULT_SEED,
    platform: Any = None,
    membytes: int = 0,
    degree: float = 3.0,
    grain_start_ns: int = 1024,
    session: Any = None,
    progress: Callable[[MetgProbe], None] | None = None,
) -> MetgResult:
    """Binary-search the smallest grain with efficiency >= ``1 - eps``.

    Doubles the grain from *grain_start_ns* until the target is met
    (declaring it unreachable past :data:`GRAIN_CAP_NS` — e.g. when
    ``width/cores`` bounds the achievable efficiency below the target,
    or the std model aborts on live-thread blow-up), then bisects the
    bracket down to a ~1.6 % relative tolerance.  All arithmetic is
    over integer nanoseconds and every probe is a deterministic
    simulation, so repeated sweeps are bit-identical.

    A pre-built ``session`` overrides ``runtime``/``cores``/``platform``
    (they must match); ``progress`` sees every probe as it lands.
    """
    from repro.platform.presets import resolve_platform

    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if grain_start_ns < 1:
        raise ValueError(f"grain_start_ns must be >= 1, got {grain_start_ns}")
    spec = resolve_platform(platform)
    if session is None:
        from repro.api import Session

        session = Session(runtime=runtime, cores=cores, platform=spec)
    target = 1.0 - eps
    probes: dict[int, MetgProbe] = {}

    def eff(grain_ns: int) -> float:
        probe = probes.get(grain_ns)
        if probe is None:
            probe = _evaluate(
                session,
                shape=shape,
                width=width,
                steps=steps,
                grain_ns=grain_ns,
                membytes=membytes,
                degree=degree,
                seed=seed,
                cores=cores,
            )
            probes[grain_ns] = probe
            if progress is not None:
                progress(probe)
        return probe.efficiency

    def result(metg_ns: int | None) -> MetgResult:
        return MetgResult(
            shape=shape,
            width=width,
            steps=steps,
            runtime=session.runtime,
            cores=cores,
            eps=eps,
            seed=seed,
            platform=spec.name,
            metg_ns=metg_ns,
            probes=tuple(probes.values()),
        )

    # Bracket the target: grow (or shrink) by doubling.
    grain = grain_start_ns
    if eff(grain) >= target:
        hi = grain
        lo = 0  # sentinel: "no failing grain found yet"
        while hi > 1:
            candidate = hi // 2
            if eff(candidate) >= target:
                hi = candidate
            else:
                lo = candidate
                break
        if lo == 0:
            return result(hi)  # efficient all the way down to 1 ns
    else:
        lo = grain
        hi = 0
        while lo < GRAIN_CAP_NS:
            candidate = lo * 2
            if eff(candidate) >= target:
                hi = candidate
                break
            lo = candidate
        if hi == 0:
            return result(None)  # target unreachable

    # Invariant: eff(lo) < target <= eff(hi).  Bisect to relative tolerance.
    while hi - lo > max(1, hi >> REL_TOL_SHIFT):
        mid = (lo + hi) // 2
        if eff(mid) >= target:
            hi = mid
        else:
            lo = mid
    return result(hi)
