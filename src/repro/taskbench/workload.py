"""The Task Bench workload: graph lowering onto the task runtimes.

The generated :class:`~repro.taskbench.graph.TaskGraph` is lowered to
real task bodies against the runtime-agnostic
:class:`~repro.model.context.TaskContext` API: a driver task spawns
one task per graph node (``ctx.async_``), each node task joins its
parents' futures (``ctx.wait_all``), burns its grain
(``ctx.compute``), and returns its mixed 64-bit value.  The same
source runs unchanged on ``HpxRuntime`` and ``StdRuntime`` through the
shared ``EffectInterpreter``/``SchedulerBackend`` path, so every
ProbeBus counter (``/threads``, idle-rate, steal counts, PAPI
bandwidth) works on it out of the box.

Note the ``std`` model spawns one kernel thread per node: wide/deep
graphs hit the same live-thread blow-up the paper reports for
``std::async`` — that is the measurement, not a bug.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.inncabs.base import Benchmark, BenchmarkInfo
from repro.model.population import CohortPlan, TaskCohort
from repro.model.work import Work
from repro.taskbench.graph import build_graph, graph_checksum, mix, node_token

__all__ = ["TASKBENCH_PRESETS", "TaskBenchBenchmark"]

#: Preset overrides in the Inncabs small/default/large convention.
#: ``paper`` is Task-Bench-at-scale (1.7x10^7 independent tasks, the
#: paper's largest population) and is only tractable in cohort mode.
TASKBENCH_PRESETS: dict[str, dict[str, Any]] = {
    "small": {"width": 8, "steps": 4},
    "large": {"width": 128, "steps": 64},
    "paper": {"shape": "trivial", "width": 4096, "steps": 4096},
}


def _node_task(ctx: Any, parents: tuple, grain_ns: int, membytes: int, token: int):
    """One graph node: join parents, burn the grain, mix the value."""
    acc = token
    if parents:
        values = yield ctx.wait_all(parents)
        for value in values:
            acc = mix(acc, value)
    yield ctx.compute(grain_ns, membytes=membytes)
    return acc


def _taskbench_root(
    ctx: Any,
    shape: str,
    width: int,
    steps: int,
    grain_ns: int,
    membytes: int,
    degree: float,
    seed: int,
):
    """The driver task: spawn every node, then fold the last row."""
    graph = build_graph(shape, width, steps, seed=seed, degree=degree)
    prev: list = []
    for t, row_width in enumerate(graph.row_widths):
        row_parents = graph.parents[t]
        cur = []
        for p in range(row_width):
            fut = yield ctx.async_(
                _node_task,
                tuple(prev[q] for q in row_parents[p]),
                grain_ns,
                membytes,
                node_token(seed, t, p),
            )
            cur.append(fut)
        prev = cur
    values = yield ctx.wait_all(prev)
    acc = 0
    for value in values:
        acc = mix(acc, value)
    return acc


class TaskBenchBenchmark(Benchmark):
    """Task Bench as a registered workload (name: ``taskbench``)."""

    info = BenchmarkInfo(
        name="taskbench",
        structure="parameterized-graph",
        synchronization="none",
        paper_task_duration_us=0.0,  # the grain is a knob, not a measurement
        paper_granularity="configurable",
        paper_scaling_std="n/a",
        paper_scaling_hpx="n/a",
        description="Task Bench parameterized dependency graph (METG workload)",
    )

    default_params = {
        "shape": "stencil_1d",
        "width": 16,
        "steps": 8,
        "grain_ns": 2000,
        "membytes": 0,
        "degree": 3.0,
    }

    def make_root(self, params: Mapping[str, Any]) -> tuple[Callable[..., Any], tuple]:
        return _taskbench_root, (
            params["shape"],
            params["width"],
            params["steps"],
            params["grain_ns"],
            params["membytes"],
            params["degree"],
            params["seed"],
        )

    def verify(self, result: Any, params: Mapping[str, Any]) -> bool:
        graph = build_graph(
            params["shape"],
            params["width"],
            params["steps"],
            seed=params["seed"],
            degree=params["degree"],
        )
        return result == graph_checksum(graph, params["seed"])

    @staticmethod
    def task_count(shape: str, width: int, steps: int) -> int:
        """Number of node tasks (driver excluded) for a configuration."""
        return build_graph(shape, width, steps).node_count

    #: Above this node count the plan skips the O(nodes) checksum walk
    #: and marks itself mean-value (``exact=False``) — at paper scale
    #: the walk would dominate the whole cohort run.
    CHECKSUM_LIMIT = 65_536

    def cohort_plan(self, params: Mapping[str, Any]) -> CohortPlan | None:
        """Cohorts for the ``trivial`` shape; ``None`` for the rest.

        Only ``trivial`` is a homogeneous population: every node is
        independent (no parents, no joins), so one driver cohort plus
        one node cohort describe the run completely.  Shapes with
        dependencies (stencil, fft, ...) have row-structured joins the
        mean-value model does not represent — they stay exact-only.
        """
        if params["shape"] != "trivial":
            return None
        width = int(params["width"])
        steps = int(params["steps"])
        grain_ns = int(params["grain_ns"])
        membytes = int(params["membytes"])
        seed = int(params["seed"])
        nodes = width * steps
        exact = nodes <= self.CHECKSUM_LIMIT
        result = None
        if exact:
            graph = build_graph(
                "trivial", width, steps, seed=seed, degree=float(params["degree"])
            )
            result = graph_checksum(graph, seed)
        cohorts = (
            TaskCohort(
                label="taskbench-driver",
                tasks=1,
                work=Work(0),
                spawns=float(nodes),
                blocking_awaits=1.0,
            ),
            TaskCohort(
                label="taskbench-nodes",
                tasks=nodes,
                work=Work(grain_ns, membytes=membytes),
                depth=1,
            ),
        )
        return CohortPlan(
            workload="taskbench",
            cohorts=cohorts,
            result=result,
            exact=exact,
            note="" if exact else f"checksum skipped above {self.CHECKSUM_LIMIT} nodes",
        )
