"""Deterministic dependency-graph generation for Task Bench.

A :class:`TaskGraph` is a layered DAG: ``steps`` timesteps, each with a
row of points, and every point in step ``t`` depending only on points
in step ``t - 1`` (acyclic by construction).  The five shapes mirror
the standard Task Bench dependence patterns:

- ``trivial``    — no edges (embarrassingly parallel);
- ``stencil_1d`` — point ``p`` depends on ``{p-1, p, p+1}``;
- ``fft``        — butterfly: ``p`` and ``p XOR 2^((t-1) mod log2 W)``
  (width must be a power of two);
- ``tree``       — fan-in reduction: the row halves every step;
- ``random``     — each point keeps its own predecessor and adds edges
  drawn from a seeded :class:`numpy.random.Generator` with expected
  in-degree ``degree``.

Every node carries a 64-bit token derived from the seed; a node's
value mixes its token with its parents' values, and the graph checksum
folds the last row — so both runtimes compute a verifiable result and
regeneration under the same seed is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.simcore.rng import derive_rng

__all__ = ["SHAPES", "TaskGraph", "build_graph", "graph_checksum", "node_token", "mix"]

SHAPES = ("trivial", "stencil_1d", "fft", "tree", "random")

_MASK = (1 << 64) - 1


def mix(a: int, b: int) -> int:
    """64-bit mixing function (splitmix64 finalizer over ``a ^ h(b)``)."""
    x = (a ^ ((b * 0x9E3779B97F4A7C15) & _MASK)) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return (x ^ (x >> 31)) & _MASK


def node_token(seed: int, step: int, point: int) -> int:
    """The 64-bit payload token of node ``(step, point)``."""
    return mix(mix(seed & _MASK, step + 1), point + 1)


def node_value(token: int, parent_values: tuple[int, ...]) -> int:
    """A node's computed value: its token folded with its parents' values."""
    acc = token
    for value in parent_values:
        acc = mix(acc, value)
    return acc


@dataclass(frozen=True)
class TaskGraph:
    """One generated dependency graph (deps fully materialized)."""

    shape: str
    width: int
    steps: int
    seed: int
    degree: float
    #: Row width per step (constant except for ``tree``).
    row_widths: tuple[int, ...]
    #: ``parents[t][p]`` — point indices in step ``t-1``; ``parents[0]`` empty.
    parents: tuple[tuple[tuple[int, ...], ...], ...]

    @property
    def node_count(self) -> int:
        """Total number of task nodes (the root/driver task excluded)."""
        return sum(self.row_widths)

    @property
    def edge_count(self) -> int:
        """Total number of dependency edges."""
        return sum(len(deps) for row in self.parents for deps in row)

    def nodes(self) -> Iterator[tuple[int, int]]:
        """Every ``(step, point)`` in deterministic row-major order."""
        for t, row_width in enumerate(self.row_widths):
            for p in range(row_width):
                yield (t, p)


def _row_parents_trivial(width: int) -> tuple[tuple[int, ...], ...]:
    return tuple(() for _ in range(width))


def _row_parents_stencil(width: int) -> tuple[tuple[int, ...], ...]:
    return tuple(tuple(q for q in (p - 1, p, p + 1) if 0 <= q < width) for p in range(width))


def _row_parents_fft(width: int, step: int) -> tuple[tuple[int, ...], ...]:
    radix = width.bit_length() - 1  # log2(width); width is a power of two
    stride = 1 << ((step - 1) % radix) if radix else 0
    out = []
    for p in range(width):
        partner = p ^ stride
        out.append((p, partner) if stride and partner < width else (p,))
    return tuple(out)


def _row_parents_tree(prev_width: int, width: int) -> tuple[tuple[int, ...], ...]:
    return tuple(tuple(q for q in (2 * p, 2 * p + 1) if q < prev_width) for p in range(width))


def build_graph(
    shape: str,
    width: int,
    steps: int,
    *,
    seed: int = 0,
    degree: float = 3.0,
) -> TaskGraph:
    """Generate the dependency graph for one Task Bench configuration.

    Only the ``random`` shape consumes randomness; its edges are drawn
    once here, in a fixed order, from ``derive_rng(seed, "taskbench",
    shape, width, steps)`` — so the same seed regenerates the same
    graph bit for bit.
    """
    if shape not in SHAPES:
        raise ValueError(f"unknown shape {shape!r}; expected one of {SHAPES}")
    if width < 1 or steps < 1:
        raise ValueError(f"width and steps must be >= 1, got width={width} steps={steps}")
    if shape == "fft" and width & (width - 1):
        raise ValueError(f"fft needs a power-of-two width, got {width}")
    if shape == "random" and not 0.0 <= degree <= width:
        raise ValueError(f"degree must be in [0, width], got {degree}")

    row_widths = [width]
    if shape == "tree":
        for _ in range(steps - 1):
            row_widths.append(max(1, (row_widths[-1] + 1) // 2))
    else:
        row_widths *= steps

    rng = derive_rng(seed, "taskbench", shape, width, steps) if shape == "random" else None

    rows: list[tuple[tuple[int, ...], ...]] = [_row_parents_trivial(width)]
    for t in range(1, steps):
        if shape == "trivial":
            rows.append(_row_parents_trivial(width))
        elif shape == "stencil_1d":
            rows.append(_row_parents_stencil(width))
        elif shape == "fft":
            rows.append(_row_parents_fft(width, t))
        elif shape == "tree":
            rows.append(_row_parents_tree(row_widths[t - 1], row_widths[t]))
        else:  # random
            assert rng is not None
            row = []
            for p in range(width):
                draws = rng.random(width)
                extra = tuple(q for q in range(width) if q != p and draws[q] * width < degree)
                row.append((p, *extra))
            rows.append(tuple(row))

    return TaskGraph(
        shape=shape,
        width=width,
        steps=steps,
        seed=seed,
        degree=degree,
        row_widths=tuple(row_widths),
        parents=tuple(rows),
    )


def graph_checksum(graph: TaskGraph, seed: int) -> int:
    """Sequential reference computation of the graph's final checksum.

    Computes every node value row by row and folds the last row — the
    value the task-parallel execution must reproduce on either runtime.
    """
    prev: list[int] = []
    for t, row_width in enumerate(graph.row_widths):
        cur = [
            node_value(
                node_token(seed, t, p),
                tuple(prev[q] for q in graph.parents[t][p]),
            )
            for p in range(row_width)
        ]
        prev = cur
    acc = 0
    for value in prev:
        acc = mix(acc, value)
    return acc
