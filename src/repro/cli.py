"""Command-line interface.

Mirrors the convenience layer the paper describes ("all HPX
applications provide command line options related to performance
counters, such as the ability to list available counter types, or
periodically query specific counters"):

- ``repro list-benchmarks`` — the Inncabs suite;
- ``repro list-counters [--pattern ...]`` — counter-type discovery;
- ``repro run BENCH --runtime hpx --cores 8 --print-counter NAME ...``
  — one run with counters printed CSV-style;
- ``repro table1`` / ``repro table5`` — regenerate the paper's tables;
- ``repro figure fig5`` — regenerate one figure's series.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.counters.base import CounterEnvironment
from repro.counters.manager import format_counter_values
from repro.counters.registry import build_default_registry
from repro.experiments.config import DEFAULT_COUNTERS, ExperimentConfig
from repro.experiments.figures import (
    BANDWIDTH_FIGURES,
    EXEC_TIME_FIGURES,
    OVERHEAD_FIGURES,
    bandwidth_figure,
    execution_time_figure,
    overhead_figure,
)
from repro.experiments.runner import run_benchmark
from repro.experiments.tables import table1, table5
from repro.experiments.report import (
    render_bandwidth_figure,
    render_execution_time_figure,
    render_overhead_figure,
    render_table1,
    render_table5,
)
from repro.inncabs.suite import available_benchmarks, get_benchmark
from repro.papi.hw import PapiSubstrate
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine


def _parse_params(pairs: Sequence[str]) -> dict[str, Any]:
    params: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        try:
            params[key] = int(value)
        except ValueError:
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return params


def cmd_list_benchmarks(_args: argparse.Namespace) -> int:
    for name in available_benchmarks():
        info = get_benchmark(name).info
        print(
            f"{name:11s} {info.structure:21s} {info.paper_granularity:18s} {info.description}"
        )
    return 0


def cmd_list_counters(args: argparse.Namespace) -> int:
    engine = Engine()
    machine = Machine()
    runtime = HpxRuntime(engine, machine, num_workers=args.cores)
    env = CounterEnvironment(
        engine=engine, runtime=runtime, machine=machine, papi=PapiSubstrate(machine)
    )
    registry = build_default_registry(env)
    for entry in registry.counter_types(args.pattern):
        info = entry.info
        unit = f" [{info.unit}]" if info.unit else ""
        print(f"{info.type_name:55s} {info.counter_type.value:25s}{unit}")
        if args.verbose:
            print(f"    {info.help_text}")
            for inst_name, inst_index in entry.instances(registry.env):
                suffix = "" if inst_index is None else f"#{inst_index}"
                object_name, counter = info.type_name[1:].split("/", 1)
                print(
                    f"      /{object_name}{{locality#0/{inst_name}{suffix}}}/{counter}"
                )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.inncabs.presets import preset_params

    from repro.counters.manager import format_counter_values

    specs = tuple(args.print_counter) if args.print_counter else DEFAULT_COUNTERS
    params = preset_params(args.benchmark, args.preset)
    params.update(_parse_params(args.param))
    destination = None
    sink = None
    if args.print_counter_interval is not None:
        if args.print_counter_destination:
            destination = open(args.print_counter_destination, "w")
            sink = lambda rows: print(format_counter_values(rows), file=destination)
        else:
            sink = lambda rows: print(format_counter_values(rows))
    try:
        result = run_benchmark(
            args.benchmark,
            runtime=args.runtime,
            cores=args.cores,
            params=params,
            counter_specs=specs if args.runtime == "hpx" else None,
            collect_counters=not args.no_counters,
            query_interval_ns=(
                None
                if args.print_counter_interval is None
                else round(args.print_counter_interval * 1e6)
            ),
            query_sink=sink,
        )
    finally:
        if destination is not None:
            destination.close()
    if result.aborted:
        print(f"{args.benchmark} [{args.runtime}, {args.cores} cores]: ABORT")
        print(f"  {result.abort_reason}")
        return 1
    print(
        f"{args.benchmark} [{args.runtime}, {args.cores} cores]: "
        f"{result.exec_time_ms:.3f} ms, {result.tasks_executed} tasks, "
        f"verified={result.verified}"
    )
    if result.counters:
        print("counter,count,time,value")
        for name, value in result.counters.items():
            print(f"{name},1,{result.exec_time_ns},{value:g}")
    return 0 if result.verified else 1


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    kwargs: dict[str, Any] = {}
    if getattr(args, "samples", None):
        kwargs["samples"] = args.samples
    if getattr(args, "cores_list", None):
        kwargs["core_counts"] = tuple(int(c) for c in args.cores_list.split(","))
    return ExperimentConfig(**kwargs)


def cmd_table1(args: argparse.Namespace) -> int:
    rows = table1(benchmarks=args.benchmarks or None, cores=args.cores)
    print(render_table1(rows))
    return 0


def cmd_table5(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    rows = table5(benchmarks=args.benchmarks or None, config=config)
    print(render_table5(rows))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    fig = args.figure.lower()
    if fig in EXEC_TIME_FIGURES:
        print(render_execution_time_figure(execution_time_figure(fig, config=config)))
    elif fig in OVERHEAD_FIGURES:
        print(render_overhead_figure(overhead_figure(fig, config=config)))
    elif fig in BANDWIDTH_FIGURES:
        print(render_bandwidth_figure(bandwidth_figure(fig, config=config)))
    else:
        known = sorted({**EXEC_TIME_FIGURES, **OVERHEAD_FIGURES, **BANDWIDTH_FIGURES})
        raise SystemExit(f"unknown figure {args.figure!r}; known: {', '.join(known)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Using Intrinsic Performance Counters to "
        "Assess Efficiency in Task-based Parallel Applications'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-benchmarks", help="list the Inncabs suite")
    p.set_defaults(fn=cmd_list_benchmarks)

    p = sub.add_parser("list-counters", help="list available counter types")
    p.add_argument("--pattern", default=None, help="glob over type names")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--verbose", action="store_true", help="show help text and instances")
    p.set_defaults(fn=cmd_list_counters)

    p = sub.add_parser("run", help="run one benchmark")
    p.add_argument("benchmark", choices=available_benchmarks())
    p.add_argument("--runtime", choices=("hpx", "std"), default="hpx")
    p.add_argument("--cores", type=int, default=1)
    p.add_argument(
        "--print-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="counter to collect (repeatable); default: the paper's set",
    )
    p.add_argument("--no-counters", action="store_true", help="disable instrumentation")
    p.add_argument(
        "--print-counter-interval",
        type=float,
        default=None,
        metavar="MS",
        help="sample the counters every MS of simulated time, in-band "
        "(the --hpx:print-counter-interval convenience layer)",
    )
    p.add_argument(
        "--print-counter-destination",
        default=None,
        metavar="FILE",
        help="write interval samples to FILE instead of stdout",
    )
    p.add_argument("--param", action="append", default=[], metavar="KEY=VALUE")
    p.add_argument(
        "--preset",
        choices=("small", "default", "large"),
        default="default",
        help="input set (Inncabs-style); --param overrides on top",
    )
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("table1", help="regenerate Table I (external tools)")
    p.add_argument("--benchmarks", nargs="*", default=None)
    p.add_argument("--cores", type=int, default=20)
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("table5", help="regenerate Table V (classification)")
    p.add_argument("--benchmarks", nargs="*", default=None)
    p.add_argument("--samples", type=int, default=None)
    p.add_argument("--cores-list", default=None, help="comma-separated core counts")
    p.set_defaults(fn=cmd_table5)

    p = sub.add_parser("figure", help="regenerate one figure's series")
    p.add_argument("figure", help="fig1..fig14")
    p.add_argument("--samples", type=int, default=None)
    p.add_argument("--cores-list", default=None, help="comma-separated core counts")
    p.set_defaults(fn=cmd_figure)

    p = sub.add_parser(
        "generate", help="regenerate every table and figure into a directory"
    )
    p.add_argument("outdir", nargs="?", default="results")
    p.add_argument("--samples", type=int, default=1)
    p.set_defaults(fn=cmd_generate)

    return parser


def cmd_generate(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.generate import generate_all

    generate_all(Path(args.outdir), samples=args.samples)
    print(f"wrote results to {args.outdir}/")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
