"""Command-line interface.

Mirrors the convenience layer the paper describes ("all HPX
applications provide command line options related to performance
counters, such as the ability to list available counter types, or
periodically query specific counters"):

- ``repro list-benchmarks`` — the Inncabs suite;
- ``repro list-counters [--pattern ...]`` — counter-type discovery;
- ``repro counters list|query`` — the telemetry front door: list the
  counter types, or run a benchmark and stream every sample (wildcards
  expanded) as CSV or JSON lines;
- ``repro run BENCH --runtime hpx --cores 8 --print-counter NAME ...``
  — one run with counters printed CSV-style;
- ``repro workloads list|show`` — the unified workload registry
  (Inncabs and Task Bench alike, with defaults and presets);
- ``repro taskbench --shape stencil_1d --width 64 --steps 32`` — the
  METG(eps) sweep over a parameterized dependency graph;
- ``repro table1`` / ``repro table5`` — regenerate the paper's tables;
- ``repro figure fig5`` — regenerate one figure's series.

``repro run``, ``repro campaign`` and ``repro taskbench`` share one
``--workload NAME[:key=val,...]`` / ``--platform`` / ``--seed`` option
group (see :func:`_add_workload_options`).

Campaign layer (the parallel experiment engine):

- ``repro campaign --benchmarks fib sort --cores-list 1,2,4 --jobs 8``
  — run a (benchmark, runtime, cores, seed) matrix over a process
  pool with content-addressed caching, writing a versioned JSON
  artifact under ``results/campaigns/``;
- ``repro compare BASELINE CURRENT --threshold 0.10`` — diff two
  artifacts and exit non-zero on regression (the CI gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.counters.base import CounterEnvironment
from repro.counters.manager import format_counter_values
from repro.experiments.config import DEFAULT_COUNTERS, ExperimentConfig
from repro.experiments.figures import (
    BANDWIDTH_FIGURES,
    EXEC_TIME_FIGURES,
    OVERHEAD_FIGURES,
    bandwidth_figure,
    execution_time_figure,
    overhead_figure,
)
from repro.api import Session
from repro.exec.modes import EXECUTION_MODES, CohortIneligibleError
from repro.experiments.tables import table1, table5
from repro.experiments.report import (
    render_bandwidth_figure,
    render_execution_time_figure,
    render_overhead_figure,
    render_table1,
    render_table5,
)
from repro.inncabs.suite import available_benchmarks, get_benchmark
from repro.papi.hw import PapiSubstrate
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine


def _parse_params(pairs: Sequence[str]) -> dict[str, Any]:
    params: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        try:
            params[key] = int(value)
        except ValueError:
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return params


def _add_workload_options(
    parser: argparse.ArgumentParser,
    *,
    workload: bool = True,
    seed_default: int | None = 20160523,
) -> None:
    """The shared ``--workload`` / ``--platform`` / ``--seed`` option group.

    ``repro run``, ``repro campaign`` and ``repro taskbench`` all pull
    their workload-selection surface from here so the spellings stay
    identical across subcommands.
    """
    if workload:
        parser.add_argument(
            "--workload",
            default=None,
            metavar="NAME[:key=val,...]",
            help="workload spec in canonical form, e.g. taskbench:shape=fft,width=8 "
            "(see 'repro workloads list')",
        )
    parser.add_argument(
        "--platform",
        default=None,
        metavar="NAME|FILE",
        help="simulated node: preset name or platform file (default: ivybridge-2x10)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=seed_default,
        help="root seed (default: the paper's 20160523)",
    )
    parser.add_argument(
        "--mode",
        choices=EXECUTION_MODES,
        default=None,
        help="execution mode: 'exact' replays every task event, 'cohort' advances "
        "homogeneous task populations analytically (default: exact)",
    )


def _resolve_cli_workload(args: argparse.Namespace) -> "Any":
    """Build the WorkloadSpec a ``repro run``-style invocation names.

    Exactly one of the positional ``benchmark`` and ``--workload`` must
    be given.  Overlay order matches campaigns: preset < ``--param`` <
    parameters embedded in the workload spec < ``--seed`` / ``--mode``.
    """
    from repro.workloads import WorkloadSpec, workload_preset_params

    named = [text for text in (getattr(args, "benchmark", None), args.workload) if text]
    if len(named) != 1:
        raise SystemExit("name exactly one workload (positional BENCHMARK or --workload)")
    try:
        workload = WorkloadSpec.parse(named[0])
        params = workload_preset_params(workload.name, getattr(args, "preset", "default"))
    except (ValueError, KeyError) as exc:
        raise SystemExit(f"error: {exc.args[0] if exc.args else exc}")
    params.update(_parse_params(getattr(args, "param", [])))
    params.update(workload.params)
    if args.seed is not None:
        params["seed"] = args.seed
    if getattr(args, "mode", None) is not None:
        params["mode"] = args.mode
    return WorkloadSpec(workload.name, params)


def cmd_list_benchmarks(_args: argparse.Namespace) -> int:
    for name in available_benchmarks():
        info = get_benchmark(name).info
        print(f"{name:11s} {info.structure:21s} {info.paper_granularity:18s} {info.description}")
    return 0


def cmd_list_counters(args: argparse.Namespace) -> int:
    import fnmatch

    from repro.counters.providers import build_registry
    from repro.platform.presets import resolve_platform
    from repro.workloads import WorkloadSpec

    workload_name = None
    if getattr(args, "workload", None):
        try:
            workload = WorkloadSpec.parse(args.workload)
            workload.validate()
        except (ValueError, KeyError) as exc:
            print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
            return 2
        workload_name = workload.name
    try:
        platform = resolve_platform(args.platform)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Cores follow the named platform's full shape unless given
    # explicitly; the bare invocation keeps its historical 4 workers.
    cores = args.cores if args.cores is not None else (platform.total_cores if args.platform else 4)
    engine = Engine()
    machine = Machine(platform)
    runtime = HpxRuntime(engine, machine, num_workers=cores)
    env = CounterEnvironment(
        engine=engine, runtime=runtime, machine=machine, papi=PapiSubstrate(machine)
    )
    registry = build_registry(env, workload=workload_name)
    provider_filters = list(getattr(args, "providers", None) or [])
    matched = 0
    available_providers: set[str] = set()
    for entry in registry.counter_types(args.pattern):
        info = entry.info
        provider = registry.provider_of(info.type_name) or "builtin"
        available_providers.add(provider)
        if provider_filters and not any(
            fnmatch.fnmatch(provider, pat) for pat in provider_filters
        ):
            continue
        matched += 1
        unit = f" [{info.unit}]" if info.unit else ""
        print(f"{info.type_name:55s} {info.counter_type.value:25s} {provider:18s}{unit}")
        if args.verbose:
            print(f"    {info.help_text}")
            for inst_name, inst_index in entry.instances(registry.env):
                suffix = "" if inst_index is None else f"#{inst_index}"
                object_name, counter = info.type_name[1:].split("/", 1)
                print(f"      /{object_name}{{locality#0/{inst_name}{suffix}}}/{counter}")
    if provider_filters and not matched:
        patterns = ", ".join(provider_filters)
        names = ", ".join(sorted(available_providers)) or "none"
        print(
            f"no providers matched {patterns!r}; available providers: {names}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_counters_query(args: argparse.Namespace) -> int:
    from repro.telemetry import CsvSink, JsonLinesSink, TelemetryConfig
    from repro.workloads import WorkloadSpec, workload_preset_params

    try:
        workload = WorkloadSpec.parse(args.benchmark)
        params = workload_preset_params(workload.name, args.preset)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    params.update(_parse_params(args.param))
    params.update(workload.params)
    if getattr(args, "mode", None) is not None:
        params["mode"] = args.mode
    specs = tuple(args.specs) if args.specs else DEFAULT_COUNTERS
    # A path destination is owned by the sink (the pipeline closes it
    # when the run finishes); stdout is borrowed and only flushed.
    dest: Any = args.out if args.out else sys.stdout
    sink = (CsvSink if args.format == "csv" else JsonLinesSink)(dest)
    session = Session(runtime=args.runtime, cores=args.cores, platform=args.platform)
    try:
        result = session.run(
            WorkloadSpec(workload.name, params),
            telemetry=TelemetryConfig(
                counters=specs,
                interval_ns=None if args.interval is None else round(args.interval * 1e6),
                sinks=(sink,),
            ),
        )
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.aborted:
        print(f"{args.benchmark} [{args.runtime}]: ABORT: {result.abort_reason}", file=sys.stderr)
        return 1
    frame = result.telemetry
    print(
        f"{args.benchmark} [{args.runtime}, {args.cores} cores]: "
        f"{result.exec_time_ms:.3f} ms, {len(frame)} samples over "
        f"{len(frame.names())} counters"
        + (f" -> {args.out}" if args.out else ""),
        file=sys.stderr,
    )
    return 0 if result.verified else 1


def cmd_platform_list(_args: argparse.Namespace) -> int:
    from repro.platform import DEFAULT_PLATFORM, get_platform, platform_names

    for name in platform_names():
        spec = get_platform(name)
        marker = "*" if name == DEFAULT_PLATFORM else " "
        shape = "+".join(str(sock.cores) for sock in spec.sockets)
        freqs = sorted({sock.freq_ghz for sock in spec.sockets})
        freq = "/".join(f"{f:g}" for f in freqs)
        print(
            f"{marker} {name:16s} {spec.num_sockets} socket(s) x [{shape}] cores "
            f"@ {freq} GHz, {spec.ram_bytes / 1024**3:.0f} GiB"
        )
    print("\n(* = default; any entry works with --platform, as does a .toml/.json file)")
    return 0


def cmd_platform_show(args: argparse.Namespace) -> int:
    from repro.platform import PlatformError, resolve_platform
    from repro.simcore.topology import Topology

    try:
        spec = resolve_platform(args.name)
    except (PlatformError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(spec.describe())
    topology = Topology(spec)
    print("\ntopology:")
    print(f"machine ({spec.ram_bytes / 1024**3:.0f} GiB RAM)")
    for s, sock in enumerate(spec.sockets):
        print(f"  socket#{s} ({sock.cores} cores, L3 {sock.l3_bytes / 1024**2:.0f} MB)")
        for core in spec.core_range(s):
            print(f"    {topology.describe_core(core)}  (global core#{core})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.counters.manager import format_counter_values

    specs = tuple(args.print_counter) if args.print_counter else DEFAULT_COUNTERS
    workload = _resolve_cli_workload(args)
    destination = None
    sink = None
    if args.print_counter_interval is not None:
        if args.print_counter_destination:
            destination = open(args.print_counter_destination, "w")

        def sink(rows, _dest=destination):
            print(format_counter_values(rows), file=_dest)
    try:
        session = Session(runtime=args.runtime, cores=args.cores, platform=args.platform)
        result = session.run(
            workload,
            counters=specs if args.runtime == "hpx" else None,
            collect_counters=not args.no_counters,
            query_interval_ns=(
                None
                if args.print_counter_interval is None
                else round(args.print_counter_interval * 1e6)
            ),
            query_sink=sink,
        )
    except CohortIneligibleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if destination is not None:
            destination.close()
    if result.aborted:
        print(f"{workload.name} [{args.runtime}, {args.cores} cores]: ABORT")
        print(f"  {result.abort_reason}")
        return 1
    print(
        f"{workload.name} [{args.runtime}, {args.cores} cores]: "
        f"{result.exec_time_ms:.3f} ms, {result.tasks_executed} tasks, "
        f"verified={result.verified}"
    )
    if result.counters:
        print("counter,count,time,value")
        for name, value in result.counters.items():
            print(f"{name},1,{result.exec_time_ns},{value:g}")
    return 0 if result.verified else 1


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.profiler import ProfileConfig, parse_what_if

    workload = _resolve_cli_workload(args)
    try:
        what_if = tuple(parse_what_if(text) for text in args.what_if)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    keep_events = args.chrome_out is not None
    session = Session(runtime=args.runtime, cores=args.cores, platform=args.platform)
    try:
        result = session.run(
            workload,
            collect_counters=args.counters,
            profile=ProfileConfig(what_if=what_if, keep_events=keep_events),
        )
    except (CohortIneligibleError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    profile = result.profile
    if result.aborted:
        print(f"{workload.name} [{args.runtime}, {args.cores} cores]: ABORT")
        print(f"  {result.abort_reason}")
        if profile is not None:
            print()
            print(profile.render(top=args.top))
        return 1
    print(profile.render(top=args.top))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(profile.to_json_dict(include_series=True), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    if args.chrome_out:
        from repro.telemetry.sample import Sample
        from repro.trace.export import to_chrome_trace

        # The parallelism waterfall rides along as a counter track.
        series = [
            Sample(
                name="/profiler{locality#0/total}/logical-parallelism",
                instance="locality#0/total",
                timestamp_ns=p.time_ns,
                value=p.active,
                run_id=profile.workload,
            )
            for p in profile.parallelism.points
        ]
        with open(args.chrome_out, "w") as fh:
            fh.write(to_chrome_trace(list(profile.events or ()), telemetry=series))
            fh.write("\n")
        print(f"wrote {args.chrome_out}")
    return 0 if result.verified else 1


def cmd_workloads_list(_args: argparse.Namespace) -> int:
    from repro.workloads import available_workloads, get_workload

    for name in available_workloads():
        entry = get_workload(name)
        presets = ",".join(["default", *sorted(entry.presets)])
        print(f"{name:11s} {entry.family:9s} presets={presets:21s} {entry.description}")
    return 0


def cmd_workloads_show(args: argparse.Namespace) -> int:
    from repro.workloads import get_workload

    try:
        entry = get_workload(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    info = entry.benchmark.info
    print(f"{entry.name} ({entry.family}): {entry.description}")
    print(f"  structure: {info.structure}, synchronization: {info.synchronization}")
    print("  defaults:")
    for key, value in entry.benchmark.default_params.items():
        print(f"    {key} = {value!r}")
    for preset in sorted(entry.presets):
        overrides = ", ".join(f"{k}={v!r}" for k, v in entry.presets[preset].items())
        print(f"  preset {preset}: {overrides}")
    example = ":key=val,..." if entry.benchmark.default_params else ""
    print(f"  spec example: {entry.name}{example}")
    return 0


def cmd_taskbench(args: argparse.Namespace) -> int:
    from repro.inncabs.base import DEFAULT_SEED
    from repro.platform import resolve_platform
    from repro.taskbench import metg_sweep

    if getattr(args, "mode", None) == "cohort":
        print(
            "error: the METG sweep probes scheduling efficiency per grain and "
            "only runs in exact mode",
            file=sys.stderr,
        )
        return 2
    platform = resolve_platform(args.platform)
    cores = args.cores if args.cores else platform.total_cores
    seed = args.seed if args.seed is not None else DEFAULT_SEED
    runtimes = ("hpx", "std") if args.runtime == "both" else (args.runtime,)
    results = []
    for runtime in runtimes:

        def progress(probe, _rt=runtime):
            if args.verbose:
                state = "ABORT" if probe.aborted else f"eff={probe.efficiency:.4f}"
                print(f"  {_rt} grain={probe.grain_ns} ns: {state}", file=sys.stderr)

        result = metg_sweep(
            shape=args.shape,
            width=args.width,
            steps=args.steps,
            runtime=runtime,
            cores=cores,
            eps=args.eps,
            seed=seed,
            platform=platform,
            membytes=args.membytes,
            degree=args.degree,
            progress=progress,
        )
        results.append(result)
        metg = "unreachable" if result.metg_ns is None else f"{result.metg_ns} ns"
        print(
            f"taskbench {args.shape} width={args.width} steps={args.steps} "
            f"[{runtime}, {cores} cores, {platform.name}]: "
            f"METG({args.eps:g}) = {metg} ({len(result.probes)} probes)"
        )
    if args.out:
        payload = {"results": [r.to_json_dict() for r in results]}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.samples_out:
        from repro.telemetry import JsonLinesSink

        sink = JsonLinesSink(args.samples_out)
        for result in results:
            for sample in result.to_samples():
                sink.emit(sample)
        sink.close()
        print(f"wrote {args.samples_out}")
    return 0 if all(r.metg_ns is not None for r in results) else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.serve.quotas import QuotaConfig
    from repro.serve.server import ServerConfig, serve_forever

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        quota=QuotaConfig(rate=args.quota_rate, burst=args.quota_burst),
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        no_cache=args.no_cache,
    )

    def announce(server):  # the bound port matters with --port 0
        cache = "off" if config.no_cache else str(server.cache.root)
        print(
            f"serving on {config.host}:{server.port} "
            f"({config.workers} workers, queue {config.max_queue}, cache {cache})",
            flush=True,
        )

    try:
        asyncio.run(serve_forever(config, ready=announce))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _cores_list(text: str) -> tuple[int, ...]:
    """argparse type for ``--cores-list``: "1,2,4" -> (1, 2, 4)."""
    try:
        cores = tuple(int(c) for c in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")
    if not cores or any(c < 1 for c in cores):
        raise argparse.ArgumentTypeError(f"core counts must be positive, got {text!r}")
    return cores


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    kwargs: dict[str, Any] = {}
    if getattr(args, "samples", None):
        kwargs["samples"] = args.samples
    if getattr(args, "cores_list", None):
        kwargs["core_counts"] = args.cores_list
    return ExperimentConfig(**kwargs)


def cmd_campaign(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.campaign.cache import ResultCache
    from repro.campaign.engine import run_campaign
    from repro.campaign.spec import CampaignSpec
    from repro.experiments.config import QUICK_CORE_COUNTS
    from repro.platform import resolve_platform

    core_counts = args.cores_list if args.cores_list else QUICK_CORE_COUNTS
    workloads = tuple(args.benchmarks or []) + tuple(args.workloads or [])
    if not workloads:
        workloads = tuple(available_benchmarks())
    params = _parse_params(args.param)
    if getattr(args, "mode", None) is not None:
        params["mode"] = args.mode
    try:
        spec = CampaignSpec(
            benchmarks=workloads,
            runtimes=tuple(args.runtimes),
            core_counts=core_counts,
            samples=args.samples,
            seed=args.seed,
            preset=args.preset,
            params=params,
            platform=resolve_platform(args.platform),
            collect_counters=not args.no_counters,
            profile=args.profile,
        )
    except (ValueError, KeyError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache = ResultCache(Path(args.cache_dir)) if args.cache_dir else ResultCache.default()
    progress = None
    if args.verbose:
        total = sum(1 for _ in spec.cells())
        seen = [0]

        def show_progress(cell, result, from_cache):
            seen[0] += 1
            source = "cache" if from_cache else "run"
            state = "ABORT" if result["aborted"] else f"{result['exec_time_ns'] / 1e6:.3f} ms"
            print(f"[{seen[0]}/{total}] {cell.label()}: {state} ({source})", file=sys.stderr)

        progress = show_progress

    run = run_campaign(spec, jobs=args.jobs, cache=cache, progress=progress)
    out = Path(args.out) if args.out else Path("results/campaigns") / f"{spec.spec_id()}.json"
    run.artifact.save(out)
    s = run.stats
    print(
        f"campaign {spec.spec_id()}: {s.total} cells | cache hits {s.cache_hits} "
        f"({s.hit_rate:.0%}) | executed {s.executed} | aborted {s.aborted}"
    )
    print(f"wrote {out}")
    return 0


def cmd_bench_core(args: argparse.Namespace) -> int:
    from repro.experiments.bench_core import compare_to_baseline, render, run_bench_core

    result = run_bench_core(
        args.mode,
        names=args.runs or None,
        repeat=args.repeat,
        platform=args.platform,
        progress=lambda line: print(f"running {line}", file=sys.stderr),
    )
    print(render(result))
    if args.out:
        result.save(args.out)
        print(f"\nwrote {args.out}")
    status = 0
    if not result.deterministic:
        print("\nFAIL: engines disagree on simulated results", file=sys.stderr)
        status = 1
    if args.baseline:
        try:
            baseline = json.loads(open(args.baseline).read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        failures = compare_to_baseline(result.to_dict(), baseline, threshold=args.threshold)
        if failures:
            print(f"\nFAIL: events/sec regression vs {args.baseline}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"\ngate OK vs {args.baseline} (threshold {args.threshold:.0%})")
    return status


def cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.experiments.bench_serve import compare_to_baseline, render, run_bench_serve

    result = run_bench_serve(
        args.mode,
        clients=args.clients,
        runs=args.runs,
        workers=args.workers,
        cache_dir=args.cache_dir,
        progress=lambda line: print(line, file=sys.stderr),
    )
    payload = result.to_dict()
    print(render(payload))
    if args.out:
        result.save(args.out)
        print(f"\nwrote {args.out}")
    status = 0
    if args.baseline:
        try:
            baseline = json.loads(open(args.baseline).read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        failures = compare_to_baseline(payload, baseline, threshold=args.threshold)
        if failures:
            print(f"\nFAIL: serve load regression vs {args.baseline}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"\ngate OK vs {args.baseline} (threshold x{args.threshold:g})")
    return status


def _compare_bench_core(args: argparse.Namespace) -> int:
    """``repro compare`` on two BENCH_core.json artifacts."""
    from repro.experiments.bench_core import compare_to_baseline

    baseline = json.loads(open(args.baseline).read())
    current = json.loads(open(args.current).read())
    failures = compare_to_baseline(current, baseline, threshold=args.threshold)
    if failures:
        print("bench-core regression:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"bench-core gate OK (threshold {args.threshold:.0%})")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.campaign.artifact import CampaignArtifact
    from repro.campaign.compare import CompareThresholds, compare_artifacts, render_compare
    from repro.experiments.bench_core import is_bench_core_payload

    try:
        with open(args.baseline) as fh:
            if is_bench_core_payload(json.load(fh)):
                return _compare_bench_core(args)
        baseline = CampaignArtifact.load(args.baseline)
        current = CampaignArtifact.load(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: cannot load artifact: {exc}", file=sys.stderr)
        return 2
    thresholds = CompareThresholds(exec_time=args.threshold, counters=args.counter_threshold)
    report = compare_artifacts(baseline, current, thresholds)
    print(render_compare(report, only_failures=args.only_failures))
    return report.exit_code()


def cmd_table1(args: argparse.Namespace) -> int:
    rows = table1(benchmarks=args.benchmarks or None, cores=args.cores)
    print(render_table1(rows))
    return 0


def cmd_table5(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    rows = table5(benchmarks=args.benchmarks or None, config=config, jobs=args.jobs)
    print(render_table5(rows))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    artifact = None
    if args.artifact is not None:
        from repro.campaign.artifact import CampaignArtifact

        artifact = CampaignArtifact.load(args.artifact)
    kwargs: dict[str, Any] = {"config": config, "artifact": artifact, "jobs": args.jobs}
    fig = args.figure.lower()
    if fig in EXEC_TIME_FIGURES:
        print(render_execution_time_figure(execution_time_figure(fig, **kwargs)))
    elif fig in OVERHEAD_FIGURES:
        print(render_overhead_figure(overhead_figure(fig, **kwargs)))
    elif fig in BANDWIDTH_FIGURES:
        print(render_bandwidth_figure(bandwidth_figure(fig, **kwargs)))
    else:
        known = sorted({**EXEC_TIME_FIGURES, **OVERHEAD_FIGURES, **BANDWIDTH_FIGURES})
        raise SystemExit(f"unknown figure {args.figure!r}; known: {', '.join(known)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Using Intrinsic Performance Counters to "
        "Assess Efficiency in Task-based Parallel Applications'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-benchmarks", help="list the Inncabs suite")
    p.set_defaults(fn=cmd_list_benchmarks)

    def add_list_counters_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--pattern", default=None, help="glob over type names")
        parser.add_argument(
            "--cores",
            type=int,
            default=None,
            help="worker count the instance lists reflect "
            "(default: 4, or the named --platform's full core count)",
        )
        parser.add_argument("--verbose", action="store_true", help="show help text and instances")
        parser.add_argument(
            "--workload",
            default=None,
            metavar="NAME[:key=val,...]",
            help="also list the counter types this workload's own providers add",
        )
        parser.add_argument(
            "--platform",
            default=None,
            metavar="NAME|FILE",
            help="simulated node: preset name or platform file (default: ivybridge-2x10)",
        )
        parser.add_argument(
            "--providers",
            action="append",
            default=None,
            metavar="GLOB",
            help="only show counter types from matching providers "
            "(repeatable; e.g. --providers 'builtin.*' --providers fmm)",
        )
        parser.set_defaults(fn=cmd_list_counters)

    p = sub.add_parser("list-counters", help="list available counter types")
    add_list_counters_options(p)

    p = sub.add_parser("counters", help="telemetry front door: list counter types, stream samples")
    counters_sub = p.add_subparsers(dest="counters_command", required=True)
    pc = counters_sub.add_parser("list", help="list available counter types")
    add_list_counters_options(pc)
    pc = counters_sub.add_parser(
        "query", help="run a benchmark and stream every counter sample (CSV or JSON lines)"
    )
    pc.add_argument(
        "specs",
        nargs="*",
        metavar="COUNTER",
        help="counter-name specs; '#*' wildcards are expanded at discovery "
        "(default: the paper's counter set)",
    )
    pc.add_argument(
        "--benchmark",
        default="fib",
        metavar="WORKLOAD",
        help="workload name or NAME:key=val,... spec (see 'repro workloads list')",
    )
    pc.add_argument("--runtime", choices=("hpx", "std"), default="hpx")
    pc.add_argument("--cores", type=int, default=4)
    pc.add_argument(
        "--platform",
        default=None,
        metavar="NAME|FILE",
        help="simulated node: preset name or platform file (default: ivybridge-2x10)",
    )
    pc.add_argument("--preset", choices=("small", "default", "large", "paper"), default="default")
    pc.add_argument("--param", action="append", default=[], metavar="KEY=VALUE")
    pc.add_argument(
        "--mode",
        choices=EXECUTION_MODES,
        default=None,
        help="execution mode: 'exact' replays every task event, 'cohort' advances "
        "homogeneous task populations analytically (default: exact)",
    )
    pc.add_argument(
        "--interval",
        type=float,
        default=None,
        metavar="MS",
        help="also sample every MS of simulated time, in-band "
        "(default: one evaluation at termination)",
    )
    pc.add_argument("--format", choices=("csv", "jsonl"), default="csv")
    pc.add_argument(
        "--out", default=None, metavar="FILE", help="write the stream to FILE (default: stdout)"
    )
    pc.set_defaults(fn=cmd_counters_query)

    p = sub.add_parser("platform", help="inspect the available platform presets")
    platform_sub = p.add_subparsers(dest="platform_command", required=True)
    pp = platform_sub.add_parser("list", help="list platform presets")
    pp.set_defaults(fn=cmd_platform_list)
    pp = platform_sub.add_parser("show", help="hwloc-style description of one platform")
    pp.add_argument("name", help="preset name or path to a .toml/.json platform file")
    pp.set_defaults(fn=cmd_platform_show)

    p = sub.add_parser("run", help="run one workload")
    p.add_argument(
        "benchmark",
        nargs="?",
        default=None,
        metavar="WORKLOAD",
        help="workload name or NAME:key=val,... spec (or use --workload)",
    )
    p.add_argument("--runtime", choices=("hpx", "std"), default="hpx")
    p.add_argument("--cores", type=int, default=1)
    _add_workload_options(p, seed_default=None)
    p.add_argument(
        "--print-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="counter to collect (repeatable); default: the paper's set",
    )
    p.add_argument("--no-counters", action="store_true", help="disable instrumentation")
    p.add_argument(
        "--print-counter-interval",
        type=float,
        default=None,
        metavar="MS",
        help="sample the counters every MS of simulated time, in-band "
        "(the --hpx:print-counter-interval convenience layer)",
    )
    p.add_argument(
        "--print-counter-destination",
        default=None,
        metavar="FILE",
        help="write interval samples to FILE instead of stdout",
    )
    p.add_argument("--param", action="append", default=[], metavar="KEY=VALUE")
    p.add_argument(
        "--preset",
        choices=("small", "default", "large", "paper"),
        default="default",
        help="input set (Inncabs-style); --param overrides on top",
    )
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "profile",
        help="causal profile of one run: critical path, parallelism, what-if speedups",
    )
    p.add_argument(
        "benchmark",
        nargs="?",
        default=None,
        metavar="WORKLOAD",
        help="workload name or NAME:key=val,... spec (or use --workload)",
    )
    p.add_argument("--runtime", choices=("hpx", "std"), default="hpx")
    p.add_argument("--cores", type=int, default=4)
    _add_workload_options(p, seed_default=None)
    p.add_argument("--param", action="append", default=[], metavar="KEY=VALUE")
    p.add_argument(
        "--preset",
        choices=("small", "default", "large", "paper"),
        default="default",
        help="input set (Inncabs-style); --param overrides on top",
    )
    p.add_argument(
        "--what-if",
        action="append",
        default=[],
        metavar="body=NAME,speedup=PCT",
        help="causal experiment: predict and replay the run with NAME's "
        "work cost cut by PCT%% (repeatable)",
    )
    p.add_argument(
        "--top", type=int, default=10, help="flat-profile rows to show (default 10)"
    )
    p.add_argument(
        "--json", default=None, metavar="FILE", help="write the full profile as JSON"
    )
    p.add_argument(
        "--chrome-out",
        default=None,
        metavar="FILE",
        help="write a chrome://tracing timeline (tasks + parallelism waterfall)",
    )
    p.add_argument(
        "--counters",
        action="store_true",
        help="also collect the default counter set during the profiled run",
    )
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("workloads", help="the unified workload registry (Inncabs + Task Bench)")
    workloads_sub = p.add_subparsers(dest="workloads_command", required=True)
    pw = workloads_sub.add_parser("list", help="list every registered workload")
    pw.set_defaults(fn=cmd_workloads_list)
    pw = workloads_sub.add_parser("show", help="defaults and presets of one workload")
    pw.add_argument("name", help="workload name (see 'repro workloads list')")
    pw.set_defaults(fn=cmd_workloads_show)

    p = sub.add_parser("taskbench", help="METG(eps) sweep over a parameterized dependency graph")
    p.add_argument(
        "--shape",
        choices=("trivial", "stencil_1d", "fft", "tree", "random"),
        default="stencil_1d",
        help="dependency pattern (default: stencil_1d)",
    )
    p.add_argument("--width", type=int, default=64, help="points per timestep")
    p.add_argument("--steps", type=int, default=32, help="number of timesteps")
    p.add_argument(
        "--eps",
        type=float,
        default=0.5,
        help="efficiency slack: METG is the smallest grain with "
        "efficiency >= 1-eps (default 0.5)",
    )
    p.add_argument(
        "--runtime",
        choices=("hpx", "std", "both"),
        default="both",
        help="backend(s) to sweep (default: both)",
    )
    p.add_argument(
        "--cores", type=int, default=None, help="worker count (default: all platform cores)"
    )
    p.add_argument("--membytes", type=int, default=0, help="memory traffic per task (bytes)")
    p.add_argument(
        "--degree", type=float, default=3.0, help="expected in-degree of the random shape"
    )
    _add_workload_options(p, workload=False, seed_default=None)
    p.add_argument("--out", default=None, metavar="FILE", help="write the sweep results as JSON")
    p.add_argument(
        "--samples-out",
        default=None,
        metavar="FILE",
        help="also write the derived /taskbench{...} counter samples as JSON lines",
    )
    p.add_argument("--verbose", action="store_true", help="per-probe progress on stderr")
    p.set_defaults(fn=cmd_taskbench)

    p = sub.add_parser("serve", help="run the HTTP run server (simulation-as-a-service)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765, help="0 = ephemeral (announced on stdout)")
    p.add_argument("--workers", type=int, default=2, help="run-executing worker processes")
    p.add_argument(
        "--max-queue", type=int, default=256, help="queued-run capacity (429 beyond this)"
    )
    p.add_argument(
        "--quota-rate", type=float, default=50.0, help="per-tenant sustained runs/second"
    )
    p.add_argument("--quota-burst", type=float, default=100.0, help="per-tenant burst allowance")
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared result cache root (default: results/campaigns/cache — campaigns hit it too)",
    )
    p.add_argument("--no-cache", action="store_true", help="always execute every run")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("campaign", help="run an experiment matrix over a process pool")
    p.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        choices=available_benchmarks(),
        help="Inncabs benchmarks to include (default: all fourteen when "
        "--workloads is not given either)",
    )
    p.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        metavar="NAME[:key=val,...]",
        help="workload specs to include alongside --benchmarks "
        "(e.g. taskbench:shape=fft,width=8; see 'repro workloads list')",
    )
    p.add_argument(
        "--runtimes",
        nargs="+",
        default=["hpx", "std"],
        choices=("hpx", "std"),
        help="runtimes to include (default: both)",
    )
    p.add_argument(
        "--cores-list", type=_cores_list, default=None, help="comma-separated core counts"
    )
    p.add_argument("--samples", type=int, default=3, help="samples per cell group")
    p.add_argument("--preset", choices=("small", "default", "large", "paper"), default="default")
    _add_workload_options(p, workload=False)
    p.add_argument("--param", action="append", default=[], metavar="KEY=VALUE")
    p.add_argument("--jobs", type=int, default=1, help="worker processes (1 = serial)")
    p.add_argument("--out", default=None, metavar="FILE", help="artifact path (JSON)")
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache root (default: results/campaigns/cache)",
    )
    p.add_argument("--no-cache", action="store_true", help="always execute every cell")
    p.add_argument("--no-counters", action="store_true", help="disable instrumentation")
    p.add_argument(
        "--profile",
        action="store_true",
        help="attach the causal profiler to every cell; artifacts then carry "
        "per-cell profile summaries (critical path, work/span, parallelism)",
    )
    p.add_argument("--verbose", action="store_true", help="per-cell progress on stderr")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("bench-core", help="event-core events/sec benchmark (vs legacy engine)")
    p.add_argument(
        "--mode",
        choices=("quick", "reference"),
        default="quick",
        help="workload sizes: quick (CI perf smoke) or reference (fib(26) acceptance run)",
    )
    p.add_argument(
        "--runs",
        nargs="*",
        default=None,
        choices=("fib", "uts", "health"),
        help="subset of reference workloads (default: all three)",
    )
    p.add_argument("--repeat", type=int, default=2, help="interleaved pairs per workload")
    p.add_argument(
        "--platform",
        default=None,
        metavar="NAME|FILE",
        help="simulated node for the reference runs (default: ivybridge-2x10)",
    )
    p.add_argument("--out", default="BENCH_core.json", metavar="FILE", help="artifact path")
    p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="gate against this committed artifact (e.g. results/baseline_core.json)",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed drop in the new/legacy events-per-sec ratio (default 0.20)",
    )
    p.set_defaults(fn=cmd_bench_core)

    p = sub.add_parser("bench-serve", help="load-test the run server (latency + cache gate)")
    p.add_argument(
        "--mode",
        choices=("quick", "reference"),
        default="quick",
        help="load shape: quick (50 clients / 500 runs, CI) or reference (100 / 2000)",
    )
    p.add_argument("--clients", type=int, default=None, help="concurrent client tasks")
    p.add_argument("--runs", type=int, default=None, help="total submissions")
    p.add_argument("--workers", type=int, default=None, help="server worker processes")
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="server cache root (default: a fresh temp dir, so every cold run executes)",
    )
    p.add_argument("--out", default="BENCH_serve.json", metavar="FILE", help="artifact path")
    p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="gate against this committed artifact (e.g. results/baseline_serve.json)",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="allowed multiplier on the baseline's normalized latency ratios (default 3.0)",
    )
    p.set_defaults(fn=cmd_bench_serve)

    p = sub.add_parser(
        "compare", help="diff two campaign artifacts or BENCH_core files (regression gate)"
    )
    p.add_argument("baseline", help="baseline artifact (JSON)")
    p.add_argument("current", help="current artifact (JSON)")
    p.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative median-exec-time regression tolerance (default 0.05)",
    )
    p.add_argument(
        "--counter-threshold",
        type=float,
        default=None,
        help="also gate on counter-median drift beyond this fraction",
    )
    p.add_argument("--only-failures", action="store_true", help="table shows failures only")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("table1", help="regenerate Table I (external tools)")
    p.add_argument("--benchmarks", nargs="*", default=None)
    p.add_argument("--cores", type=int, default=20)
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("table5", help="regenerate Table V (classification)")
    p.add_argument("--benchmarks", nargs="*", default=None)
    p.add_argument("--samples", type=int, default=None)
    p.add_argument(
        "--cores-list", type=_cores_list, default=None, help="comma-separated core counts"
    )
    p.add_argument("--jobs", type=int, default=1, help="worker processes (1 = serial)")
    p.set_defaults(fn=cmd_table5)

    p = sub.add_parser("figure", help="regenerate one figure's series")
    p.add_argument("figure", help="fig1..fig14")
    p.add_argument("--samples", type=int, default=None)
    p.add_argument(
        "--cores-list", type=_cores_list, default=None, help="comma-separated core counts"
    )
    p.add_argument("--jobs", type=int, default=1, help="worker processes (1 = serial)")
    p.add_argument(
        "--artifact",
        default=None,
        metavar="FILE",
        help="read curves from a campaign artifact instead of running",
    )
    p.set_defaults(fn=cmd_figure)

    p = sub.add_parser("generate", help="regenerate every table and figure into a directory")
    p.add_argument("outdir", nargs="?", default="results")
    p.add_argument("--samples", type=int, default=1)
    p.add_argument("--jobs", type=int, default=1, help="worker processes (1 = serial)")
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="campaign result cache to reuse across invocations",
    )
    p.set_defaults(fn=cmd_generate)

    return parser


def cmd_generate(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.generate import generate_all

    generate_all(Path(args.outdir), samples=args.samples, jobs=args.jobs, cache_dir=args.cache_dir)
    print(f"wrote results to {args.outdir}/")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
