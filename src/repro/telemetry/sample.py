"""The single sample-record model of the telemetry pipeline.

Everything the measurement side of the reproduction emits — final
counter evaluations, periodic in-band query rows, campaign artifact
cells — is a stream of :class:`Sample` records.  One record is one
counter instance read at one simulated timestamp; the paper's export
path ("the counters are sampled in an interval and exported") maps to
exactly this shape.

A :class:`Sample` is frozen and JSON-friendly: :meth:`Sample.to_row` /
:meth:`Sample.from_row` round-trip losslessly through plain dicts,
which is what the CSV/JSONL sinks and the versioned campaign artifact
schema serialize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

#: Column order used by every tabular export (CSV header, JSONL keys).
SAMPLE_FIELDS = ("name", "instance", "timestamp_ns", "value", "unit", "run_id")


@dataclass(frozen=True, slots=True)
class Sample:
    """One counter reading at one simulated instant.

    ``name`` is the full canonical counter name
    (``/threads{locality#0/worker-thread#1}/time/average``);
    ``instance`` is the resolved instance part alone
    (``locality#0/worker-thread#1`` — for statistics counters this is
    the embedded underlying counter name); ``unit`` comes from the
    counter type's :class:`~repro.counters.base.CounterInfo`; and
    ``run_id`` tags which run of a campaign/session emitted the record.
    """

    name: str
    instance: str
    timestamp_ns: int
    value: float
    unit: str = ""
    run_id: str = ""

    def to_row(self) -> dict[str, Any]:
        """Plain-dict form (the JSONL object / artifact row)."""
        return {
            "name": self.name,
            "instance": self.instance,
            "timestamp_ns": self.timestamp_ns,
            "value": self.value,
            "unit": self.unit,
            "run_id": self.run_id,
        }

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "Sample":
        """Rebuild a sample from its :meth:`to_row` form."""
        return cls(
            name=row["name"],
            instance=row.get("instance", ""),
            timestamp_ns=int(row["timestamp_ns"]),
            value=float(row["value"]),
            unit=row.get("unit", ""),
            run_id=row.get("run_id", ""),
        )


def instance_of(name: str) -> str:
    """Best-effort resolved instance part of a counter-name string.

    Used when adapting legacy ``{name: value}`` dicts (pre-telemetry
    artifacts) into sample streams; malformed names degrade to an empty
    instance rather than failing the load.
    """
    from repro.counters.names import CounterNameError, parse_counter_name

    try:
        return parse_counter_name(name).full_instance
    except CounterNameError:
        return ""
