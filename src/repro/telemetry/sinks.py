"""Pluggable telemetry sinks.

A sink is anything with ``emit(sample)`` and ``close()``.  Built-ins:

- :class:`CsvSink` — the HPX ``--hpx:print-counter``-style tabular
  export, one header plus one row per sample;
- :class:`JsonLinesSink` — one JSON object per line (the schema is
  documented in ``docs/telemetry.md``); machine-friendly streaming;
- :class:`TelemetryFrame` (from :mod:`repro.telemetry.frame`) — the
  in-memory sink tests and aggregation use;
- :class:`ChromeTraceSink` — folds counter samples into the Chrome
  Trace Event Format alongside (optionally) a recorded task trace, via
  :func:`repro.trace.export.to_chrome_trace`.

File-path destinations are owned (opened and closed) by the sink;
already-open streams are borrowed and only flushed on ``close``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO, Protocol, runtime_checkable

from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.sample import SAMPLE_FIELDS, Sample


@runtime_checkable
class TelemetrySink(Protocol):
    """Structural sink interface the pipeline fans samples out to."""

    def emit(self, sample: Sample) -> None: ...

    def close(self) -> None: ...


def ensure_sink(sink: Any) -> Any:
    """Validate *sink* implements the sink interface.

    Raises a clear ``TypeError`` at configuration time instead of an
    ``AttributeError`` at first sample.
    """
    for attr in ("emit", "close"):
        if not callable(getattr(sink, attr, None)):
            raise TypeError(
                f"telemetry sink {sink!r} does not implement {attr}(); "
                "a sink needs emit(sample) and close()"
            )
    return sink


class _StreamSink:
    """Shared stream handling: path = owned file, stream = borrowed."""

    def __init__(self, dest: str | Path | IO[str]) -> None:
        if isinstance(dest, (str, Path)):
            self._stream: IO[str] = open(dest, "w", encoding="utf-8")
            self._owned = True
        else:
            self._stream = dest
            self._owned = False

    def _write_line(self, line: str) -> None:
        self._stream.write(line + "\n")

    def close(self) -> None:
        if self._owned:
            self._stream.close()
        else:
            self._stream.flush()


class CsvSink(_StreamSink):
    """``name,instance,timestamp_ns,value,unit,run_id`` rows."""

    def __init__(self, dest: str | Path | IO[str]) -> None:
        super().__init__(dest)
        self._write_line(",".join(SAMPLE_FIELDS))

    def emit(self, sample: Sample) -> None:
        self._write_line(
            f"{sample.name},{sample.instance},{sample.timestamp_ns},"
            f"{sample.value:g},{sample.unit},{sample.run_id}"
        )


class JsonLinesSink(_StreamSink):
    """One compact JSON object per sample (keys = ``SAMPLE_FIELDS``).

    ``value`` is serialized with full float precision (``repr``-exact),
    so a stream parsed back yields bit-identical counter values.
    """

    def emit(self, sample: Sample) -> None:
        self._write_line(json.dumps(sample.to_row(), sort_keys=True, separators=(",", ":")))


class ChromeTraceSink:
    """Collects samples and renders them as Chrome-trace counter events.

    ``render()`` produces a ``chrome://tracing`` / Perfetto JSON
    document; pass a :class:`~repro.trace.recorder.TraceRecorder` (or
    its events) to overlay the counter timelines on the per-worker task
    timelines of the same run.  With a path destination the document is
    written on ``close``.
    """

    def __init__(self, dest: str | Path | None = None) -> None:
        self.frame = TelemetryFrame()
        self._dest = Path(dest) if dest is not None else None

    def emit(self, sample: Sample) -> None:
        self.frame.emit(sample)

    def render(self, trace: Any = None) -> str:
        from repro.trace.export import to_chrome_trace

        return to_chrome_trace(trace, telemetry=self.frame)

    def close(self) -> None:
        if self._dest is not None:
            self._dest.write_text(self.render(), encoding="utf-8")


def replay_samples(samples: Any, sink: Any) -> None:
    """Re-emit an iterable of samples (e.g. a stored
    :class:`TelemetryFrame`) into *sink*.

    The run server streams persisted telemetry rows to clients with
    this: frame -> :class:`JsonLinesSink` over the HTTP chunk writer.
    The sink is *not* closed — the caller owns its lifecycle.
    """
    for sample in samples:
        sink.emit(sample)


def parse_jsonl_stream(lines: Any) -> TelemetryFrame:
    """Parse a JSONL telemetry stream (iterable of lines or a whole
    string) back into a :class:`TelemetryFrame`; blank lines skipped."""
    if isinstance(lines, str):
        lines = lines.splitlines()
    return TelemetryFrame.from_rows(json.loads(line) for line in lines if line.strip())
