"""The streaming telemetry pipeline.

One :class:`TelemetryPipeline` per run owns the whole measurement
export path the paper describes:

- **counter-set resolution** — specs (including ``#*`` wildcard
  instances and nested statistics counter names) are expanded through
  the run's :class:`~repro.counters.registry.CounterRegistry` into one
  concrete counter per stream;
- **sampling** — ``sample()`` evaluates every resolved counter at the
  current simulated instant and converts the readings into
  :class:`~repro.telemetry.sample.Sample` records (cadence is driven
  by :class:`~repro.counters.query.PeriodicQuery` for in-band interval
  sampling, or by a single end-of-run call);
- **bounded buffering with drop accounting** — the in-memory frame
  retains at most ``buffer_limit`` samples; overflow is *counted*
  (``dropped``), never silent, while streaming sinks still receive
  every record;
- **pluggable sinks** — CSV, JSON-lines, Chrome-trace, in-memory
  frames, or anything implementing ``emit(sample)`` / ``close()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.counters.manager import ActiveCounters
from repro.counters.registry import CounterRegistry
from repro.counters.types import CounterValue
from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.sample import Sample
from repro.telemetry.sinks import ensure_sink

#: Samples retained in the in-memory frame before drop accounting kicks
#: in.  Generous for interval sampling (a 0.1 ms cadence over a 100 ms
#: run with the paper's 9-counter set is ~9000 samples) while bounding
#: memory for adversarial cadences.
DEFAULT_BUFFER_LIMIT = 65_536


@dataclass(frozen=True)
class TelemetryConfig:
    """Declarative telemetry wiring for :class:`repro.api.Session`.

    ``counters=None`` means the session's default set (the paper's
    software + PAPI counters); ``interval_ns`` enables periodic
    sampling during the run (in-band by default, i.e. each sample costs
    simulated scheduler time); ``sinks`` receive every sample as it is
    recorded.
    """

    counters: tuple[str, ...] | None = None
    interval_ns: int | None = None
    in_band: bool = True
    sinks: tuple[Any, ...] = ()
    buffer_limit: int = DEFAULT_BUFFER_LIMIT
    run_id: str = ""

    def __post_init__(self) -> None:
        if self.interval_ns is not None and self.interval_ns <= 0:
            raise ValueError("interval_ns must be positive when given")
        if self.buffer_limit < 1:
            raise ValueError("buffer_limit must be >= 1")
        if self.counters is not None:
            object.__setattr__(self, "counters", tuple(self.counters))
        object.__setattr__(self, "sinks", tuple(self.sinks))
        for sink in self.sinks:
            ensure_sink(sink)


class TelemetryPipeline:
    """Resolved counter set + bounded buffer + sink fan-out for one run."""

    def __init__(
        self,
        registry: CounterRegistry,
        specs: Sequence[str],
        *,
        run_id: str = "",
        sinks: Sequence[Any] = (),
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        frame: TelemetryFrame | None = None,
    ) -> None:
        if buffer_limit < 1:
            raise ValueError("buffer_limit must be >= 1")
        self.sinks = [ensure_sink(sink) for sink in sinks]
        # Counter-set resolution: ActiveCounters runs wildcard discovery
        # and nested statistics/arithmetics construction on the registry.
        self.active = ActiveCounters(registry, specs)
        self.run_id = run_id
        self.buffer_limit = buffer_limit
        self.frame = frame if frame is not None else TelemetryFrame()
        self.dropped = 0
        self.samples_recorded = 0
        # Per-counter static metadata, resolved once: canonical name,
        # instance part, unit.  Evaluation order is the plan order.
        self._plan = [
            (str(c.name), c.name.full_instance, c.info.unit) for c in self.active.counters
        ]

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.active)

    def names(self) -> list[str]:
        """Fully-resolved concrete counter names (wildcards expanded)."""
        return [name for name, _, _ in self._plan]

    # -- life cycle --------------------------------------------------------

    def start(self) -> None:
        """Activate counter instrumentation (charges the runtime)."""
        self.active.start()

    def stop(self) -> None:
        self.active.stop()

    def reset(self) -> None:
        """Re-baseline every resolved counter (start of a sample window)."""
        self.active.reset_active_counters()

    def __enter__(self) -> "TelemetryPipeline":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
        self.close()

    # -- sampling ----------------------------------------------------------

    def sample(self, *, reset: bool = False) -> list[CounterValue]:
        """Evaluate every counter now, record the readings, return them.

        The returned :class:`CounterValue` list is exactly what
        ``evaluate_active_counters`` produces, so counter values that
        flow through the pipeline are bit-identical to the direct path.
        """
        values = self.active.evaluate_active_counters(reset=reset)
        self.record(values)
        return values

    def record(self, values: Sequence[CounterValue]) -> list[Sample]:
        """Convert one evaluation's readings into samples and route them.

        ``values`` must be in plan order (the order ``sample()`` and
        ``evaluate_active_counters`` produce).
        """
        if len(values) != len(self._plan):
            raise ValueError(
                f"expected {len(self._plan)} counter values (one per resolved "
                f"counter), got {len(values)}"
            )
        batch = [
            Sample(
                name=name,
                instance=instance,
                timestamp_ns=value.time,
                value=value.value,
                unit=unit,
                run_id=self.run_id,
            )
            for (name, instance, unit), value in zip(self._plan, values)
        ]
        self.samples_recorded += len(batch)
        for sample in batch:
            # Bounded retention: the frame never exceeds buffer_limit;
            # overflow is accounted, and streaming sinks still get
            # every record (they don't buffer).
            if len(self.frame) < self.buffer_limit:
                self.frame.emit(sample)
            else:
                self.dropped += 1
            for sink in self.sinks:
                sink.emit(sample)
        return batch

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Close every sink (owned files are flushed and closed)."""
        for sink in self.sinks:
            sink.close()
