"""Streaming telemetry: one sample/record spine for all measurement.

The paper's contribution *is* the intrinsic monitoring path — counters
sampled in-band on an interval, exported, and turned into the Section
V-C efficiency metrics.  This package is that path's single
implementation: a :class:`Sample` record model, a
:class:`TelemetryPipeline` owning counter-set resolution (wildcards,
nested statistics), sampling, bounded buffering with drop accounting,
and pluggable sinks (CSV, JSON-lines, Chrome-trace, in-memory frames).

Every consumer — periodic in-band queries, the strong-scaling harness,
the experiment metrics, campaign artifacts, the ``repro counters``
CLI — reads and writes this one stream format instead of private row
shapes.  See ``docs/telemetry.md``.
"""

from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.pipeline import DEFAULT_BUFFER_LIMIT, TelemetryConfig, TelemetryPipeline
from repro.telemetry.sample import SAMPLE_FIELDS, Sample
from repro.telemetry.sinks import (
    ChromeTraceSink,
    CsvSink,
    JsonLinesSink,
    TelemetrySink,
    ensure_sink,
    parse_jsonl_stream,
    replay_samples,
)

__all__ = [
    "ChromeTraceSink",
    "CsvSink",
    "DEFAULT_BUFFER_LIMIT",
    "JsonLinesSink",
    "SAMPLE_FIELDS",
    "Sample",
    "TelemetryConfig",
    "TelemetryFrame",
    "TelemetryPipeline",
    "TelemetrySink",
    "ensure_sink",
    "parse_jsonl_stream",
    "replay_samples",
]
