"""In-memory telemetry frame: the sink used by tests and aggregation.

A :class:`TelemetryFrame` is both a sink (it implements ``emit`` /
``close``) and the queryable result of a run's telemetry: ordered
sample rows with per-counter series and final totals.  The harness,
the experiment metrics, and campaign artifacts all consume frames —
``totals()`` reproduces, bit for bit, the ``{name: value}`` dict the
pre-pipeline code paths used to carry around.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.telemetry.sample import Sample, instance_of


class TelemetryFrame:
    """Ordered, queryable collection of :class:`Sample` rows."""

    __slots__ = ("samples",)

    def __init__(self, samples: Iterable[Sample] = ()) -> None:
        self.samples: list[Sample] = list(samples)

    # -- sink interface ----------------------------------------------------

    def emit(self, sample: Sample) -> None:
        self.samples.append(sample)

    def close(self) -> None:
        """Frames hold no external resources."""

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self.samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TelemetryFrame({len(self.samples)} samples, {len(self.names())} counters)"

    # -- queries -----------------------------------------------------------

    def names(self) -> list[str]:
        """Counter names in first-appearance order."""
        seen: dict[str, None] = {}
        for sample in self.samples:
            seen.setdefault(sample.name, None)
        return list(seen)

    def series(self, name: str) -> list[Sample]:
        """Every sample of one counter, in emission order."""
        return [s for s in self.samples if s.name == name]

    def value(self, name: str) -> float:
        """Final value of one counter; KeyError lists what exists."""
        for sample in reversed(self.samples):
            if sample.name == name:
                return sample.value
        known = "\n  ".join(self.names())
        raise KeyError(f"no counter {name!r} in frame; collected:\n  {known}")

    def totals(self) -> dict[str, float]:
        """{name: final value} — the legacy counter-dict view.

        The *last* sample per counter wins, so for a run that sampled
        periodically and then evaluated once at termination this is
        exactly the dict ``evaluate_active_counters`` used to produce.
        """
        out: dict[str, float] = {}
        for sample in self.samples:
            out[sample.name] = sample.value
        return out

    def units(self) -> dict[str, str]:
        """{name: unit} over every counter seen."""
        out: dict[str, str] = {}
        for sample in self.samples:
            out.setdefault(sample.name, sample.unit)
        return out

    def timestamps(self) -> list[int]:
        """Distinct sample timestamps, ascending."""
        return sorted({s.timestamp_ns for s in self.samples})

    # -- (de)serialization -------------------------------------------------

    def to_rows(self) -> list[dict[str, Any]]:
        return [s.to_row() for s in self.samples]

    @classmethod
    def from_rows(cls, rows: Iterable[Mapping[str, Any]]) -> "TelemetryFrame":
        return cls(Sample.from_row(row) for row in rows)

    @classmethod
    def from_counters(
        cls,
        counters: Mapping[str, float],
        *,
        timestamp_ns: int = 0,
        units: Mapping[str, str] | None = None,
        run_id: str = "",
    ) -> "TelemetryFrame":
        """Adapt a legacy ``{name: value}`` dict into a one-shot frame.

        The load path for pre-telemetry campaign artifacts (schema 1)
        and for any result object that only carries a counter dict.
        """
        units = units or {}
        return cls(
            Sample(
                name=name,
                instance=instance_of(name),
                timestamp_ns=timestamp_ns,
                value=value,
                unit=units.get(name, ""),
                run_id=run_id,
            )
            for name, value in counters.items()
        )
