"""PAPI substrate: reads hardware events out of the machine model.

Which events exist is part of the platform description
(``PlatformSpec.papi_events``): the substrate only serves events the
simulated node's counter model exposes, and names the platform in the
error when asked for anything else — mirroring real PAPI, where the
available native events are a property of the microarchitecture.
"""

from __future__ import annotations

from repro.papi.events import PapiEvent, lookup_event
from repro.simcore.machine import Machine


class PapiSubstrate:
    """Read access to per-core and machine-total hardware event counts."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.platform = machine.platform
        #: Event names the platform's counter model exposes.
        self.events = frozenset(self.platform.papi_events)

    def available(self, event: PapiEvent | str) -> bool:
        """True when the platform's counter model exposes *event*."""
        name = event if isinstance(event, str) else event.name
        return name in self.events

    def read(self, event: PapiEvent | str, core_index: int | None = None) -> int:
        """Current count of *event*; totalled over all cores if
        *core_index* is None."""
        if isinstance(event, str):
            event = lookup_event(event)
        if event.name not in self.events:
            raise KeyError(
                f"event {event.name!r} is not exposed by platform "
                f"{self.platform.name!r}; available: {', '.join(sorted(self.events))}"
            )
        if core_index is not None:
            return getattr(self.machine.cores[core_index].hw, event.attr)
        return sum(getattr(core.hw, event.attr) for core in self.machine.cores)

    def offcore_requests_total(self, core_index: int | None = None) -> int:
        """Sum of the three offcore request events (the paper's
        bandwidth numerator, in cache lines)."""
        return (
            self.read("OFFCORE_REQUESTS:ALL_DATA_RD", core_index)
            + self.read("OFFCORE_REQUESTS:DEMAND_CODE_RD", core_index)
            + self.read("OFFCORE_REQUESTS:DEMAND_RFO", core_index)
        )
