"""PAPI substrate: reads hardware events out of the machine model."""

from __future__ import annotations

from repro.papi.events import PapiEvent, lookup_event
from repro.simcore.machine import Machine


class PapiSubstrate:
    """Read access to per-core and machine-total hardware event counts."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def read(self, event: PapiEvent | str, core_index: int | None = None) -> int:
        """Current count of *event*; totalled over all cores if
        *core_index* is None."""
        if isinstance(event, str):
            event = lookup_event(event)
        if core_index is not None:
            return getattr(self.machine.cores[core_index].hw, event.attr)
        return sum(getattr(core.hw, event.attr) for core in self.machine.cores)

    def offcore_requests_total(self, core_index: int | None = None) -> int:
        """Sum of the three offcore request events (the paper's
        bandwidth numerator, in cache lines)."""
        return (
            self.read("OFFCORE_REQUESTS:ALL_DATA_RD", core_index)
            + self.read("OFFCORE_REQUESTS:DEMAND_CODE_RD", core_index)
            + self.read("OFFCORE_REQUESTS:DEMAND_RFO", core_index)
        )
