"""Hardware event definitions.

The three offcore-request events are the ones the paper sums for its
bandwidth estimate (Section V-C); cycles and instructions are included
as representative PAPI presets.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PapiEvent:
    """One measurable hardware event."""

    name: str  # as used in counter names, e.g. OFFCORE_REQUESTS:ALL_DATA_RD
    attr: str  # attribute of repro.simcore.machine.HardwareCounters
    description: str


PAPI_EVENTS: tuple[PapiEvent, ...] = (
    PapiEvent(
        "OFFCORE_REQUESTS:ALL_DATA_RD",
        "offcore_all_data_rd",
        "Offcore requests: all data reads (cache lines)",
    ),
    PapiEvent(
        "OFFCORE_REQUESTS:DEMAND_CODE_RD",
        "offcore_demand_code_rd",
        "Offcore requests: demand code reads (cache lines)",
    ),
    PapiEvent(
        "OFFCORE_REQUESTS:DEMAND_RFO",
        "offcore_demand_rfo",
        "Offcore requests: demand reads for ownership (cache lines)",
    ),
    PapiEvent("PAPI_TOT_CYC", "cycles", "Total cycles"),
    PapiEvent("PAPI_TOT_INS", "instructions", "Instructions completed"),
)

_BY_NAME = {e.name: e for e in PAPI_EVENTS}


def lookup_event(name: str) -> PapiEvent:
    """Find an event by its counter-name spelling.

    Raises ``KeyError`` with the available names on miss.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        available = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown PAPI event {name!r}; available: {available}") from None
