"""Simulated PAPI: hardware event counters fed by the machine model.

The paper accesses native Ivy Bridge offcore events through HPX's PAPI
counter integration (``papi/OFFCORE_REQUESTS:ALL_DATA_RD`` …) and
derives a bandwidth estimate: requests × 64-byte cache lines / elapsed
time.  Here the same events are sourced from the
:class:`~repro.simcore.machine.Machine` hardware-counter substrate.
"""

from repro.papi.events import PAPI_EVENTS, PapiEvent, lookup_event
from repro.papi.hw import PapiSubstrate

__all__ = ["PAPI_EVENTS", "PapiEvent", "PapiSubstrate", "lookup_event"]
