"""Platform files: TOML/JSON round-trips and load-time validation."""

import pytest

from repro.platform.io import load_platform_file, platform_to_toml, save_platform_file
from repro.platform.presets import get_platform, platform_names
from repro.platform.spec import PlatformError
from repro.simcore.machine import MachineSpec


@pytest.mark.parametrize("name", platform_names())
@pytest.mark.parametrize("suffix", [".toml", ".json"])
def test_every_preset_roundtrips_through_files(tmp_path, name, suffix):
    spec = get_platform(name)
    path = save_platform_file(spec, tmp_path / f"{name}{suffix}")
    assert load_platform_file(path) == spec


@pytest.mark.parametrize("suffix", [".toml", ".json"])
def test_machinespec_roundtrips_through_files(tmp_path, suffix):
    """Legacy spec -> platform -> file -> platform -> legacy spec, losslessly."""
    spec = MachineSpec(
        name="custom-2x6",
        sockets=2,
        cores_per_socket=6,
        freq_ghz=3.2,
        l3_bytes_per_socket=20 * 1024 * 1024,
        socket_peak_bw=55e9,
        per_core_bw=9.5e9,
        cross_socket_factor=1.7,
        ram_bytes=128 * 1024**3,
        ipc=1.9,
        l3_pressure_alpha=0.4,
        l3_max_factor=2.2,
    )
    path = save_platform_file(spec.to_platform(), tmp_path / f"node{suffix}")
    loaded = load_platform_file(path)
    assert loaded == spec.to_platform()
    assert MachineSpec.from_platform(loaded) == spec


def test_toml_text_is_humane():
    text = platform_to_toml(get_platform("hybrid-4p8e"))
    assert text.count("[[sockets]]") == 2
    assert 'name = "hybrid-4p8e"' in text


def test_load_rejects_bad_suffix_and_bad_content(tmp_path):
    bad = tmp_path / "node.yaml"
    bad.write_text("name: x\n")
    with pytest.raises(PlatformError, match="must end in .toml or .json"):
        load_platform_file(bad)
    with pytest.raises(PlatformError, match="cannot read"):
        load_platform_file(tmp_path / "missing.toml")
    broken = tmp_path / "node.json"
    broken.write_text("{not json")
    with pytest.raises(PlatformError, match="invalid JSON"):
        load_platform_file(broken)
    toplevel = tmp_path / "list.json"
    toplevel.write_text("[1, 2]")
    with pytest.raises(PlatformError, match="table/object at top level"):
        load_platform_file(toplevel)


def test_loaded_files_get_schema_validation(tmp_path):
    path = tmp_path / "node.toml"
    path.write_text('name = "x"\nfrequency = 3.0\n\n[[sockets]]\ncores = 2\n')
    with pytest.raises(PlatformError, match="unknown key"):
        load_platform_file(path)
