"""Seeded property-style tests: bindings are valid on arbitrary shapes.

Rather than enumerating shapes by hand, a seeded RNG generates a few
hundred (platform, num_workers, mode) cases — 1-socket, many-socket,
asymmetric — and every binding is checked against the properties that
make a binding a binding: right length, in range, no core used twice,
deterministic.  The seed is fixed, so failures reproduce exactly.
"""

import random

import pytest

from repro.platform.spec import PlatformSpec, SocketSpec
from repro.simcore.topology import BindMode, Topology

SEED = 20160523


def random_platform(rng: random.Random) -> PlatformSpec:
    num_sockets = rng.randint(1, 4)
    sockets = tuple(
        SocketSpec(cores=rng.randint(1, 12), freq_ghz=rng.choice((2.0, 2.5, 3.6)))
        for _ in range(num_sockets)
    )
    return PlatformSpec(name=f"random-{rng.randrange(1 << 30):x}", sockets=sockets)


def generate_cases(count: int = 300):
    rng = random.Random(SEED)
    for _ in range(count):
        platform = random_platform(rng)
        num_workers = rng.randint(1, platform.total_cores)
        mode = rng.choice(list(BindMode))
        yield platform, num_workers, mode


@pytest.mark.parametrize("mode", list(BindMode))
def test_bindings_valid_on_random_shapes(mode):
    rng = random.Random(SEED + hash(mode.value) % 1000)
    for _ in range(150):
        platform = random_platform(rng)
        topology = Topology(platform)
        num_workers = rng.randint(1, platform.total_cores)
        cores = topology.binding(num_workers, mode)
        assert len(cores) == num_workers
        assert len(set(cores)) == num_workers  # no core bound twice
        assert all(0 <= c < platform.total_cores for c in cores)
        assert cores == topology.binding(num_workers, mode)  # deterministic


def test_full_binding_covers_every_core():
    for platform, _, mode in generate_cases(100):
        cores = Topology(platform).binding(platform.total_cores, mode)
        assert sorted(cores) == list(range(platform.total_cores))


def test_compact_fills_sockets_in_order():
    for platform, num_workers, _ in generate_cases(100):
        cores = Topology(platform).binding(num_workers, BindMode.COMPACT)
        assert cores == list(range(num_workers))


def test_scatter_spreads_across_sockets():
    """With at least as many workers as sockets, scatter touches all of
    them (possible by construction: every socket has >= 1 core)."""
    for platform, _, _ in generate_cases(100):
        topology = Topology(platform)
        workers = min(platform.total_cores, platform.num_sockets)
        used = topology.sockets_used(topology.binding(workers, BindMode.SCATTER))
        assert used == set(range(platform.num_sockets))


def test_balanced_never_exceeds_capacity_and_stays_even():
    for platform, num_workers, _ in generate_cases(100):
        topology = Topology(platform)
        cores = topology.binding(num_workers, BindMode.BALANCED)
        per_socket = [0] * platform.num_sockets
        for core in cores:
            per_socket[platform.socket_of(core)] += 1
        for socket, count in enumerate(per_socket):
            assert count <= platform.sockets[socket].cores
        # Sockets that could take an even share differ by at most one
        # from each other (overflow only lands where there is capacity).
        unsaturated = [
            count
            for socket, count in enumerate(per_socket)
            if count < platform.sockets[socket].cores
        ]
        if len(unsaturated) > 1:
            assert max(unsaturated) - min(unsaturated) <= 1


def test_binding_error_names_platform():
    platform = PlatformSpec(name="tiny-1x2", sockets=(SocketSpec(cores=2),))
    with pytest.raises(ValueError, match="tiny-1x2"):
        Topology(platform).binding(3)
    with pytest.raises(ValueError, match=r"must be in \[1, 2\]"):
        Topology(platform).binding(0)


def test_bind_mode_parse_chains_cleanly():
    assert BindMode.parse("Compact") is BindMode.COMPACT
    with pytest.raises(ValueError, match="unknown bind mode") as excinfo:
        BindMode.parse("sprinkle")
    assert excinfo.value.__cause__ is None  # raise ... from None
    assert excinfo.value.__suppress_context__


def test_legacy_even_shapes_unchanged():
    """On the paper's 2x10 node the generalized algorithms must produce
    exactly the historical bindings (golden-fixture safety)."""
    topology = Topology(None)
    assert topology.binding(6, BindMode.COMPACT) == [0, 1, 2, 3, 4, 5]
    assert topology.binding(6, BindMode.SCATTER) == [0, 10, 1, 11, 2, 12]
    assert topology.binding(6, BindMode.BALANCED) == [0, 1, 2, 10, 11, 12]
    assert topology.binding(5, BindMode.BALANCED) == [0, 1, 2, 10, 11]
