"""Preset registry, designator resolution, and default-platform parity."""

import pytest

from repro.api import Session, WorkloadSpec
from repro.platform import (
    DEFAULT_PLATFORM,
    default_platform,
    get_platform,
    platform_names,
    resolve_platform,
    save_platform_file,
)
from repro.platform.spec import PlatformError, PlatformSpec
from repro.simcore.machine import Machine, MachineSpec


def test_registry_contents():
    names = platform_names()
    assert names[0] == DEFAULT_PLATFORM == "ivybridge-2x10"
    assert len(names) >= 3  # the default plus at least two sweepable presets
    for name in names:
        spec = get_platform(name)
        assert spec.name == name
    with pytest.raises(PlatformError, match="unknown platform"):
        get_platform("pentium-3")


def test_default_preset_is_the_legacy_machinespec():
    """The paper's node: the preset and the legacy default must agree
    exactly, or every golden fixture in the repo would shift."""
    assert default_platform() == MachineSpec().to_platform()


def test_resolve_platform_accepts_every_designator(tmp_path):
    assert resolve_platform(None) == default_platform()
    spec = get_platform("desktop-1x8")
    assert resolve_platform(spec) is spec
    assert resolve_platform("desktop-1x8") == spec
    assert resolve_platform(MachineSpec()) == default_platform()
    path = save_platform_file(spec, tmp_path / "node.toml")
    assert resolve_platform(str(path)) == spec
    with pytest.raises(PlatformError, match="unknown platform"):
        resolve_platform("no-such-preset")
    with pytest.raises(PlatformError, match="cannot resolve"):
        resolve_platform(42)


def test_machine_accepts_platform_designators():
    machine = Machine("hybrid-4p8e")
    assert machine.platform.name == "hybrid-4p8e"
    assert machine.spec is machine.platform  # legacy spelling
    assert len(machine.cores) == 12
    assert [c.socket for c in machine.cores] == [0] * 4 + [1] * 8


def run_fib(**session_kwargs):
    return Session(runtime="hpx", cores=4, **session_kwargs).run(WorkloadSpec.parse("fib"), params={"n": 12})


def test_default_platform_reproduces_legacy_numbers():
    """platform=None, the preset by name, and the legacy MachineSpec
    must be bit-identical — the refactor moved the math, not changed it."""
    base = run_fib()
    for kwargs in ({"platform": "ivybridge-2x10"}, {"machine": MachineSpec()}):
        other = run_fib(**kwargs)
        assert other.exec_time_ns == base.exec_time_ns
        assert other.counters == base.counters
        assert other.engine_events == base.engine_events


def test_platforms_actually_differ():
    default = run_fib()
    results = {default.exec_time_ns}
    for name in ("desktop-1x8", "epyc-2x64", "hybrid-4p8e"):
        result = run_fib(platform=name)
        assert result.verified
        results.add(result.exec_time_ns)
    assert len(results) >= 3  # the platform axis moves the simulation


def test_session_rejects_platform_and_machine_together():
    with pytest.raises(ValueError, match="not both"):
        Session(platform="desktop-1x8", machine=MachineSpec())


def test_papi_substrate_respects_platform_events():
    from repro.papi.hw import PapiSubstrate

    narrow = PlatformSpec.from_json_dict(
        {
            **default_platform().to_json_dict(),
            "papi_events": ["OFFCORE_REQUESTS:ALL_DATA_RD"],
        }
    )
    papi = PapiSubstrate(Machine(narrow))
    assert papi.available("OFFCORE_REQUESTS:ALL_DATA_RD")
    assert not papi.available("OFFCORE_REQUESTS:DEMAND_RFO")
    with pytest.raises(KeyError, match="ivybridge-2x10"):
        papi.read("OFFCORE_REQUESTS:DEMAND_RFO")
