"""PlatformSpec validation, geometry, and lossless serialization."""

import pytest

from repro.platform.spec import KNOWN_PAPI_EVENTS, PlatformError, PlatformSpec, SocketSpec
from repro.simcore.machine import MachineSpec


def make_platform(**overrides):
    kwargs = {
        "name": "test-2x4",
        "sockets": (SocketSpec(cores=4), SocketSpec(cores=4)),
    }
    kwargs.update(overrides)
    return PlatformSpec(**kwargs)


# -- validation -------------------------------------------------------------


def test_rejects_empty_name_and_no_sockets():
    with pytest.raises(PlatformError, match="non-empty name"):
        make_platform(name="")
    with pytest.raises(PlatformError, match="at least one socket"):
        make_platform(sockets=())


def test_socket_validation():
    with pytest.raises(PlatformError, match="at least one core"):
        SocketSpec(cores=0)
    with pytest.raises(PlatformError, match="freq_ghz"):
        SocketSpec(cores=1, freq_ghz=0)
    with pytest.raises(PlatformError, match="l3_bytes"):
        SocketSpec(cores=1, l3_bytes=0)
    with pytest.raises(PlatformError, match="bandwidths"):
        SocketSpec(cores=1, peak_bw=-1.0)


def test_platform_scalar_validation():
    with pytest.raises(PlatformError, match="cross_socket_factor"):
        make_platform(cross_socket_factor=0.5)
    with pytest.raises(PlatformError, match="ram_bytes"):
        make_platform(ram_bytes=0)
    with pytest.raises(PlatformError, match="ipc"):
        make_platform(ipc=0)
    with pytest.raises(PlatformError, match="l3_pressure_alpha"):
        make_platform(l3_pressure_alpha=-0.1)


def test_numa_matrix_validation():
    with pytest.raises(PlatformError, match="2x2 matrix"):
        make_platform(numa_distance=((1.0,),))
    with pytest.raises(PlatformError, match="diagonal must be 1.0"):
        make_platform(numa_distance=((1.5, 2.0), (2.0, 1.0)))
    with pytest.raises(PlatformError, match=r"numa_distance\[0\]\[1\] must be >= 1"):
        make_platform(numa_distance=((1.0, 0.5), (2.0, 1.0)))
    ok = make_platform(numa_distance=[[1.0, 2.0], [2.0, 1.0]])
    assert ok.numa_distance == ((1.0, 2.0), (2.0, 1.0))  # normalized to tuples


def test_unknown_papi_events_rejected():
    with pytest.raises(PlatformError, match="unknown papi event"):
        make_platform(papi_events=("NOT_AN_EVENT",))
    subset = make_platform(papi_events=KNOWN_PAPI_EVENTS[:2])
    assert subset.papi_events == KNOWN_PAPI_EVENTS[:2]


# -- geometry ---------------------------------------------------------------


def test_geometry_even_shape():
    p = make_platform()
    assert p.total_cores == 8
    assert p.num_sockets == 2
    assert p.homogeneous
    assert [p.socket_of(i) for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
    assert p.core_local(5) == (1, 1)
    assert list(p.core_range(1)) == [4, 5, 6, 7]


def test_geometry_uneven_shape():
    p = PlatformSpec(name="uneven", sockets=(SocketSpec(cores=3), SocketSpec(cores=5)))
    assert not p.homogeneous
    assert p.total_cores == 8
    assert [p.socket_of(i) for i in range(8)] == [0, 0, 0, 1, 1, 1, 1, 1]
    assert p.core_local(3) == (1, 0)
    assert p.socket_spec_of(7).cores == 5
    with pytest.raises(IndexError):
        p.socket_of(8)


def test_interconnect_factors():
    uniform = make_platform(cross_socket_factor=1.6)
    assert uniform.numa_factor(0, 0) == 1.0
    assert uniform.numa_factor(0, 1) == 1.6
    assert uniform.remote_factor(0) == 1.6

    single = PlatformSpec(name="one", sockets=(SocketSpec(cores=4),), cross_socket_factor=1.6)
    assert single.remote_factor(0) == 1.6  # no neighbours: the scalar default

    numa = make_platform(numa_distance=((1.0, 2.5), (1.5, 1.0)))
    assert numa.numa_factor(0, 1) == 2.5
    assert numa.numa_factor(1, 0) == 1.5  # asymmetric matrices are allowed
    assert numa.remote_factor(0) == 2.5


# -- serialization ----------------------------------------------------------


def test_json_dict_roundtrip_is_lossless():
    p = make_platform(
        cross_socket_factor=1.9,
        numa_distance=((1.0, 2.0), (2.0, 1.0)),
        ipc=2.1,
        papi_events=KNOWN_PAPI_EVENTS[:3],
    )
    assert PlatformSpec.from_json_dict(p.to_json_dict()) == p


def test_from_json_dict_schema_validation():
    with pytest.raises(PlatformError, match="missing required key"):
        PlatformSpec.from_json_dict({"name": "x"})
    with pytest.raises(PlatformError, match="unknown key"):
        PlatformSpec.from_json_dict({"name": "x", "sockets": [{"cores": 2}], "frequency": 3.0})
    with pytest.raises(PlatformError, match="unknown key"):
        PlatformSpec.from_json_dict({"name": "x", "sockets": [{"cores": 2, "l3": 1}]})
    with pytest.raises(PlatformError, match="must be a list"):
        PlatformSpec.from_json_dict({"name": "x", "sockets": "2x10"})


def test_machinespec_to_platform_is_lossless():
    spec = MachineSpec(sockets=2, cores_per_socket=6, freq_ghz=3.0, cross_socket_factor=1.4)
    platform = spec.to_platform()
    assert platform.total_cores == spec.total_cores
    assert [platform.socket_of(i) for i in range(12)] == [spec.socket_of(i) for i in range(12)]
    assert MachineSpec.from_platform(platform) == spec


def test_from_platform_rejects_uneven_shapes():
    uneven = PlatformSpec(name="uneven", sockets=(SocketSpec(cores=3), SocketSpec(cores=5)))
    with pytest.raises(ValueError, match="no MachineSpec spelling"):
        MachineSpec.from_platform(uneven)


def test_describe_mentions_every_socket():
    text = make_platform(numa_distance=((1.0, 2.0), (2.0, 1.0))).describe()
    assert "socket#0" in text and "socket#1" in text
    assert "numa distances" in text
