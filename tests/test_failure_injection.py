"""Failure injection: how the runtimes behave when task bodies misuse
the API or die at awkward moments.

These document guarantees (and non-guarantees, matching C++ semantics:
a task dying while holding a mutex deadlocks its waiters).
"""

import pytest

from repro.kernel.scheduler import StdRuntime
from repro.runtime.scheduler import DeadlockError, HpxRuntime
from repro.simcore.events import Engine, SimulationError
from repro.simcore.machine import Machine


def hpx(cores=2):
    return HpxRuntime(Engine(), Machine(), num_workers=cores)


def test_exception_before_first_yield():
    def bad(ctx):
        raise RuntimeError("immediate")
        yield  # pragma: no cover

    rt = hpx()
    with pytest.raises(RuntimeError, match="immediate"):
        rt.run_to_completion(bad)
    assert rt.stats.live_tasks == 0


def test_exception_in_one_of_many_children():
    def child(ctx, k):
        yield ctx.compute(100)
        if k == 3:
            raise ValueError("child 3")
        return k

    def parent(ctx):
        futs = []
        for k in range(6):
            futs.append((yield ctx.async_(child, k)))
        values = yield ctx.wait_all(futs)
        return values

    rt = hpx(4)
    with pytest.raises(ValueError, match="child 3"):
        rt.run_to_completion(parent)
    # Every sibling still ran to termination; nothing leaked.
    assert rt.stats.live_tasks == 0
    assert rt.stats.tasks_executed == rt.stats.tasks_created


def test_uncaught_exception_while_holding_mutex_deadlocks_waiters():
    """Matching C++: an exception does not unlock a raw mutex."""

    def dying_holder(ctx, mutex):
        yield ctx.lock(mutex)
        raise RuntimeError("died holding the lock")

    def waiter(ctx, mutex):
        yield ctx.lock(mutex)
        yield ctx.unlock(mutex)
        return "got it"

    def parent(ctx):
        mutex = ctx.new_mutex()
        f1 = yield ctx.async_(dying_holder, mutex)
        f2 = yield ctx.async_(waiter, mutex)
        try:
            yield ctx.wait(f1)
        except RuntimeError:
            pass
        value = yield ctx.wait(f2)  # never ready: mutex still held
        return value

    rt = hpx(2)
    with pytest.raises(DeadlockError):
        rt.run_to_completion(parent)


def test_caught_exception_inside_body_continues():
    def child(ctx):
        yield ctx.compute(10)
        raise ValueError("recoverable")

    def parent(ctx):
        fut = yield ctx.async_(child)
        try:
            yield ctx.wait(fut)
        except ValueError:
            yield ctx.compute(50)
            return "recovered"
        return "unreachable"

    assert hpx().run_to_completion(parent) == "recovered"


def test_yielding_garbage_is_reported():
    def bad(ctx):
        yield "not an effect"

    rt = hpx()
    with pytest.raises(TypeError, match="non-effect"):
        rt.run_to_completion(bad)


def test_unlock_of_unowned_mutex_fails_the_task():
    def bad(ctx):
        mutex = ctx.new_mutex()
        yield ctx.unlock(mutex)

    rt = hpx()
    with pytest.raises(RuntimeError, match="does not own"):
        rt.run_to_completion(bad)


def test_kernel_exception_in_child():
    def child(ctx):
        yield ctx.compute(10)
        raise KeyError("kernel child")

    def parent(ctx):
        fut = yield ctx.async_(child)
        value = yield ctx.wait(fut)
        return value

    rt = StdRuntime(Engine(), Machine(), num_workers=2)
    with pytest.raises(KeyError, match="kernel child"):
        rt.run_to_completion(parent)
    assert rt.stats.live_threads == 0


def test_engine_budget_guards_runaway_simulations():
    engine = Engine(max_events=500)
    rt = HpxRuntime(engine, Machine(), num_workers=1)

    def endless(ctx):
        while True:
            yield ctx.compute(10)

    rt.submit(endless)
    with pytest.raises(SimulationError, match="budget"):
        engine.run()


def test_negative_compute_rejected():
    def bad(ctx):
        yield ctx.compute(-5)

    rt = hpx()
    with pytest.raises(ValueError, match="non-negative"):
        rt.run_to_completion(bad)
