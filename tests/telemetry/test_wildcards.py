"""Wildcard discovery on asymmetric platforms; nested statistics names.

The ISSUE's satellite coverage: ``worker-thread#*`` and ``locality#*``
expansion on the hybrid-4p8e preset (4 fast + 8 slow cores across two
uneven sockets), and nested-brace statistics counter names
round-tripping through ``CounterName.parse``.
"""

import pytest

from repro.counters.base import CounterEnvironment
from repro.counters.names import CounterName, format_counter_name
from repro.counters.registry import build_default_registry
from repro.papi.hw import PapiSubstrate
from repro.platform.presets import get_platform
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine
from repro.telemetry.pipeline import TelemetryPipeline


@pytest.fixture
def hybrid_registry():
    """A registry over an HPX runtime using every hybrid-4p8e core."""
    engine = Engine()
    machine = Machine(get_platform("hybrid-4p8e"))
    runtime = HpxRuntime(engine, machine, num_workers=12)
    env = CounterEnvironment(
        engine=engine, runtime=runtime, machine=machine, papi=PapiSubstrate(machine)
    )
    return build_default_registry(env)


def test_worker_thread_wildcard_covers_asymmetric_topology(hybrid_registry):
    pipe = TelemetryPipeline(
        hybrid_registry, ["/threads{locality#0/worker-thread#*}/time/average"]
    )
    # 4 performance + 8 efficiency cores: one stream per worker thread.
    assert len(pipe) == 12
    assert pipe.names() == [
        f"/threads{{locality#0/worker-thread#{i}}}/time/average" for i in range(12)
    ]


def test_locality_wildcard_expands(hybrid_registry):
    pipe = TelemetryPipeline(hybrid_registry, ["/threads{locality#*/total}/idle-rate"])
    assert pipe.names() == ["/threads{locality#0/total}/idle-rate"]


def test_wildcard_sampling_on_hybrid_platform(hybrid_registry):
    """Expanded counters actually evaluate on the asymmetric node."""
    pipe = TelemetryPipeline(
        hybrid_registry, ["/threads{locality#0/worker-thread#*}/count/cumulative"]
    )
    values = pipe.sample()
    assert len(values) == 12
    assert pipe.frame.names() == pipe.names()


def test_statistics_counter_resolves_through_pipeline(hybrid_registry):
    nested = "/statistics{/threads{locality#0/total}/idle-rate}/rolling_average@3"
    pipe = TelemetryPipeline(hybrid_registry, [nested])
    assert pipe.names() == [nested]
    (sample,) = pipe.sample()
    assert str(sample.name) == nested


def test_nested_statistics_name_round_trips_through_parse():
    text = "/statistics{/threads{locality#0/worker-thread#2}/time/average}/rolling_average@5"
    name = CounterName.parse(text)
    assert name.object_name == "statistics"
    assert name.counter_name == "rolling_average"
    assert name.parameters == "5"
    assert name.embedded_instance == "/threads{locality#0/worker-thread#2}/time/average"
    assert format_counter_name(name) == text
    assert str(name) == text
    # The embedded name is itself parseable, one brace level down.
    inner = CounterName.parse(name.embedded_instance)
    assert inner.instance_name == "worker-thread"
    assert inner.instance_index == 2


def test_parse_classmethod_matches_module_function():
    from repro.counters.names import parse_counter_name

    text = "/threads{locality#0/worker-thread#*}/count/cumulative"
    assert CounterName.parse(text) == parse_counter_name(text)
    assert CounterName.parse(text).has_wildcard


# -- plugin-provided counters ------------------------------------------------


@pytest.fixture
def hybrid_plugin_registry():
    """hybrid-4p8e registry with a plugin counter instanced per shard."""
    from repro.counters import AppCounterSet, build_registry

    counters = AppCounterSet("plugdemo")
    handles = [counters.counter("events", instance=("shard", i)) for i in range(5)]
    engine = Engine()
    machine = Machine(get_platform("hybrid-4p8e"))
    runtime = HpxRuntime(engine, machine, num_workers=12)
    env = CounterEnvironment(
        engine=engine, runtime=runtime, machine=machine, papi=PapiSubstrate(machine)
    )
    return build_registry(env, providers=(counters,)), handles


def test_wildcard_discovery_over_plugin_instances(hybrid_plugin_registry):
    """``#*`` expansion works identically for plugin-declared counters."""
    registry, _handles = hybrid_plugin_registry
    pipe = TelemetryPipeline(registry, ["/plugdemo{locality#0/shard#*}/events"])
    assert pipe.names() == [f"/plugdemo{{locality#0/shard#{i}}}/events" for i in range(5)]


def test_plugin_wildcard_streams_live_values(hybrid_plugin_registry):
    registry, handles = hybrid_plugin_registry
    pipe = TelemetryPipeline(registry, ["/plugdemo{locality#0/shard#*}/events"])
    for i, handle in enumerate(handles):
        handle.add(i + 1)
    values = pipe.sample()
    assert [v.value for v in values] == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_plugin_and_builtin_wildcards_mix_in_one_pipeline(hybrid_plugin_registry):
    registry, _handles = hybrid_plugin_registry
    pipe = TelemetryPipeline(
        registry,
        [
            "/threads{locality#0/worker-thread#*}/count/cumulative",
            "/plugdemo{locality#0/shard#*}/events",
        ],
    )
    assert len(pipe) == 12 + 5
    assert len(pipe.sample()) == 17
