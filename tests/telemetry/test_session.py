"""Session + telemetry integration: config plumbing, sinks, acceptance."""

import io

import pytest

from repro.api import Session, WorkloadSpec, TelemetryConfig
from repro.platform.presets import platform_names
from repro.simcore.clock import ms
from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.sinks import JsonLinesSink, parse_jsonl_stream


def test_run_result_carries_frame_and_totals():
    result = Session(runtime="hpx", cores=2).run(WorkloadSpec.parse("fib"), params={"n": 10})
    assert result.telemetry is not None
    assert len(result.telemetry) > 0
    # The legacy dict is the frame's final-totals view, bit for bit.
    assert result.counters == result.telemetry.totals()


def test_collect_counters_false_means_no_frame():
    result = Session(runtime="hpx", cores=2).run(
        WorkloadSpec.parse("fib"), params={"n": 10}, collect_counters=False
    )
    assert result.telemetry is None
    assert result.counters == {}


def test_session_level_telemetry_config_applies_to_runs():
    sink = TelemetryFrame()
    session = Session(
        runtime="hpx",
        cores=2,
        telemetry=TelemetryConfig(counters=("/runtime/uptime",), sinks=(sink,), run_id="sess"),
    )
    result = session.run(WorkloadSpec.parse("fib"), params={"n": 10})
    assert result.telemetry.names() == ["/runtime{locality#0/total}/uptime"]
    assert len(sink) == 1
    assert sink.samples[0].run_id == "sess"


def test_per_run_telemetry_overrides_session_default():
    session = Session(
        runtime="hpx", cores=2, telemetry=TelemetryConfig(counters=("/runtime/uptime",))
    )
    result = session.run(
        WorkloadSpec.parse("fib"),
        params={"n": 10},
        telemetry=TelemetryConfig(counters=("/threads/count/cumulative",)),
    )
    assert result.telemetry.names() == ["/threads{locality#0/total}/count/cumulative"]


def test_interval_sampling_streams_to_sinks():
    buf = io.StringIO()
    session = Session(runtime="hpx", cores=4)
    result = session.run(
        WorkloadSpec.parse("fib"),
        params={"n": 16},
        telemetry=TelemetryConfig(
            counters=("/threads/count/cumulative",),
            interval_ns=ms(0.01),
            sinks=(JsonLinesSink(buf),),
        ),
    )
    frame = parse_jsonl_stream(buf.getvalue())
    # Periodic samples plus the final end-of-run evaluation.
    assert len(frame) == len(result.telemetry) > 1
    assert frame.samples == result.telemetry.samples
    assert result.query_samples  # the cadence driver recorded them too


def test_default_run_id_identifies_the_run():
    result = Session(runtime="std", cores=2).run(WorkloadSpec.parse("fib"), params={"n": 10})
    assert result.telemetry.samples[0].run_id == "fib/std/c2"


def test_query_interval_requires_counters():
    with pytest.raises(ValueError, match="collect_counters"):
        Session(runtime="hpx").run(
            WorkloadSpec.parse("fib"),
            params={"n": 8},
            collect_counters=False,
            telemetry=TelemetryConfig(interval_ns=ms(1)),
        )


@pytest.mark.parametrize("platform", platform_names())
def test_wildcard_query_acceptance_on_every_preset(platform):
    """ISSUE acceptance: the worker-thread#* spec expands and samples on
    every preset platform without error."""
    session = Session(runtime="hpx", cores=2, platform=platform)
    result = session.run(
        WorkloadSpec.parse("fib"),
        params={"n": 10},
        counters=("/threads{locality#0/worker-thread#*}/time/average",),
    )
    assert not result.aborted
    assert result.telemetry.names() == [
        "/threads{locality#0/worker-thread#0}/time/average",
        "/threads{locality#0/worker-thread#1}/time/average",
    ]


def test_abort_still_flushes_telemetry():
    """An aborted run keeps the samples collected up to the abort."""
    sink = TelemetryFrame()
    result = Session(runtime="std", cores=4).run(
        WorkloadSpec.parse("fib"),
        params={"n": 19},
        telemetry=TelemetryConfig(counters=("/runtime/uptime",), sinks=(sink,)),
    )
    assert result.aborted
    assert result.telemetry is not None
