"""TelemetryFrame: sink behaviour, queries, legacy adaptation."""

import pytest

from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.sample import Sample


def s(name, t, v, unit="ns", run_id="r"):
    return Sample(
        name=name, instance="locality#0/total", timestamp_ns=t, value=v, unit=unit, run_id=run_id
    )


@pytest.fixture
def frame():
    f = TelemetryFrame()
    f.emit(s("/a/x", 10, 1.0))
    f.emit(s("/b/y", 10, 5.0, unit="0.01%"))
    f.emit(s("/a/x", 20, 2.0))
    f.emit(s("/b/y", 20, 6.0, unit="0.01%"))
    return f


def test_emit_and_container_protocol(frame):
    assert len(frame) == 4
    assert [x.value for x in frame] == [1.0, 5.0, 2.0, 6.0]
    frame.close()  # no-op, part of the sink interface
    assert len(frame) == 4


def test_names_in_first_appearance_order(frame):
    assert frame.names() == ["/a/x", "/b/y"]


def test_series_and_value(frame):
    assert [x.value for x in frame.series("/a/x")] == [1.0, 2.0]
    assert frame.value("/b/y") == 6.0


def test_value_keyerror_lists_known_names(frame):
    with pytest.raises(KeyError, match="/a/x"):
        frame.value("/missing")


def test_totals_last_value_wins(frame):
    assert frame.totals() == {"/a/x": 2.0, "/b/y": 6.0}


def test_units_and_timestamps(frame):
    assert frame.units() == {"/a/x": "ns", "/b/y": "0.01%"}
    assert frame.timestamps() == [10, 20]


def test_rows_round_trip(frame):
    clone = TelemetryFrame.from_rows(frame.to_rows())
    assert clone.samples == frame.samples


def test_from_counters_adapts_legacy_dict():
    counters = {
        "/threads{locality#0/total}/time/average": 1500.25,
        "/threads{locality#0/total}/idle-rate": 123.0,
    }
    frame = TelemetryFrame.from_counters(counters, timestamp_ns=42, run_id="legacy")
    assert frame.totals() == counters
    assert all(x.timestamp_ns == 42 and x.run_id == "legacy" for x in frame)
    assert frame.samples[0].instance == "locality#0/total"
