"""Sample record model: round trips and instance extraction."""

import pytest

from repro.telemetry.sample import SAMPLE_FIELDS, Sample, instance_of


def test_to_row_uses_sample_field_order():
    sample = Sample(
        name="/threads{locality#0/total}/time/average",
        instance="locality#0/total",
        timestamp_ns=1234,
        value=56.25,
        unit="ns",
        run_id="fib/hpx/c4",
    )
    row = sample.to_row()
    assert tuple(row) == SAMPLE_FIELDS
    assert row["timestamp_ns"] == 1234
    assert row["value"] == 56.25


def test_row_round_trip_is_lossless():
    sample = Sample(
        name="/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD",
        instance="locality#0/total",
        timestamp_ns=987654321,
        value=0.1 + 0.2,  # a float that doesn't round-trip through :g
        unit="",
        run_id="",
    )
    assert Sample.from_row(sample.to_row()) == sample


def test_from_row_defaults_optional_fields():
    sample = Sample.from_row(
        {"name": "/runtime{locality#0/total}/uptime", "timestamp_ns": 5, "value": 1}
    )
    assert sample.instance == ""
    assert sample.unit == ""
    assert sample.run_id == ""
    assert sample.value == 1.0


def test_samples_are_frozen():
    sample = Sample(name="/x/y", instance="", timestamp_ns=0, value=0.0)
    with pytest.raises(AttributeError):
        sample.value = 1.0


def test_instance_of_resolves_instance_part():
    assert (
        instance_of("/threads{locality#0/worker-thread#3}/time/average")
        == "locality#0/worker-thread#3"
    )
    # Omitted instance defaults to locality#0/total.
    assert instance_of("/runtime/uptime") == "locality#0/total"


def test_instance_of_statistics_counter_is_embedded_name():
    nested = "/statistics{/threads{locality#0/total}/idle-rate}/rolling_average@3"
    assert instance_of(nested) == "/threads{locality#0/total}/idle-rate"


def test_instance_of_degrades_on_malformed_names():
    assert instance_of("not-a-counter") == ""
