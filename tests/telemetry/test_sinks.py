"""Streaming sinks: CSV, JSON lines, Chrome trace, validation."""

import io
import json

import pytest

from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.sample import SAMPLE_FIELDS, Sample
from repro.telemetry.sinks import (
    ChromeTraceSink,
    CsvSink,
    JsonLinesSink,
    TelemetrySink,
    ensure_sink,
    parse_jsonl_stream,
)

SAMPLES = [
    Sample(
        name="/threads{locality#0/total}/time/average",
        instance="locality#0/total",
        timestamp_ns=1000,
        value=0.1 + 0.2,  # needs repr precision to round-trip
        unit="ns",
        run_id="fib/hpx/c4",
    ),
    Sample(
        name="/threads{locality#0/total}/idle-rate",
        instance="locality#0/total",
        timestamp_ns=2000,
        value=250.0,
        unit="0.01%",
        run_id="fib/hpx/c4",
    ),
]


def test_ensure_sink_accepts_frames_and_sinks():
    assert ensure_sink(TelemetryFrame()) is not None
    assert ensure_sink(JsonLinesSink(io.StringIO())) is not None


@pytest.mark.parametrize("bad", [object(), 42, "sink", lambda s: None])
def test_ensure_sink_rejects_non_sinks(bad):
    with pytest.raises(TypeError, match="emit|close"):
        ensure_sink(bad)


def test_frame_satisfies_sink_protocol():
    assert isinstance(TelemetryFrame(), TelemetrySink)


def test_csv_sink_writes_header_and_rows():
    buf = io.StringIO()
    sink = CsvSink(buf)
    for sample in SAMPLES:
        sink.emit(sample)
    sink.close()  # borrowed stream: flushed, not closed
    lines = buf.getvalue().splitlines()
    assert lines[0] == ",".join(SAMPLE_FIELDS)
    assert len(lines) == 3
    assert lines[2] == (
        "/threads{locality#0/total}/idle-rate,locality#0/total,2000,250,0.01%,fib/hpx/c4"
    )


def test_csv_sink_owns_path_destination(tmp_path):
    path = tmp_path / "stream.csv"
    sink = CsvSink(path)
    sink.emit(SAMPLES[0])
    sink.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert lines[1].startswith("/threads{locality#0/total}/time/average,")


def test_jsonl_round_trip_is_bit_identical():
    buf = io.StringIO()
    sink = JsonLinesSink(buf)
    for sample in SAMPLES:
        sink.emit(sample)
    sink.close()
    parsed = parse_jsonl_stream(buf.getvalue())
    assert parsed.samples == SAMPLES
    assert parsed.totals()[SAMPLES[0].name] == 0.1 + 0.2  # exact, not :g-rounded


def test_jsonl_lines_are_self_contained_objects():
    buf = io.StringIO()
    sink = JsonLinesSink(buf)
    sink.emit(SAMPLES[0])
    row = json.loads(buf.getvalue().splitlines()[0])
    assert set(row) == set(SAMPLE_FIELDS)


def test_parse_jsonl_stream_skips_blank_lines():
    buf = io.StringIO()
    sink = JsonLinesSink(buf)
    sink.emit(SAMPLES[0])
    text = "\n" + buf.getvalue() + "\n\n"
    assert len(parse_jsonl_stream(text)) == 1


def test_chrome_trace_sink_renders_counter_events():
    sink = ChromeTraceSink()
    for sample in SAMPLES:
        sink.emit(sample)
    doc = json.loads(sink.render())
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert len(counters) == 2
    assert counters[0]["name"] == SAMPLES[0].name
    assert counters[0]["args"]["value"] == SAMPLES[0].value
    assert counters[0]["ts"] == 1.0  # ns -> us


def test_chrome_trace_sink_writes_dest_on_close(tmp_path):
    path = tmp_path / "trace.json"
    sink = ChromeTraceSink(path)
    sink.emit(SAMPLES[0])
    sink.close()
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_chrome_trace_fold_combines_tasks_and_counters():
    from repro.trace.export import to_chrome_trace
    from repro.trace.recorder import TaskEvent

    events = [
        TaskEvent(time_ns=0, kind="activate", tid=1, worker=0, description="task"),
        TaskEvent(time_ns=500, kind="terminate", tid=1, worker=0, description="task"),
    ]
    frame = TelemetryFrame(SAMPLES)
    doc = json.loads(to_chrome_trace(events, telemetry=frame))
    phases = sorted({e["ph"] for e in doc["traceEvents"]})
    assert phases == ["C", "X"]
    # Single-argument calls (the historical signature) still work.
    tasks_only = json.loads(to_chrome_trace(events))
    assert {e["ph"] for e in tasks_only["traceEvents"]} == {"X"}
