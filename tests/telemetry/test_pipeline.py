"""TelemetryPipeline: resolution, sampling, buffering, sink fan-out."""

import io

import pytest

from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.pipeline import DEFAULT_BUFFER_LIMIT, TelemetryConfig, TelemetryPipeline
from repro.telemetry.sinks import JsonLinesSink, parse_jsonl_stream

from tests.conftest import fib_body


def test_pipeline_resolves_counter_set(registry):
    pipe = TelemetryPipeline(registry, ["/threads/time/average", "/runtime/uptime"])
    assert len(pipe) == 2
    assert pipe.names() == [
        "/threads{locality#0/total}/time/average",
        "/runtime{locality#0/total}/uptime",
    ]


def test_pipeline_expands_wildcards(registry):
    pipe = TelemetryPipeline(registry, ["/threads{locality#0/worker-thread#*}/count/cumulative"])
    assert len(pipe) == 4  # hpx4: one per worker
    assert pipe.names()[0] == "/threads{locality#0/worker-thread#0}/count/cumulative"


def test_sample_values_match_direct_evaluation(registry, hpx4):
    """The bit-identity contract: sampling through the pipeline returns
    exactly what evaluate_active_counters returns."""
    from repro.counters.manager import ActiveCounters

    specs = ["/threads/count/cumulative", "/threads/time/average"]
    pipe = TelemetryPipeline(registry, specs)
    direct = ActiveCounters(registry, specs)
    hpx4.run_to_completion(fib_body, 10)
    expected = direct.evaluate_active_counters()
    got = pipe.sample()
    assert [(v.name, v.value, v.time) for v in got] == [
        (v.name, v.value, v.time) for v in expected
    ]
    assert pipe.frame.totals() == {str(v.name): v.value for v in expected}


def test_samples_carry_metadata(registry, hpx4, engine):
    pipe = TelemetryPipeline(registry, ["/threads/time/average"], run_id="test/r1")
    hpx4.run_to_completion(fib_body, 8)
    pipe.sample()
    (sample,) = pipe.frame.samples
    assert sample.run_id == "test/r1"
    assert sample.instance == "locality#0/total"
    assert sample.unit == "ns"
    assert sample.timestamp_ns == engine.now


def test_buffer_limit_drops_are_accounted(registry):
    sink = TelemetryFrame()
    pipe = TelemetryPipeline(registry, ["/runtime/uptime"], buffer_limit=3, sinks=(sink,))
    for _ in range(5):
        pipe.sample()
    assert len(pipe.frame) == 3  # bounded retention
    assert pipe.dropped == 2  # ... with drop accounting
    assert pipe.samples_recorded == 5
    assert len(sink) == 5  # streaming sinks still see everything


def test_sink_fan_out(registry):
    a, b = TelemetryFrame(), TelemetryFrame()
    pipe = TelemetryPipeline(registry, ["/runtime/uptime"], sinks=(a, b))
    pipe.sample()
    assert len(a) == len(b) == 1


def test_record_rejects_wrong_arity(registry):
    pipe = TelemetryPipeline(registry, ["/runtime/uptime", "/threads/time/average"])
    with pytest.raises(ValueError, match="2 counter values"):
        pipe.record([])


def test_invalid_sink_rejected_at_construction(registry):
    with pytest.raises(TypeError, match="emit"):
        TelemetryPipeline(registry, ["/runtime/uptime"], sinks=(object(),))


def test_context_manager_starts_and_closes(registry, hpx4, tmp_path):
    path = tmp_path / "out.jsonl"
    sinks = (JsonLinesSink(path),)
    with TelemetryPipeline(registry, ["/threads/time/average"], sinks=sinks) as pipe:
        assert hpx4.instrument_ns > 0  # instrumentation active
        hpx4.run_to_completion(fib_body, 8)
        pipe.sample()
    assert hpx4.instrument_ns == 0
    assert len(parse_jsonl_stream(path.read_text())) == 1


def test_reset_rebaselines(registry, hpx4):
    pipe = TelemetryPipeline(registry, ["/threads/count/cumulative"])
    hpx4.run_to_completion(fib_body, 8)
    pipe.reset()
    assert pipe.sample()[0].value == 0.0


def test_config_validation():
    with pytest.raises(ValueError, match="interval_ns"):
        TelemetryConfig(interval_ns=0)
    with pytest.raises(ValueError, match="buffer_limit"):
        TelemetryConfig(buffer_limit=0)
    with pytest.raises(TypeError, match="emit"):
        TelemetryConfig(sinks=(42,))
    cfg = TelemetryConfig(counters=["/runtime/uptime"])
    assert cfg.counters == ("/runtime/uptime",)
    assert cfg.buffer_limit == DEFAULT_BUFFER_LIMIT


def test_buffer_limit_validation(registry):
    with pytest.raises(ValueError, match="buffer_limit"):
        TelemetryPipeline(registry, ["/runtime/uptime"], buffer_limit=0)
