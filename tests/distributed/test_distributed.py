"""Distributed substrate: parcels, AGAS, remote execution and counters."""

import pytest

from repro.distributed import DistributedSystem, NetworkParams
from repro.distributed.agas import AgasError
from repro.simcore.events import Engine
from repro.simcore.machine import MachineSpec


@pytest.fixture
def system():
    engine = Engine()
    return DistributedSystem(
        engine,
        localities=3,
        cores_per_locality=2,
        machine_spec=MachineSpec(),
    )


def _compute_task(ctx, n):
    yield ctx.compute(5_000)
    return n * n


def test_system_validation():
    with pytest.raises(ValueError):
        DistributedSystem(Engine(), localities=0, cores_per_locality=1)


def test_remote_async_returns_value(system):
    fut = system.async_remote(0, 1, _compute_task, 7)
    system.run()
    assert fut.value() == 49


def test_local_async_short_circuits(system):
    fut = system.async_remote(2, 2, _compute_task, 3)
    system.run()
    assert fut.value() == 9
    # No parcels for same-locality calls.
    assert system.localities[2].parcelport.stats.sent == 0


def test_remote_call_takes_network_time(system):
    fut = system.async_remote(0, 1, _compute_task, 1)
    system.run()
    # Two transits + 5 us of work: well above the local-only time.
    assert system.engine.now > 2 * system.network.latency_ns + 5_000


def test_remote_exception_travels_home(system):
    def boom(ctx):
        yield ctx.compute(10)
        raise ValueError("remote failure")

    fut = system.async_remote(0, 2, boom)
    system.run()
    with pytest.raises(ValueError, match="remote failure"):
        fut.value()


def test_parcel_accounting(system):
    fut = system.async_remote(0, 1, _compute_task, 2)
    system.run()
    assert fut.is_ready
    sender = system.localities[0].parcelport.stats
    receiver = system.localities[1].parcelport.stats
    assert sender.sent == 1 and receiver.received == 1
    assert receiver.sent == 1 and sender.received == 1  # the result parcel
    assert sender.bytes_sent >= 512
    assert receiver.latency_sum_ns > 0


def test_parcel_to_unknown_locality_rejected(system):
    with pytest.raises(KeyError):
        system.localities[0].parcelport.send(9, _compute_task, ())


def test_parcel_to_self_rejected(system):
    with pytest.raises(ValueError, match="remote"):
        system.localities[0].parcelport.send(0, _compute_task, ())


def test_network_transit_model():
    net = NetworkParams(latency_ns=1000, bandwidth_bytes_per_s=1e9, serialize_ns_per_kb=100)
    # 1 KB: 1000 wire-latency + ~1000 bandwidth + 200 serialize-ish.
    t = net.transit_ns(1024)
    assert t == 1000 + 1024 + 200


def test_agas_bind_and_resolve(system):
    fut = system.register_name(1, "my/component", payload={"kind": "demo"})
    system.run()
    entry = fut.value()
    assert entry.locality == 1
    rfut = system.resolve_name(2, "my/component")
    system.run()
    assert rfut.value().payload == {"kind": "demo"}
    assert system.agas.stats.binds == 1
    assert system.agas.stats.resolves == 1


def test_agas_cache_hits(system):
    system.register_name(0, "cached/name").value
    system.run()
    f1 = system.resolve_name(2, "cached/name")
    system.run()
    before = system.agas.stats.resolves
    f2 = system.resolve_name(2, "cached/name")
    system.run()
    assert f2.value() == f1.value()
    assert system.agas.stats.resolves == before  # served from cache
    assert system.agas.stats.cache_hits >= 1


def test_agas_duplicate_bind_rejected(system):
    system.register_name(0, "dup")
    system.run()
    with pytest.raises(AgasError):
        system.agas.bind("dup", 1)


def test_agas_unknown_resolve(system):
    with pytest.raises(AgasError):
        system.agas.resolve("nope")


def test_remote_counter_query(system):
    """The paper: any counter is accessible remotely by name."""
    # Generate some work on locality 1 first.
    warm = system.async_remote(1, 1, _compute_task, 5)
    system.run()
    assert warm.value() == 25
    fut = system.query_counter(0, 1, "/threads{locality#0/total}/count/cumulative")
    system.run()
    # locality 1 executed the warm task plus the query task itself.
    assert fut.value() >= 1
    assert system.localities[0].parcelport.stats.sent >= 1


def test_parcel_counters_readable(system):
    fut = system.async_remote(0, 1, _compute_task, 1)
    system.run()
    registry = system.localities[0].registry
    sent = registry.create_counter("/parcels{locality#0/total}/count/sent")
    assert sent.read() == 1
    latency = registry.create_counter("/parcels{locality#0/total}/time/average-latency")
    assert latency.read() > 0  # the result parcel came back


def test_agas_counters_readable(system):
    system.register_name(1, "counted")
    system.run()
    registry = system.localities[0].registry
    binds = registry.create_counter("/agas{locality#0/total}/count/bind")
    assert binds.read() == 1


def test_remote_counter_perturbs_target_not_source(system):
    """In-band remote queries cost scheduler time on the *target*."""
    fut = system.query_counter(0, 2, "/runtime{locality#0/total}/uptime")
    system.run()
    assert fut.is_ready
    assert system.localities[2].runtime.stats.tasks_executed >= 1
    assert system.localities[0].runtime.stats.tasks_executed == 0
