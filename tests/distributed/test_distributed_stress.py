"""Property-style stress of the distributed substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import DistributedSystem
from repro.simcore.events import Engine


def _square(ctx, n):
    yield ctx.compute(1_000)
    return n * n


@settings(max_examples=10)
@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 50)),
        min_size=1,
        max_size=25,
    )
)
def test_property_all_remote_calls_resolve(calls):
    engine = Engine()
    system = DistributedSystem(engine, localities=3, cores_per_locality=2)
    futures = [(n, system.async_remote(src, dst, _square, n)) for src, dst, n in calls]
    system.run()
    for n, fut in futures:
        assert fut.is_ready
        assert fut.value() == n * n


@settings(max_examples=10)
@given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6), unique=True, max_size=10))
def test_property_agas_names_round_trip(names):
    engine = Engine()
    system = DistributedSystem(engine, localities=2, cores_per_locality=1)
    for i, name in enumerate(names):
        system.register_name(i % 2, name, payload=i)
    system.run()
    resolved = [system.resolve_name(1, name) for name in names]
    system.run()
    for i, fut in enumerate(resolved):
        assert fut.value().payload == i
        assert fut.value().locality == i % 2


def test_parcel_conservation():
    """Every parcel sent is received exactly once, system-wide."""
    engine = Engine()
    system = DistributedSystem(engine, localities=4, cores_per_locality=2)
    for k in range(12):
        system.async_remote(k % 4, (k + 1) % 4, _square, k)
    system.run()
    sent = sum(loc.parcelport.stats.sent for loc in system.localities)
    received = sum(loc.parcelport.stats.received for loc in system.localities)
    bytes_sent = sum(loc.parcelport.stats.bytes_sent for loc in system.localities)
    bytes_received = sum(loc.parcelport.stats.bytes_received for loc in system.localities)
    assert sent == received == 24  # 12 invocations + 12 result parcels
    assert bytes_sent == bytes_received


def test_deterministic_distributed_run():
    def run_once():
        engine = Engine()
        system = DistributedSystem(engine, localities=3, cores_per_locality=2)
        futs = [system.async_remote(0, d, _square, d) for d in (1, 2, 1)]
        system.run()
        return engine.now, [f.value() for f in futs]

    assert run_once() == run_once()
