"""Work-stealing deque semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.policies import LaunchPolicy
from repro.runtime.queues import TaskQueue
from repro.runtime.task import Task


def make_task(tid: int) -> Task:
    return Task(tid, lambda ctx: None, (), LaunchPolicy.ASYNC, parent_tid=None, home_socket=0)


def test_empty_queue():
    q = TaskQueue(0)
    assert len(q) == 0
    assert q.pop_head() is None
    assert q.steal_tail() is None


def test_owner_lifo():
    q = TaskQueue(0)
    q.push_head(make_task(1))
    q.push_head(make_task(2))
    assert q.pop_head().tid == 2  # most recent first: depth-first execution
    assert q.pop_head().tid == 1


def test_thief_takes_oldest():
    q = TaskQueue(0)
    q.push_head(make_task(1))
    q.push_head(make_task(2))
    assert q.steal_tail().tid == 1


def test_push_tail():
    q = TaskQueue(0)
    q.push_head(make_task(1))
    q.push_tail(make_task(2))
    assert q.pop_head().tid == 1
    assert q.pop_head().tid == 2


def test_stats():
    q = TaskQueue(0)
    q.push_head(make_task(1))
    q.push_tail(make_task(2))
    q.pop_head()
    q.steal_tail()
    assert q.stats.pushed == 2
    assert q.stats.popped == 1
    assert q.stats.stolen_from == 1


@given(st.lists(st.sampled_from(["push_head", "push_tail", "pop", "steal"]), max_size=60))
def test_property_no_lost_or_duplicated_tasks(ops):
    """Every pushed task is removed exactly once across pops and steals."""
    q = TaskQueue(0)
    next_tid = [0]
    pushed: set[int] = set()
    removed: list[int] = []
    for op in ops:
        if op in ("push_head", "push_tail"):
            task = make_task(next_tid[0])
            next_tid[0] += 1
            pushed.add(task.tid)
            getattr(q, op)(task)
        elif op == "pop":
            task = q.pop_head()
            if task is not None:
                removed.append(task.tid)
        else:
            task = q.steal_tail()
            if task is not None:
                removed.append(task.tid)
    while (task := q.pop_head()) is not None:
        removed.append(task.tid)
    assert sorted(removed) == sorted(pushed)
    assert len(set(removed)) == len(removed)
