"""HPX local mutex."""

import pytest

from repro.runtime.policies import LaunchPolicy
from repro.runtime.sync import Mutex
from repro.runtime.task import Task


def make_task(tid: int) -> Task:
    return Task(tid, lambda ctx: None, (), LaunchPolicy.ASYNC, parent_tid=None, home_socket=0)


def test_uncontended_acquire():
    m = Mutex(0)
    t = make_task(1)
    assert m.try_acquire(t)
    assert m.locked
    assert m.owner is t
    assert m.acquisitions == 1


def test_contended_acquire_fails():
    m = Mutex(0)
    t1, t2 = make_task(1), make_task(2)
    assert m.try_acquire(t1)
    assert not m.try_acquire(t2)
    assert m.owner is t1


def test_release_hands_off_fifo():
    m = Mutex(0)
    t1, t2, t3 = make_task(1), make_task(2), make_task(3)
    m.try_acquire(t1)
    m.enqueue_waiter(t2)
    m.enqueue_waiter(t3)
    assert m.release(t1) is t2  # FIFO fairness
    assert m.owner is t2
    assert m.release(t2) is t3
    assert m.release(t3) is None
    assert not m.locked


def test_release_by_non_owner_rejected():
    m = Mutex(0)
    t1, t2 = make_task(1), make_task(2)
    m.try_acquire(t1)
    with pytest.raises(RuntimeError):
        m.release(t2)


def test_contention_counted():
    m = Mutex(0)
    m.try_acquire(make_task(1))
    m.enqueue_waiter(make_task(2))
    assert m.contentions == 1
    assert m.acquisitions == 1
