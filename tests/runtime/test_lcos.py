"""Local Control Objects: barrier, latch, event, dataflow, then."""

import pytest

from repro.kernel.scheduler import StdRuntime
from repro.runtime.lcos import Barrier, Event, Latch, dataflow, then
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine


def run(body, cores=4, runtime_cls=HpxRuntime):
    engine = Engine()
    rt = runtime_cls(engine, Machine(), num_workers=cores)
    return rt.run_to_completion(body), engine


# -- barrier ---------------------------------------------------------------


@pytest.mark.parametrize("runtime_cls", [HpxRuntime, StdRuntime])
def test_barrier_synchronizes_phases(runtime_cls):
    """No party starts phase 2 before every party finished phase 1."""

    def body(ctx):
        barrier = Barrier(4)
        log = []

        def party(pctx, k):
            yield pctx.compute(1_000 * (k + 1))  # staggered phase 1
            log.append(("phase1", k))
            yield from barrier.wait(pctx)
            log.append(("phase2", k))
            return k

        futs = []
        for k in range(4):
            futs.append((yield ctx.async_(party, k)))
        yield ctx.wait_all(futs)
        return log

    log, _ = run(body, runtime_cls=runtime_cls)
    phase1_done = max(i for i, e in enumerate(log) if e[0] == "phase1")
    phase2_start = min(i for i, e in enumerate(log) if e[0] == "phase2")
    assert phase1_done < phase2_start


def test_barrier_is_cyclic():
    def body(ctx):
        barrier = Barrier(2)
        rounds = []

        def party(pctx, k):
            for _ in range(3):
                generation = yield from barrier.wait(pctx)
                rounds.append((k, generation))
            return None

        futs = []
        for k in range(2):
            futs.append((yield ctx.async_(party, k)))
        yield ctx.wait_all(futs)
        return barrier.generations_completed, sorted(rounds)

    (generations, rounds), _ = run(body)
    assert generations == 3
    assert rounds == [(0, 1), (0, 2), (0, 3), (1, 1), (1, 2), (1, 3)]


def test_barrier_validation():
    with pytest.raises(ValueError):
        Barrier(0)


# -- latch ------------------------------------------------------------------


def test_latch_releases_waiters():
    def body(ctx):
        latch = Latch(3)
        order = []

        def waiter(wctx):
            yield from latch.wait(wctx)
            order.append("released")
            return None

        def worker(wctx, k):
            yield wctx.compute(2_000)
            order.append(f"done{k}")
            latch.count_down()
            return None

        wf = yield ctx.async_(waiter)
        futs = []
        for k in range(3):
            futs.append((yield ctx.async_(worker, k)))
        yield ctx.wait_all([wf, *futs])
        return order

    order, _ = run(body)
    assert order[-1] == "released"
    assert set(order[:-1]) == {"done0", "done1", "done2"}


def test_latch_wait_after_release_is_immediate():
    def body(ctx):
        latch = Latch(1)
        latch.count_down()
        yield from latch.wait(ctx)
        return latch.remaining

    value, _ = run(body)
    assert value == 0


def test_latch_misuse():
    latch = Latch(1)
    latch.count_down()
    with pytest.raises(RuntimeError, match="already released"):
        latch.count_down()
    with pytest.raises(ValueError):
        Latch(0)
    with pytest.raises(ValueError):
        Latch(2).count_down(0)


# -- event ---------------------------------------------------------------------


def test_event_signalling():
    def body(ctx):
        event = Event()
        log = []

        def waiter(wctx, k):
            yield from event.wait(wctx)
            log.append(k)
            return None

        def setter(sctx):
            yield sctx.compute(5_000)
            event.set()
            return None

        futs = []
        for k in range(3):
            futs.append((yield ctx.async_(waiter, k)))
        sf = yield ctx.async_(setter)
        yield ctx.wait_all([*futs, sf])
        return sorted(log), event.is_set

    (log, is_set), _ = run(body)
    assert log == [0, 1, 2]
    assert is_set


def test_event_reset():
    event = Event()
    event.set()
    assert event.is_set
    event.reset()
    assert not event.is_set
    event.set()  # idempotent set after reset
    assert event.is_set


# -- dataflow / then ----------------------------------------------------------------


@pytest.mark.parametrize("runtime_cls", [HpxRuntime, StdRuntime])
def test_dataflow_combines_without_blocking(runtime_cls):
    def body(ctx):
        def produce(pctx, v):
            yield pctx.compute(1_000)
            return v

        def combine(cctx, a, b):
            yield cctx.compute(500)
            return a + b

        fa = yield ctx.async_(produce, 20)
        fb = yield ctx.async_(produce, 22)
        combined = yield dataflow(ctx, combine, fa, fb)
        # The caller is free to do other work before waiting.
        yield ctx.compute(100)
        return (yield ctx.wait(combined))

    value, _ = run(body, runtime_cls=runtime_cls)
    assert value == 42


def test_then_chains():
    def body(ctx):
        def produce(pctx):
            yield pctx.compute(100)
            return 10

        def double(dctx, v):
            yield dctx.compute(100)
            return v * 2

        fut = yield ctx.async_(produce)
        chained = yield then(ctx, fut, double)
        chained2 = yield then(ctx, chained, double)
        return (yield ctx.wait(chained2))

    value, _ = run(body)
    assert value == 40


def test_dataflow_pipeline_diamond():
    """a -> (b, c) -> d diamond, fully non-blocking until the end."""

    def body(ctx):
        def source(pctx):
            yield pctx.compute(100)
            return 1

        def add_one(pctx, v):
            yield pctx.compute(100)
            return v + 1

        def join(pctx, left, right):
            yield pctx.compute(100)
            return left * 10 + right

        a = yield ctx.async_(source)
        b = yield then(ctx, a, add_one)
        c = yield then(ctx, a, add_one)
        d = yield dataflow(ctx, join, b, c)
        return (yield ctx.wait(d))

    value, _ = run(body)
    assert value == 22
