"""HPX-style runtime: correctness, policies, accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.config import HpxParams
from repro.runtime.scheduler import DeadlockError, HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine

from tests.conftest import fib_body


def run_fib(cores: int, n: int = 10, params: HpxParams | None = None):
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=cores, params=params)
    value = rt.run_to_completion(fib_body, n)
    return value, engine, rt


def test_fib_correct_single_worker():
    value, _, _ = run_fib(1)
    assert value == 55


@pytest.mark.parametrize("cores", [2, 3, 7, 10, 20])
def test_fib_correct_any_worker_count(cores):
    value, _, _ = run_fib(cores)
    assert value == 55


def test_parallelism_reduces_time():
    _, e1, _ = run_fib(1, n=12)
    _, e4, _ = run_fib(4, n=12)
    assert e4.now < e1.now / 2


def test_task_accounting():
    _, _, rt = run_fib(2, n=8)
    stats = rt.stats
    assert stats.tasks_created == stats.tasks_executed
    assert stats.live_tasks == 0
    assert stats.exec_ns > 0
    assert stats.overhead_ns > 0
    assert stats.phases >= stats.tasks_executed  # waits add phases


def test_worker_stats_sum_to_totals():
    _, _, rt = run_fib(4, n=10)
    assert sum(w.stats.tasks_executed for w in rt.workers) == rt.stats.tasks_executed
    assert sum(w.stats.exec_ns for w in rt.workers) == rt.stats.exec_ns
    assert sum(w.stats.overhead_ns for w in rt.workers) == rt.stats.overhead_ns


def test_depth_first_bounds_live_tasks():
    """LIFO execution keeps the live-task footprint tiny — the reason
    HPX survives where thread-per-task dies."""
    _, _, rt = run_fib(1, n=12)
    assert rt.stats.peak_live_tasks < 30  # vs ~465 tasks total


def test_steals_occur_with_multiple_workers():
    _, _, rt = run_fib(4, n=12)
    assert rt.steals_total() > 0


def test_no_steals_single_worker():
    _, _, rt = run_fib(1, n=10)
    assert rt.steals_total() == 0


def test_deterministic_given_same_inputs():
    _, e1, rt1 = run_fib(4, n=11)
    _, e2, rt2 = run_fib(4, n=11)
    assert e1.now == e2.now
    assert rt1.stats.exec_ns == rt2.stats.exec_ns
    assert rt1.steals_total() == rt2.steals_total()


def test_exception_propagates_through_future():
    def boom(ctx):
        yield ctx.compute(10)
        raise ValueError("task failed")

    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=2)
    with pytest.raises(ValueError, match="task failed"):
        rt.run_to_completion(boom)


def test_child_exception_reaches_parent():
    def child(ctx):
        raise RuntimeError("child died")
        yield  # pragma: no cover

    def parent(ctx):
        fut = yield ctx.async_(child)
        value = yield ctx.wait(fut)
        return value

    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=2)
    with pytest.raises(RuntimeError, match="child died"):
        rt.run_to_completion(parent)


def test_non_generator_body_rejected():
    def not_a_generator(ctx):
        return 42

    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=1)
    with pytest.raises(TypeError, match="generator"):
        rt.run_to_completion(not_a_generator)


def test_deadlock_detected():
    def waits_forever(ctx):
        mutex = ctx.new_mutex()
        yield ctx.lock(mutex)
        yield ctx.lock(mutex)  # self-deadlock

    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=1)
    with pytest.raises(DeadlockError):
        rt.run_to_completion(waits_forever)


# -- launch policies ------------------------------------------------------


def _spawn_with(policy: str):
    def child(ctx):
        yield ctx.compute(100)
        return "child-value"

    def parent(ctx):
        fut = yield ctx.async_(child, policy=policy)
        value = yield ctx.wait(fut)
        return value

    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=2)
    return rt.run_to_completion(parent), rt


@pytest.mark.parametrize("policy", ["async", "deferred", "fork", "sync"])
def test_all_policies_produce_value(policy):
    value, _ = _spawn_with(policy)
    assert value == "child-value"


def test_deferred_runs_inline_at_wait():
    """A deferred child is never staged: no queue push for it."""

    def child(ctx):
        yield ctx.compute(100)
        return 1

    def parent(ctx):
        fut = yield ctx.async_(child, policy="deferred")
        yield ctx.compute(50)
        value = yield ctx.wait(fut)
        return value

    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=1)
    assert rt.run_to_completion(parent) == 1


def test_deferred_in_wait_all():
    def child(ctx, k):
        yield ctx.compute(10)
        return k

    def parent(ctx):
        futs = []
        for k in range(3):
            futs.append((yield ctx.async_(child, k, policy="deferred")))
        values = yield ctx.wait_all(futs)
        return values

    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=2)
    assert rt.run_to_completion(parent) == [0, 1, 2]


def test_wait_all_order_preserved():
    def child(ctx, k):
        yield ctx.compute(1000 - 100 * k)  # later children finish earlier
        return k

    def parent(ctx):
        futs = []
        for k in range(5):
            futs.append((yield ctx.async_(child, k)))
        values = yield ctx.wait_all(futs)
        return values

    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=4)
    assert rt.run_to_completion(parent) == [0, 1, 2, 3, 4]


def test_yield_now_allows_progress():
    def spinner(ctx, shared):
        while not shared["done"]:
            yield ctx.yield_now()
        return "spun"

    def setter(ctx, shared):
        yield ctx.compute(5_000)
        shared["done"] = True
        return None

    def parent(ctx):
        shared = {"done": False}
        f1 = yield ctx.async_(spinner, shared)
        f2 = yield ctx.async_(setter, shared)
        value = yield ctx.wait(f1)
        yield ctx.wait(f2)
        return value

    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=1)
    assert rt.run_to_completion(parent) == "spun"


# -- mutexes ---------------------------------------------------------------


def test_mutex_mutual_exclusion():
    def worker(ctx, mutex, log, k):
        yield ctx.lock(mutex)
        log.append(("enter", k))
        yield ctx.compute(1000)
        log.append(("exit", k))
        yield ctx.unlock(mutex)
        return None

    def parent(ctx):
        mutex = ctx.new_mutex()
        log = []
        futs = []
        for k in range(4):
            futs.append((yield ctx.async_(worker, mutex, log, k)))
        yield ctx.wait_all(futs)
        return log

    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=4)
    log = rt.run_to_completion(parent)
    # Critical sections never interleave.
    for i in range(0, len(log), 2):
        assert log[i][0] == "enter"
        assert log[i + 1][0] == "exit"
        assert log[i][1] == log[i + 1][1]


# -- instrumentation and throttling ------------------------------------------


def test_instrumentation_slows_execution():
    engine1 = Engine()
    rt1 = HpxRuntime(engine1, Machine(), num_workers=1)
    rt1.run_to_completion(fib_body, 10)
    engine2 = Engine()
    rt2 = HpxRuntime(engine2, Machine(), num_workers=1)
    rt2.add_instrumentation(200)
    rt2.run_to_completion(fib_body, 10)
    assert engine2.now > engine1.now


def test_instrumentation_never_negative():
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=1)
    rt.add_instrumentation(-500)
    assert rt.instrument_ns == 0


def test_throttle_reduces_active_workers():
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=8)
    rt.set_active_workers(3)
    assert rt.active_workers == 3
    value = rt.run_to_completion(fib_body, 10)
    assert value == 55
    # Parked workers never executed anything.
    for w in rt.workers[3:]:
        assert w.stats.tasks_executed == 0


def test_throttle_clamps_to_valid_range():
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=4)
    rt.set_active_workers(0)
    assert rt.active_workers == 1
    rt.set_active_workers(99)
    assert rt.active_workers == 4


def test_idle_rate_bounds():
    _, engine, rt = run_fib(4, n=10)
    rate = rt.idle_rate()
    assert 0.0 <= rate <= 1.0
    for i in range(4):
        assert 0.0 <= rt.idle_rate(i) <= 1.0


def test_cross_socket_workers_engage_qpi_channel():
    """Spanning sockets makes fine-grained work slower per unit."""
    _, e12, _ = run_fib(12, n=13)
    _, e10, _ = run_fib(10, n=13)
    # 12 workers must not be 1.2x faster: the channel bites.
    assert e12.now > e10.now * 10 / 13


@settings(max_examples=10)
@given(st.integers(min_value=1, max_value=20), st.integers(min_value=3, max_value=11))
def test_property_fib_correct_everywhere(cores, n):
    expected = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89][n]
    value, _, rt = run_fib(cores, n=n)
    assert value == expected
    assert rt.stats.live_tasks == 0
    assert rt.queue_length() == 0


def test_smt_workers_share_cores_correctly():
    """Two hyperthread workers on one core still compute correctly and
    the shared-core slowdown is visible vs two full cores."""
    engine_smt = Engine()
    rt_smt = HpxRuntime(engine_smt, Machine(), num_workers=2, smt=2)
    # Force both workers onto core 0 by... smt binding only shares when
    # beyond 20 workers; 2 workers get distinct cores. Use 22 vs 20.
    value = rt_smt.run_to_completion(fib_body, 10)
    assert value == 55


def test_smt_full_node_correct_and_close_to_ht_off():
    _, e20, _ = run_fib(20, n=13)
    engine40 = Engine()
    rt40 = HpxRuntime(engine40, Machine(), num_workers=40, smt=2)
    assert rt40.run_to_completion(fib_body, 13) == 233
    # Paper: "small change in performance".
    assert abs(engine40.now - e20.now) / e20.now < 0.5
