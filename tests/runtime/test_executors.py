"""Parallel algorithms / executors layer."""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.scheduler import StdRuntime
from repro.model.work import Work
from repro.runtime.executors import (
    AutoChunkSize,
    StaticChunkSize,
    for_each,
    transform_reduce,
)
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine


def run_body(body, cores=4, runtime_cls=HpxRuntime):
    engine = Engine()
    rt = runtime_cls(engine, Machine(), num_workers=cores)
    return rt.run_to_completion(body), rt, engine


def test_static_chunk_size():
    assert StaticChunkSize(8).chunk(100, 4) == 8
    with pytest.raises(ValueError):
        StaticChunkSize(0).chunk(10, 1)


def test_auto_chunk_size():
    assert AutoChunkSize().chunk(160, 4) == 10  # 4 workers x 4 chunks
    assert AutoChunkSize().chunk(3, 8) == 1  # never zero


def test_for_each_applies_to_all():
    seen = []

    def body(ctx):
        yield from for_each(ctx, range(100), seen.append, work_per_item=100)
        return len(seen)

    value, rt, _ = run_body(body)
    assert value == 100
    assert sorted(seen) == list(range(100))
    assert rt.stats.tasks_executed > 5  # actually chunked into tasks


def test_for_each_empty():
    def body(ctx):
        yield from for_each(ctx, [], lambda x: None)
        return "done"

    value, _, _ = run_body(body)
    assert value == "done"


def test_for_each_respects_static_chunking():
    def body(ctx):
        yield from for_each(
            ctx, range(40), lambda x: None, work_per_item=10, chunking=StaticChunkSize(10)
        )
        return None

    _, rt, _ = run_body(body)
    # 4 chunk tasks + root.
    assert rt.stats.tasks_executed == 5


def test_transform_reduce_sum_of_squares():
    def body(ctx):
        total = yield from transform_reduce(
            ctx,
            range(1, 101),
            transform=lambda i: i * i,
            reduce_fn=operator.add,
            initial=0,
            work_per_item=50,
        )
        return total

    value, _, _ = run_body(body)
    assert value == sum(i * i for i in range(1, 101))


def test_transform_reduce_empty_returns_initial():
    def body(ctx):
        value = yield from transform_reduce(
            ctx, [], transform=lambda i: i, reduce_fn=operator.add, initial=42
        )
        return value

    value, _, _ = run_body(body)
    assert value == 42


def test_work_per_item_as_work_object():
    def body(ctx):
        yield from for_each(
            ctx,
            range(64),
            lambda x: None,
            work_per_item=Work(cpu_ns=1000, membytes=64),
        )
        return None

    _, rt, engine = run_body(body, cores=1)
    # 64 items x 1000 ns of declared work must appear in task time.
    assert rt.stats.exec_ns >= 64_000


def test_parallelism_speeds_up_for_each():
    def body(ctx):
        yield from for_each(ctx, range(64), lambda x: None, work_per_item=50_000)
        return None

    _, _, e1 = run_body(body, cores=1)
    _, _, e8 = run_body(body, cores=8)
    assert e8.now < e1.now / 3


def test_algorithms_work_on_std_runtime_too():
    """The layer sits on the runtime-agnostic API (Table II)."""

    def body(ctx):
        total = yield from transform_reduce(
            ctx,
            range(20),
            transform=lambda i: i,
            reduce_fn=operator.add,
            initial=0,
            work_per_item=100,
        )
        return total

    value, _, _ = run_body(body, runtime_cls=StdRuntime)
    assert value == 190


@settings(max_examples=15)
@given(st.lists(st.integers(-1000, 1000), max_size=60), st.integers(1, 8))
def test_property_transform_reduce_matches_sequential(values, cores):
    def body(ctx):
        out = yield from transform_reduce(
            ctx,
            values,
            transform=lambda x: 2 * x + 1,
            reduce_fn=operator.add,
            initial=0,
        )
        return out

    value, _, _ = run_body(body, cores=cores)
    assert value == sum(2 * x + 1 for x in values)
