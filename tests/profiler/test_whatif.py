"""What-if spec parsing, body resolution, and the prediction arithmetic."""

import pytest

from repro.profiler.whatif import (
    BodyRewriter,
    WhatIfSpec,
    parse_what_if,
    predict_makespan_ns,
    resolve_body,
)


def test_parse_what_if_round_trip():
    spec = parse_what_if("body=_fib_task,speedup=50")
    assert spec == WhatIfSpec(body="_fib_task", speedup_pct=50.0)
    assert spec.factor == pytest.approx(0.5)


def test_parse_what_if_field_order_is_free():
    assert parse_what_if("speedup=25,body=x") == WhatIfSpec(body="x", speedup_pct=25.0)


@pytest.mark.parametrize(
    "text",
    [
        "",
        "body=x",  # missing speedup
        "speedup=50",  # missing body
        "body=x,speedup=50,extra=1",  # unknown field
        "body=x,speedup=oops",  # non-numeric
        "body=x speedup=50",  # not key=value
    ],
)
def test_parse_what_if_rejects_malformed(text):
    with pytest.raises(ValueError):
        parse_what_if(text)


@pytest.mark.parametrize("pct", [-1, 101])
def test_spec_rejects_out_of_range_speedup(pct):
    with pytest.raises(ValueError):
        WhatIfSpec(body="x", speedup_pct=pct)


def test_resolve_body_exact_beats_substring():
    assert resolve_body("fib", {"fib", "_fib_task"}) == "fib"


def test_resolve_body_unique_substring():
    assert resolve_body("node", {"_node_task", "_taskbench_root"}) == "_node_task"


def test_resolve_body_ambiguous_lists_candidates():
    with pytest.raises(ValueError, match="_a_task.*_b_task"):
        resolve_body("task", {"_a_task", "_b_task"})


def test_resolve_body_unknown_lists_bodies():
    with pytest.raises(ValueError, match="profiled bodies"):
        resolve_body("nope", {"_fib_task"})


def test_rewriter_only_touches_its_body():
    class _Task:
        def __init__(self, description):
            self.description = description

    class _Work:
        def scaled(self, factor):
            return ("scaled", factor)

    rewriter = BodyRewriter("hot", 0.5)
    work = _Work()
    assert rewriter(_Task("cold"), work) is work
    assert rewriter(_Task("hot"), work) == ("scaled", 0.5)
    assert rewriter.rewritten == 1


def test_predict_makespan_scales_by_brent_ratio():
    # Halving all the work on 4 cores with negligible span halves the
    # Brent bound, so the predicted makespan halves too.
    predicted = predict_makespan_ns(
        baseline_makespan_ns=1_000_000,
        cores=4,
        base_work_ns=4_000_000,
        base_span_ns=0,
        scaled_work_ns=2_000_000,
        scaled_span_ns=0,
    )
    assert predicted == 500_000


def test_predict_makespan_identity_when_unscaled():
    predicted = predict_makespan_ns(
        baseline_makespan_ns=123_457,
        cores=4,
        base_work_ns=400_000,
        base_span_ns=50_000,
        scaled_work_ns=400_000,
        scaled_span_ns=50_000,
    )
    assert predicted == 123_457
