"""Property-based profiler invariants over seeded random Task Bench DAGs.

Three invariant families, each over a different slice of the
configuration space:

- ``span <= makespan <= work`` needs the coarse-grain ``trivial``
  shape: task-granularity span over-approximates on shapes whose
  serial driver overlaps node execution (the driver's busy time joins
  the chain), and ``makespan <= work`` needs grains that dwarf the
  per-task scheduling overhead;
- the critical-path/work identities hold on *every* shape and grain;
- the 0 % what-if replay is bit-identical on every shape (the
  ``scaled(1.0) is self`` fast path rewrites nothing).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.profiler import ProfileConfig
from repro.profiler.whatif import WhatIfSpec
from repro.workloads import WorkloadSpec


def _profile(spec: str, cores: int, what_if=()):
    session = Session(runtime="hpx", cores=cores)
    return session.run(
        WorkloadSpec.parse(spec),
        collect_counters=False,
        profile=ProfileConfig(what_if=tuple(what_if)),
    )


# Width 4/8/16 keeps every shape valid (fft needs a power of two).
_ANY_SHAPE = st.sampled_from(["trivial", "stencil_1d", "fft", "tree", "random"])
_WIDTH = st.sampled_from([4, 8, 16])
_STEPS = st.integers(2, 5)
_SEED = st.integers(0, 1_000_000)


@settings(max_examples=10)
@given(
    width=st.integers(5, 16),
    steps=st.integers(2, 5),
    grain=st.sampled_from([20_000, 40_000, 60_000]),
    cores=st.sampled_from([2, 4]),
    seed=_SEED,
)
def test_span_makespan_work_ordering_on_coarse_trivial(width, steps, grain, cores, seed):
    spec = f"taskbench:shape=trivial,width={width},steps={steps},grain_ns={grain},seed={seed}"
    result = _profile(spec, cores)
    profile = result.profile
    assert result.verified
    assert 0 < profile.span_ns <= profile.makespan_ns <= profile.work_ns
    # Brent: the speedup ceiling bounds the measured speedup over T1.
    assert profile.work_ns / profile.makespan_ns <= profile.average_parallelism + 1e-9


@settings(max_examples=12)
@given(shape=_ANY_SHAPE, width=_WIDTH, steps=_STEPS, grain=st.sampled_from([2_000, 10_000]), seed=_SEED)
def test_critical_path_identities_on_any_shape(shape, width, steps, grain, seed):
    spec = f"taskbench:shape={shape},width={width},steps={steps},grain_ns={grain},seed={seed}"
    result = _profile(spec, 4)
    profile = result.profile
    assert result.verified
    assert sum(step.busy_ns for step in profile.critical_path) == profile.span_ns
    assert sum(ns for _body, ns in profile.critical_body_ns) == profile.span_ns
    assert profile.work_ns == sum(fp.busy_ns for fp in profile.flat)
    assert 0 < profile.span_ns <= profile.work_ns
    assert profile.tasks == result.tasks_created


@settings(max_examples=6)
@given(shape=_ANY_SHAPE, width=_WIDTH, steps=st.integers(2, 4), seed=_SEED)
def test_zero_percent_what_if_is_bit_identical_on_any_shape(shape, width, steps, seed):
    spec = f"taskbench:shape={shape},width={width},steps={steps},grain_ns=5000,seed={seed}"
    result = _profile(spec, 4, what_if=(WhatIfSpec(body="_node_task", speedup_pct=0),))
    w = result.profile.what_if[0]
    assert w.rewritten_computes > 0
    assert w.predicted_makespan_ns == w.baseline_makespan_ns == w.replayed_makespan_ns
    assert w.scaled_work_ns == result.profile.work_ns
    assert w.scaled_span_ns == result.profile.span_ns
