"""The /profiler{...} counters through the Session counter path."""

import pytest

from repro.api import Session
from repro.workloads import WorkloadSpec

SPECS = (
    "/profiler{locality#0/total}/work-ns",
    "/profiler{locality#0/total}/critical-path-ns",
    "/profiler{locality#0/total}/work-span-ratio",
    "/profiler{locality#0/total}/logical-parallelism",
)


def _run(spec="fib:n=12", counters=SPECS, **kwargs):
    session = Session(runtime="hpx", cores=4)
    return session.run(WorkloadSpec.parse(spec), counters=list(counters), **kwargs)


def test_requesting_profiler_counters_implies_profiling():
    result = _run()
    assert result.profile is not None  # auto-enabled, no profile= needed
    assert set(SPECS) <= set(result.counters)


def test_final_values_match_the_profile():
    result = _run()
    profile = result.profile
    assert result.counters["/profiler{locality#0/total}/work-ns"] == profile.work_ns
    assert (
        result.counters["/profiler{locality#0/total}/critical-path-ns"] == profile.span_ns
    )
    assert result.counters["/profiler{locality#0/total}/work-span-ratio"] == pytest.approx(
        profile.average_parallelism
    )
    # Sampled after the run finished: nothing is busy any more.
    assert result.counters["/profiler{locality#0/total}/logical-parallelism"] == 0


def test_per_body_parameters_address_one_body():
    result = _run(
        counters=(
            "/profiler{locality#0/total}/work-ns@_fib_task",
            "/profiler{locality#0/total}/critical-path-ns@_fib_task",
        )
    )
    profile = result.profile
    fib_row = next(p for p in profile.flat if p.name == "_fib_task")
    assert (
        result.counters["/profiler{locality#0/total}/work-ns@_fib_task"] == fib_row.busy_ns
    )
    assert result.counters[
        "/profiler{locality#0/total}/critical-path-ns@_fib_task"
    ] == dict(profile.critical_body_ns).get("_fib_task", 0)


def test_unknown_body_parameter_reads_zero():
    result = _run(counters=("/profiler{locality#0/total}/work-ns@no_such_body",))
    assert result.counters["/profiler{locality#0/total}/work-ns@no_such_body"] == 0


def test_profiler_counters_ride_periodic_queries():
    result = _run(query_interval_ns=100_000)
    assert result.query_samples
    names = {v.name for row in result.query_samples for v in row}
    assert "/profiler{locality#0/total}/work-ns" in names
    work = [
        v.value
        for row in result.query_samples
        for v in row
        if v.name == "/profiler{locality#0/total}/work-ns"
    ]
    assert work == sorted(work)  # monotonic while the run progresses


def test_counters_absent_without_profiler():
    # No profile requested and no /profiler spec: provider stays dormant.
    session = Session(runtime="hpx", cores=4)
    result = session.run(WorkloadSpec.parse("fib:n=10"))
    assert result.profile is None
    assert not any(name.startswith("/profiler") for name in result.counters)


def test_non_total_instance_is_rejected():
    with pytest.raises(ValueError, match="only exist on the total instance"):
        _run(counters=("/profiler{locality#0/worker-thread#0}/work-ns",))


def test_provider_chain_lists_builtin_profiler():
    from repro.counters.providers import provider_identity

    assert "builtin.profiler" in provider_identity()
