"""The streaming profiler against the networkx oracle and the Session path."""

import json

import pytest

from repro.api import Session
from repro.exec.modes import CohortIneligibleError
from repro.profiler import ProfileBuilder, ProfileConfig, TraceRecorder, build_profile
from repro.profiler.whatif import WhatIfSpec
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine
from repro.trace.dag import build_task_dag, work_span
from repro.workloads import WorkloadSpec

from tests.conftest import fib_body


def profiled(body, *args, cores=4, keep_events=False):
    """Run *body* with the ProfileBuilder and the legacy recorder attached
    side by side — every run is also a multi-subscriber composition test."""
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=cores)
    builder = ProfileBuilder(rt, keep_events=keep_events)
    recorder = TraceRecorder(rt)
    with builder, recorder:
        value = rt.run_to_completion(body, *args)
    return builder, recorder, rt, engine, value


def wide_fan(ctx):
    futs = []
    for _ in range(16):
        futs.append((yield ctx.async_(fan_leaf)))
    yield ctx.wait_all(futs)
    return None


def fan_leaf(ctx):
    yield ctx.compute(10_000)
    return None


# -- oracle equality ---------------------------------------------------------


@pytest.mark.parametrize("body,args", [(fib_body, (10,)), (wide_fan, ())])
def test_builder_matches_networkx_oracle(body, args):
    builder, recorder, _rt, _e, _v = profiled(body, *args)
    analysis = builder.analysis()
    oracle = work_span(recorder)
    assert analysis.work_ns == oracle.work_ns
    assert analysis.span_ns == oracle.span_ns
    assert analysis.tasks == oracle.tasks
    assert analysis.edges == oracle.edges
    graph = build_task_dag(recorder)
    assert 2 * analysis.tasks == graph.number_of_nodes()


def test_critical_path_sums_to_span():
    builder, _rec, _rt, _e, _v = profiled(fib_body, 10)
    analysis = builder.analysis()
    assert sum(step.busy_ns for step in analysis.critical_path) == analysis.span_ns
    assert sum(ns for _body, ns in analysis.critical_body_ns) == analysis.span_ns


def test_flat_fold_equals_post_mortem_build_profile():
    builder, recorder, _rt, _e, _v = profiled(fib_body, 10)
    live = {p.name: (p.tasks, p.activations, p.busy_ns) for p in builder._acc.profiles.values()}
    post = {
        name: (p.tasks, p.activations, p.busy_ns)
        for name, p in build_profile(recorder).items()
    }
    assert live == post


def test_scaled_analysis_at_factor_one_is_identical():
    builder, _rec, _rt, _e, _v = profiled(fib_body, 10)
    base = builder.analysis()
    scaled = builder.scaled_analysis("fib_body", 1.0)
    assert scaled == base


def test_parallelism_points_are_well_formed():
    builder, _rec, _rt, engine, _v = profiled(fib_body, 10)
    points = builder.parallelism()
    assert points, "a real run has busy intervals"
    times = [p.time_ns for p in points]
    assert times == sorted(times)
    assert all(p.active >= 0 for p in points)
    assert points[-1].active == 0  # everything closed at the end
    assert max(p.active for p in points) <= 4  # never more than the workers


# -- the Session path --------------------------------------------------------


def _run(spec, *, cores=4, **kwargs):
    session = Session(runtime="hpx", cores=cores)
    return session.run(WorkloadSpec.parse(spec), collect_counters=False, **kwargs)


def test_session_profile_reports_the_run():
    result = _run("fib:n=12", profile=True)
    profile = result.profile
    assert profile is not None
    assert profile.makespan_ns == result.exec_time_ns
    assert profile.tasks == result.tasks_created
    assert 0 < profile.span_ns <= profile.work_ns
    assert profile.average_parallelism > 1
    assert profile.parallelism.peak <= 4
    assert "_fib_task" in profile.body_names()
    text = profile.render(top=5)
    assert "critical path" in text and "_fib_task" in text


def test_session_profile_is_deterministic():
    a = _run("fib:n=12", profile=True).profile
    b = _run("fib:n=12", profile=True).profile
    assert a.to_json_dict(include_series=True) == b.to_json_dict(include_series=True)
    json.dumps(a.to_json_dict())  # JSON-serializable


def test_unprofiled_run_is_not_perturbed():
    bare = _run("fib:n=10")
    again = _run("fib:n=10")
    assert bare.profile is None
    assert bare.exec_time_ns == again.exec_time_ns
    profiled_run = _run("fib:n=10", profile=True)
    # Profiling charges per-event instrumentation, like the recorder.
    assert profiled_run.exec_time_ns > bare.exec_time_ns


def test_profile_keep_events_feeds_chrome_export():
    from repro.trace.export import to_chrome_trace

    result = _run("fib:n=10", profile=ProfileConfig(keep_events=True))
    events = result.profile.events
    assert events and len(events) == result.profile.trace_events
    payload = json.loads(to_chrome_trace(list(events)))
    assert any(e["ph"] == "X" for e in payload["traceEvents"])


def test_cohort_mode_rejects_profiling():
    with pytest.raises(CohortIneligibleError):
        _run("fib:n=12", mode="cohort", profile=True)


def test_cohort_mode_rejects_work_rewriter():
    from repro.profiler.whatif import BodyRewriter

    with pytest.raises(CohortIneligibleError):
        _run("fib:n=12", mode="cohort", work_rewriter=BodyRewriter("_fib_task", 0.5))


# -- what-if experiments -----------------------------------------------------


def test_what_if_zero_percent_is_bit_identical():
    result = _run(
        "fib:n=12",
        profile=ProfileConfig(what_if=(WhatIfSpec(body="_fib_task", speedup_pct=0),)),
    )
    w = result.profile.what_if[0]
    assert w.rewritten_computes > 0
    assert w.predicted_makespan_ns == w.baseline_makespan_ns == w.replayed_makespan_ns
    assert w.scaled_work_ns == result.profile.work_ns
    assert w.scaled_span_ns == result.profile.span_ns


def test_what_if_prediction_matches_replay_on_coarse_grains():
    # Coarse-grain Task Bench: overheads are tiny next to the 40 µs
    # grains, so the Brent prediction lands within a few percent of the
    # replayed truth (fine-grain workloads are looser; see the docs).
    result = _run(
        "taskbench:shape=trivial,width=12,steps=8,grain_ns=40000",
        profile=ProfileConfig(what_if=(WhatIfSpec(body="_node_task", speedup_pct=50),)),
    )
    w = result.profile.what_if[0]
    assert w.replayed_makespan_ns < w.baseline_makespan_ns
    assert abs(w.prediction_error) < 0.10
    assert w.realized_speedup > 1.5


def test_what_if_substring_resolves_body():
    result = _run(
        "fib:n=10",
        profile=ProfileConfig(what_if=(WhatIfSpec(body="fib", speedup_pct=50),)),
    )
    assert result.profile.what_if[0].body == "_fib_task"


def test_what_if_render_mentions_the_experiment():
    result = _run(
        "fib:n=10",
        profile=ProfileConfig(what_if=(WhatIfSpec(body="fib", speedup_pct=50),)),
    )
    text = result.profile.render()
    assert "what-if" in text and "-50%" in text
