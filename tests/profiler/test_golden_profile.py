"""The committed golden profile: fib(16) with a 50 % what-if, bit for bit.

The CI ``profiler-smoke`` job runs the same configuration through the
``repro profile`` CLI and diffs the JSON against the same fixture, so a
behavior change shows up identically in-process and end-to-end.
Regenerate (only for an intentional change) with:

    repro profile fib:n=16 --what-if body=fib,speedup=50 \
        --json tests/fixtures/profile_fib16_whatif.json
"""

import json
import pathlib

from repro.api import Session
from repro.profiler import ProfileConfig
from repro.profiler.whatif import WhatIfSpec
from repro.workloads import WorkloadSpec

FIXTURE = pathlib.Path(__file__).parent.parent / "fixtures" / "profile_fib16_whatif.json"


def test_profile_matches_golden_fixture():
    session = Session(runtime="hpx", cores=4)
    result = session.run(
        WorkloadSpec.parse("fib:n=16"),
        collect_counters=False,
        profile=ProfileConfig(what_if=(WhatIfSpec(body="fib", speedup_pct=50),)),
    )
    golden = json.loads(FIXTURE.read_text())
    got = result.profile.to_json_dict(include_series=True)
    # Round-trip through JSON so int/float spellings compare like the file.
    assert json.loads(json.dumps(got)) == golden
