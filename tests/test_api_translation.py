"""Table II: one benchmark source, two runtimes.

The paper's porting claim: replacing ``std::`` with ``hpx::`` is the
whole port.  Here the very same generator function runs unmodified on
both runtime models and produces identical results.
"""

import pytest

from repro.kernel.scheduler import StdRuntime
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine


def program(ctx):
    """Uses the full Table II surface: async/future/mutex (+wait_all)."""
    mutex = ctx.new_mutex()  # std::mutex / hpx::lcos::local::mutex
    log = []

    def worker(wctx, k):
        yield wctx.compute(500)
        yield wctx.lock(mutex)
        log.append(k)
        yield wctx.unlock(mutex)
        return k * k

    futures = []
    for k in range(6):
        fut = yield ctx.async_(worker, k)  # std::async / hpx::async
        futures.append(fut)
    values = yield ctx.wait_all(futures)  # future::get / hpx::future::get
    return values, sorted(log)


@pytest.mark.parametrize("runtime_cls", [HpxRuntime, StdRuntime])
def test_same_source_runs_on_both(runtime_cls):
    engine = Engine()
    rt = runtime_cls(engine, Machine(), num_workers=3)
    values, log = rt.run_to_completion(program)
    assert values == [0, 1, 4, 9, 16, 25]
    assert log == [0, 1, 2, 3, 4, 5]


def test_results_identical_across_runtimes():
    results = []
    for runtime_cls in (HpxRuntime, StdRuntime):
        engine = Engine()
        rt = runtime_cls(engine, Machine(), num_workers=4)
        results.append(rt.run_to_completion(program))
    assert results[0] == results[1]


def test_api_names_match_table_ii():
    """The context exposes the translated API of Table II."""
    from repro.model.context import TaskContext

    for method in ("async_", "wait", "wait_all", "lock", "unlock", "new_mutex"):
        assert hasattr(TaskContext, method)
